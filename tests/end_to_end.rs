//! Cross-crate integration tests: full training runs exercising the
//! tensor → nn → optim → trainer stack together.

use dropback::prelude::*;

fn data(seed: u64) -> (Dataset, Dataset) {
    synthetic_mnist(1200, 300, seed)
}

fn quick(epochs: usize) -> TrainConfig {
    TrainConfig::new(epochs, 64)
        .lr(LrSchedule::StepDecay {
            initial: 0.2,
            factor: 0.5,
            every: 2,
        })
        .patience(None)
}

#[test]
fn baseline_sgd_reaches_high_accuracy() {
    let (train, test) = data(1);
    let report = Trainer::new(quick(6)).run(models::mnist_100_100(1), Sgd::new(), &train, &test);
    assert!(
        report.best_val_acc > 0.85,
        "baseline stuck at {}",
        report.best_val_acc
    );
}

#[test]
fn dropback_matches_baseline_at_moderate_budget() {
    let (train, test) = data(2);
    let base = Trainer::new(quick(6)).run(models::mnist_100_100(2), Sgd::new(), &train, &test);
    let db = Trainer::new(quick(6)).run(
        models::mnist_100_100(2),
        DropBack::new(20_000),
        &train,
        &test,
    );
    assert!(
        db.best_val_acc > base.best_val_acc - 0.08,
        "dropback {} vs baseline {}",
        db.best_val_acc,
        base.best_val_acc
    );
    assert_eq!(db.stored_weights, 20_000);
}

#[test]
fn dropback_with_full_budget_equals_sgd_exactly() {
    // k >= n makes DropBack's update identical to SGD, step for step.
    let (train, _) = data(3);
    let mut net_a = models::mnist_100_100(3);
    let mut net_b = models::mnist_100_100(3);
    let mut sgd = Sgd::new();
    let mut db = DropBack::new(usize::MAX / 2);
    let batcher = Batcher::new(64, 5);
    for (x, labels) in batcher.epoch(&train, 0) {
        let _ = net_a.loss_backward(&x, &labels);
        sgd.step(net_a.store_mut(), 0.1);
        let _ = net_b.loss_backward(&x, &labels);
        db.step(net_b.store_mut(), 0.1);
        assert_eq!(net_a.store().params(), net_b.store().params());
    }
}

#[test]
fn untracked_weights_stay_at_init_through_training() {
    let (train, test) = data(4);
    let mut net = models::mnist_100_100(4);
    let mut opt = DropBack::new(5_000);
    let batcher = Batcher::new(64, 7);
    for epoch in 0..2u64 {
        for (x, labels) in batcher.epoch(&train, epoch) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
        }
    }
    let mask = opt.mask();
    let store = net.store();
    for i in (0..store.len()).step_by(97) {
        if !mask[i] {
            assert_eq!(
                store.params()[i],
                store.init_value(i),
                "untracked weight {i} drifted"
            );
        }
    }
    let _ = net.accuracy(&test, 256);
}

#[test]
fn frozen_tracked_set_never_changes() {
    let (train, _) = data(5);
    let mut net = models::mnist_100_100(5);
    let mut opt = DropBack::new(10_000).freeze_after(1);
    let batcher = Batcher::new(64, 9);
    for (x, labels) in batcher.epoch(&train, 0) {
        let _ = net.loss_backward(&x, &labels);
        opt.step(net.store_mut(), 0.1);
    }
    opt.end_epoch(0, net.store_mut());
    assert!(opt.is_frozen());
    let frozen_mask = opt.mask().to_vec();
    for (x, labels) in batcher.epoch(&train, 1) {
        let _ = net.loss_backward(&x, &labels);
        opt.step(net.store_mut(), 0.1);
        assert_eq!(opt.mask(), &frozen_mask[..]);
        assert_eq!(opt.last_swaps(), 0);
    }
}

#[test]
fn magnitude_pruning_trains_but_diffuses_far() {
    let (train, test) = data(6);
    let net = models::mnist_100_100(6);
    let w0 = net.store().regen_initial();
    let report = Trainer::new(quick(3)).run(net, MagnitudePruning::new(0.75), &train, &test);
    // Learns something...
    assert!(report.best_val_acc > 0.4, "{}", report.best_val_acc);
    // ...but its compression accounting matches 4x.
    assert!((report.compression() - 4.0).abs() < 0.1);
    let _ = w0;
}

#[test]
fn variational_dropout_trains_and_sparsifies() {
    let (train, test) = data(7);
    let cfg = TrainConfig::new(8, 64)
        .lr(LrSchedule::Constant(0.08))
        .patience(None)
        .kl_anneal(KlAnneal::new(4, 5e-4));
    let report = Trainer::new(cfg).run(models::mnist_100_100_vd(7), Sgd::new(), &train, &test);
    assert!(report.best_val_acc > 0.5, "{}", report.best_val_acc);
    // KL was actually applied.
    assert!(report.history.iter().any(|e| e.kl > 0.0));
}

#[test]
fn network_slimming_prunes_and_finetunes() {
    let hw = dropback::nn::models::CIFAR_NANO_HW;
    let (train, test) = synthetic_cifar(300, 100, hw, hw, 8);
    let net = models::vgg_s_nano(8);
    let gammas: Vec<_> = net
        .param_ranges()
        .into_iter()
        .filter(|r| r.name().ends_with(".gamma"))
        .collect();
    assert!(!gammas.is_empty());
    let slim = NetworkSlimming::new(gammas, 1e-4, 0.5).prune_at_epoch(1);
    let cfg = TrainConfig::new(3, 32)
        .lr(LrSchedule::Constant(0.05))
        .patience(None);
    let report = Trainer::new(cfg).run(net, slim, &train, &test);
    assert!(report.history.len() == 3);
    assert!(report.best_val_acc > 0.15, "{}", report.best_val_acc);
}

#[test]
fn training_is_deterministic_given_seeds() {
    let (train, test) = data(9);
    let r1 = Trainer::new(quick(2)).run(
        models::mnist_100_100(9),
        DropBack::new(10_000),
        &train,
        &test,
    );
    let r2 = Trainer::new(quick(2)).run(
        models::mnist_100_100(9),
        DropBack::new(10_000),
        &train,
        &test,
    );
    assert_eq!(r1.history, r2.history);
}
