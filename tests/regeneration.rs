//! Integration tests for the regeneration storage story: sparse == dense,
//! and the weight memory a trained network actually needs.

use dropback::optim::Optimizer as _;
use dropback::prelude::*;

#[test]
fn sparse_and_dense_dropback_agree_on_a_real_network() {
    let (train, _) = synthetic_mnist(600, 100, 17);
    let mut dense_net = models::mnist_100_100(17);
    let mut sparse_net = models::mnist_100_100(17);
    let mut dense = DropBack::new(8_000).freeze_after(1);
    let mut sparse = SparseDropBack::new(8_000).freeze_after(1);
    let batcher = Batcher::new(64, 13);
    for epoch in 0..2u64 {
        for (x, labels) in batcher.epoch(&train, epoch) {
            let _ = dense_net.loss_backward(&x, &labels);
            dense.step(dense_net.store_mut(), 0.1);
            let _ = sparse_net.loss_backward(&x, &labels);
            sparse.step(sparse_net.store_mut(), 0.1);
        }
        // Identical parameters after every epoch — bit for bit.
        assert_eq!(dense_net.store().params(), sparse_net.store().params());
        dense.end_epoch(epoch as usize, dense_net.store_mut());
        sparse.end_epoch(epoch as usize, sparse_net.store_mut());
    }
    assert!(sparse.storage_entries() <= 8_000);
}

#[test]
fn trained_model_reconstructs_from_k_weights_plus_seed() {
    // The deployment claim: a DropBack-trained model is fully described by
    // (seed, k tracked index/value pairs). Rebuild one and check inference
    // matches.
    let (train, test) = synthetic_mnist(800, 200, 23);
    let mut net = models::mnist_100_100(23);
    let mut opt = SparseDropBack::new(6_000);
    let batcher = Batcher::new(64, 19);
    for epoch in 0..2u64 {
        for (x, labels) in batcher.epoch(&train, epoch) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
        }
    }
    let original_acc = net.accuracy(&test, 256);
    let tracked: Vec<(usize, f32)> = opt.tracked().iter().map(|(&i, &w)| (i, w)).collect();

    // "Ship" only (seed, tracked) and rebuild the network from scratch.
    let mut rebuilt = models::mnist_100_100(23);
    assert_eq!(rebuilt.store().params().len(), net.store().params().len());
    for (i, w) in tracked {
        rebuilt.store_mut().params_mut()[i] = w;
    }
    let rebuilt_acc = rebuilt.accuracy(&test, 256);
    assert_eq!(
        original_acc, rebuilt_acc,
        "rebuilt model must match exactly"
    );
    for (a, b) in net.store().params().iter().zip(rebuilt.store().params()) {
        assert_eq!(a, b);
    }
}

#[test]
fn regenerated_inits_are_stable_across_processish_boundaries() {
    // Two independently constructed stores with the same seed regenerate
    // identical initializations — nothing about regeneration depends on
    // in-process state.
    let a = models::lenet_300_100(99);
    let b = models::lenet_300_100(99);
    assert_eq!(a.store().params(), b.store().params());
    assert_eq!(a.store().regen_initial(), b.store().regen_initial());
}

#[test]
fn different_seeds_train_to_different_but_similar_quality_models() {
    let (train, test) = synthetic_mnist(800, 200, 31);
    let accs: Vec<f32> = [1u64, 2, 3]
        .iter()
        .map(|&s| {
            let cfg = TrainConfig::new(3, 64)
                .lr(LrSchedule::Constant(0.1))
                .patience(None);
            Trainer::new(cfg)
                .run(
                    models::mnist_100_100(s),
                    DropBack::new(20_000),
                    &train,
                    &test,
                )
                .best_val_acc
        })
        .collect();
    // All seeds learn...
    assert!(accs.iter().all(|&a| a > 0.6), "{accs:?}");
    // ...and the spread is modest.
    let max = accs.iter().cloned().fold(f32::MIN, f32::max);
    let min = accs.iter().cloned().fold(f32::MAX, f32::min);
    assert!(max - min < 0.2, "{accs:?}");
}
