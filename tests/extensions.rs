//! Integration tests for the extension features: quantization, the zeroed
//! ablation, optimizer memory accounting, checkpoints, and convergence
//! statistics.

use dropback::metrics::ConvergenceStats;
use dropback::optim::{Adam, SgdMomentum};
use dropback::prelude::*;
use dropback::Checkpoint;

fn data(seed: u64) -> (Dataset, Dataset) {
    synthetic_mnist(1000, 250, seed)
}

fn cfg(epochs: usize) -> TrainConfig {
    TrainConfig::new(epochs, 64)
        .lr(LrSchedule::StepDecay {
            initial: 0.2,
            factor: 0.5,
            every: 2,
        })
        .patience(None)
}

#[test]
fn quantized_dropback_trains_to_similar_accuracy() {
    let (train, test) = data(41);
    let full = Trainer::new(cfg(5)).run(
        models::mnist_100_100(41),
        DropBack::new(20_000),
        &train,
        &test,
    );
    let q8 = Trainer::new(cfg(5)).run(
        models::mnist_100_100(41),
        Quantized::new(DropBack::new(20_000), 8),
        &train,
        &test,
    );
    assert!(
        q8.best_val_acc > full.best_val_acc - 0.08,
        "8-bit {} vs fp32 {}",
        q8.best_val_acc,
        full.best_val_acc
    );
    assert_eq!(q8.optimizer, "dropback+q8");
    assert_eq!(q8.stored_weights, 20_000);
}

#[test]
fn quantized_weights_lie_on_a_grid() {
    let (train, _) = data(42);
    let mut net = models::mnist_100_100(42);
    let mut opt = Quantized::new(Sgd::new(), 4);
    let batcher = Batcher::new(64, 1);
    for (x, labels) in batcher.epoch(&train, 0) {
        let _ = net.loss_backward(&x, &labels);
        opt.step(net.store_mut(), 0.1);
    }
    // Each range has at most 2^4 = 16 distinct values.
    for r in net.store().ranges() {
        let distinct: std::collections::BTreeSet<u32> =
            net.store().slice(r).iter().map(|v| v.to_bits()).collect();
        assert!(
            distinct.len() <= 16,
            "{}: {} distinct values",
            r.name(),
            distinct.len()
        );
    }
}

#[test]
fn zeroed_untracked_is_worse_at_high_compression() {
    let (train, test) = data(43);
    let regen = Trainer::new(cfg(5)).run(
        models::mnist_100_100(43),
        DropBack::new(3_000),
        &train,
        &test,
    );
    let zeroed = Trainer::new(cfg(5)).run(
        models::mnist_100_100(43),
        DropBack::new(3_000).with_zeroed_untracked(),
        &train,
        &test,
    );
    assert!(
        regen.best_val_acc > zeroed.best_val_acc,
        "regenerated {} should beat zeroed {} (the paper's §2.1 claim)",
        regen.best_val_acc,
        zeroed.best_val_acc
    );
}

#[test]
fn optimizer_memory_accounting_flows_into_reports() {
    let (train, test) = data(44);
    let params = 89_610usize;
    let mom = Trainer::new(cfg(2)).run(
        models::mnist_100_100(44),
        SgdMomentum::new(0.9),
        &train,
        &test,
    );
    assert_eq!(mom.stored_weights, params * 2);
    let adam_cfg = TrainConfig::new(2, 64).lr(LrSchedule::Constant(0.002));
    let adam = Trainer::new(adam_cfg).run(models::mnist_100_100(44), Adam::new(), &train, &test);
    assert_eq!(adam.stored_weights, params * 3);
    // Compression < 1 signals the *extra* memory.
    assert!(mom.compression() < 1.0);
    assert!(adam.compression() < mom.compression());
}

#[test]
fn checkpoint_roundtrips_through_a_file() {
    let (train, test) = data(45);
    let mut net = models::mnist_100_100(45);
    let mut opt = SparseDropBack::new(5_000);
    let batcher = Batcher::new(64, 2);
    for epoch in 0..2u64 {
        for (x, labels) in batcher.epoch(&train, epoch) {
            let _ = net.loss_backward(&x, &labels);
            dropback::optim::Optimizer::step(&mut opt, net.store_mut(), 0.15);
        }
    }
    let acc = net.accuracy(&test, 256);
    let ckpt = Checkpoint::from_sparse(&net, &opt);
    let path = std::env::temp_dir().join(format!("dropback_it_{}.dbk", std::process::id()));
    ckpt.write_to(std::fs::File::create(&path).unwrap())
        .unwrap();
    let loaded = Checkpoint::read_from(std::fs::File::open(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).unwrap();
    let mut rebuilt = models::mnist_100_100(loaded.seed());
    loaded.apply(&mut rebuilt).unwrap();
    assert_eq!(rebuilt.accuracy(&test, 256), acc);
}

#[test]
fn network_summary_lists_every_range() {
    let net = models::lenet_300_100(1);
    let s = net.summary();
    assert!(s.contains("266610 parameters"));
    for r in net.param_ranges() {
        assert!(s.contains(r.name()), "missing {}", r.name());
    }
}

#[test]
fn convergence_stats_describe_training_reports() {
    let (train, test) = data(46);
    let report = Trainer::new(cfg(5)).run(models::mnist_100_100(46), Sgd::new(), &train, &test);
    let curve: Vec<f32> = report.val_curve().iter().map(|&(_, a)| a).collect();
    let stats = ConvergenceStats::from_curve(&curve);
    assert_eq!(stats.best, report.best_val_acc);
    assert_eq!(stats.best_epoch, report.best_epoch);
    assert!(stats.epochs_to_95.is_some());
    assert!(stats.auc <= stats.best);
}

#[test]
fn accelerator_story_holds_for_trained_budget() {
    use dropback::energy::{lenet_300_100_layers, Accelerator};
    let acc = Accelerator::edge_256k();
    let layers = lenet_300_100_layers();
    // The paper's pitch: a tracked set that fits on-chip trains with far
    // less energy than a dense model that spills to DRAM.
    let dense = acc.training_step(&layers, 266_610, 64);
    let budget = acc.training_step(&layers, 20_000, 64);
    assert!(dense.dram_pj > 0.0);
    assert_eq!(budget.dram_pj, 0.0);
    assert!(dense.total_pj() > budget.total_pj());
}
