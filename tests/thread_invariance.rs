//! Thread-invariance suite: training is bit-identical at every
//! `DROPBACK_THREADS` value and with the SIMD GEMM kernel on or off.
//!
//! The worker pool's determinism contract (see `docs/PERFORMANCE.md`) says
//! the thread count decides *where* work runs, never *what* is computed:
//! every parallel kernel partitions by problem size with disjoint writes
//! and serial-order reductions. The packed GEMM extends the contract to
//! kernel selection: the AVX2 microkernel and the scalar fallback compute
//! the same fused-multiply-add chains in the same order, so `DROPBACK_SIMD`
//! may change speed but never bits. These tests pin both axes end to end:
//! an MLP and a conv/BN model are trained for a few steps across the full
//! SIMD {on, off} × threads {1, 2, 4, 7} matrix, and the resulting
//! weights, loss history, and checkpoint bytes must match the
//! single-threaded scalar run bit for bit.
//!
//! The whole matrix for one model runs inside a single `#[test]`, and the
//! two tests serialize on [`config_lock`], because the pool's thread count
//! and the kernel selection are process-global state.

use dropback::prelude::*;
use dropback::tensor::{pool, simd};
use dropback::TrainState;
use std::sync::{Mutex, MutexGuard};

const THREAD_MATRIX: [usize; 4] = [1, 2, 4, 7];

/// Serializes the tests in this binary: each reconfigures the global pool.
fn config_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One short training run: returns the final parameter bits, the per-step
/// loss bits, and the serialized `TrainState` checkpoint bytes.
fn train_run(
    mut net: Network,
    mut opt: impl Optimizer,
    train: &Dataset,
    steps: usize,
    batch: usize,
) -> (Vec<u32>, Vec<u32>, Vec<u8>) {
    let batcher = Batcher::new(batch, 99);
    let mut losses = Vec::with_capacity(steps);
    let mut done = 0usize;
    'outer: for epoch in 0..u64::MAX {
        for (x, labels) in batcher.epoch(train, epoch) {
            let (loss, _acc) = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
            net.store_mut().zero_grads();
            losses.push(loss.to_bits());
            done += 1;
            if done == steps {
                break 'outer;
            }
        }
        opt.end_epoch(epoch as usize, net.store_mut());
    }
    let params: Vec<u32> = net.store().params().iter().map(|p| p.to_bits()).collect();
    let state = TrainState::capture(&net, &opt, 99, &TrainProgress::fresh());
    let mut ckpt = Vec::new();
    state.write_to(&mut ckpt).expect("serialize train state");
    (params, losses, ckpt)
}

fn assert_matches_serial(
    label: &str,
    serial: &(Vec<u32>, Vec<u32>, Vec<u8>),
    run: impl Fn() -> (Vec<u32>, Vec<u32>, Vec<u8>),
) {
    let was_active = simd::simd_active();
    for simd_on in [false, true] {
        simd::set_simd(simd_on); // no-op (stays scalar) off AVX2 hardware
        for &threads in &THREAD_MATRIX {
            if !simd_on && threads == THREAD_MATRIX[0] {
                continue; // that's the serial baseline itself
            }
            pool::set_threads(threads);
            let got = run();
            assert_eq!(
                serial.1, got.1,
                "{label}: loss history diverged at {threads} threads (simd {simd_on})"
            );
            assert_eq!(
                serial.0, got.0,
                "{label}: weight bits diverged at {threads} threads (simd {simd_on})"
            );
            assert_eq!(
                serial.2, got.2,
                "{label}: checkpoint bytes diverged at {threads} threads (simd {simd_on})"
            );
        }
    }
    pool::set_threads(1);
    simd::set_simd(was_active);
}

#[test]
fn mlp_training_is_bit_identical_across_thread_counts() {
    let _guard = config_lock();
    let (train, _) = synthetic_mnist(512, 64, 7);
    let run = || {
        train_run(
            models::mnist_100_100(7),
            DropBack::new(9_000),
            &train,
            6,
            64,
        )
    };
    pool::set_threads(THREAD_MATRIX[0]);
    simd::set_simd(false);
    let serial = run();
    assert_matches_serial("mnist-100-100/dropback", &serial, run);
}

#[test]
fn conv_training_is_bit_identical_across_thread_counts() {
    let _guard = config_lock();
    let (train, _) = synthetic_cifar(96, 16, models::CIFAR_NANO_HW, models::CIFAR_NANO_HW, 11);
    let run = || {
        train_run(
            models::vgg_s_nano(11),
            SparseDropBack::new(4_000),
            &train,
            4,
            16,
        )
    };
    pool::set_threads(THREAD_MATRIX[0]);
    simd::set_simd(false);
    let serial = run();
    assert_matches_serial("vgg-s-nano/dropback-sparse", &serial, run);
}
