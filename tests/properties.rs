//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning crate boundaries.

use dropback::prelude::*;
use dropback::prng::{regen_normal, regen_uniform, InitScheme, RegenInit};
use dropback::tensor::{matmul, matmul_nt, matmul_tn};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    (-100i32..100).prop_map(|v| v as f32 / 10.0)
}

proptest! {
    #[test]
    fn regen_is_pure(seed in any::<u64>(), index in any::<u64>()) {
        prop_assert_eq!(regen_normal(seed, index).to_bits(), regen_normal(seed, index).to_bits());
        prop_assert_eq!(regen_uniform(seed, index).to_bits(), regen_uniform(seed, index).to_bits());
        let u = regen_uniform(seed, index);
        prop_assert!((0.0..1.0).contains(&u));
        prop_assert!(regen_normal(seed, index).is_finite());
    }

    #[test]
    fn regen_init_fill_matches_pointwise(seed in any::<u64>(), start in 0u64..1_000_000, len in 1usize..64) {
        let init = RegenInit::new(seed, InitScheme::lecun_normal(100));
        let mut buf = vec![0.0f32; len];
        init.fill(start, &mut buf);
        for (i, &v) in buf.iter().enumerate() {
            prop_assert_eq!(v.to_bits(), init.value(start + i as u64).to_bits());
        }
    }

    #[test]
    fn matmul_transpose_variants_agree(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        vals in proptest::collection::vec(-10i32..10, 0..1)
    ) {
        let _ = vals;
        let a = Tensor::from_fn(vec![m, k], |i| ((i * 31 + 7) % 13) as f32 - 6.0);
        let b = Tensor::from_fn(vec![k, n], |i| ((i * 17 + 3) % 11) as f32 - 5.0);
        let c = matmul(&a, &b);
        let c_tn = matmul_tn(&a.t(), &b);
        let c_nt = matmul_nt(&a, &b.t());
        for ((x, y), z) in c.data().iter().zip(c_tn.data()).zip(c_nt.data()) {
            prop_assert!((x - y).abs() < 1e-3);
            prop_assert!((x - z).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_is_linear_in_lhs(scale in small_f32()) {
        let a = Tensor::from_fn(vec![3, 4], |i| (i as f32 * 0.7).sin());
        let b = Tensor::from_fn(vec![4, 2], |i| (i as f32 * 0.3).cos());
        let left = matmul(&a.scaled(scale), &b);
        let right = matmul(&a, &b).scaled(scale);
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-2 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn transpose_is_an_involution(r in 1usize..8, c in 1usize..8) {
        let t = Tensor::from_fn(vec![r, c], |i| i as f32);
        prop_assert_eq!(t.t().t(), t);
    }

    #[test]
    fn top_k_mask_matches_full_sort(
        scores in proptest::collection::vec(-1000i32..1000, 1..200),
        k_frac in 1usize..100
    ) {
        let scores: Vec<f32> = scores.iter().map(|&v| v as f32 / 10.0).collect();
        let k = (k_frac * scores.len() / 100).max(1);
        let mask = dropback::optim::top_k_mask(&scores, k);
        prop_assert_eq!(mask.iter().filter(|&&m| m).count(), k.min(scores.len()));
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b))
        });
        for (rank, &idx) in order.iter().enumerate() {
            prop_assert_eq!(mask[idx], rank < k.min(scores.len()), "rank {} idx {}", rank, idx);
        }
    }

    #[test]
    fn dropback_invariant_holds_for_random_gradients(
        grads in proptest::collection::vec(-100i32..100, 16..64),
        k in 1usize..16,
        steps in 1usize..5
    ) {
        let n = grads.len();
        let mut ps = ParamStore::new(77);
        let r = ps.register("w", n, dropback::prng::InitScheme::lecun_normal(8));
        let mut opt = DropBack::new(k);
        for s in 0..steps {
            ps.zero_grads();
            let g: Vec<f32> = grads.iter().map(|&v| (v as f32 / 50.0) * (s as f32 + 1.0)).collect();
            ps.accumulate_grad(&r, &g);
            dropback::optim::Optimizer::step(&mut opt, &mut ps, 0.1);
            // Invariant: untracked == regenerated init; tracked count == k.
            let tracked = opt.mask().iter().filter(|&&m| m).count();
            prop_assert_eq!(tracked, k.min(n));
            for i in 0..n {
                if !opt.mask()[i] {
                    prop_assert_eq!(ps.params()[i], ps.init_value(i));
                }
            }
        }
    }

    #[test]
    fn dataset_gather_preserves_rows(n in 2usize..20, d in 1usize..8) {
        let ds = Dataset::new(
            Tensor::from_fn(vec![n, d], |i| i as f32),
            (0..n).map(|i| i % 3).collect(),
            3,
        );
        let idx: Vec<usize> = (0..n).rev().collect();
        let (x, y) = ds.gather(&idx);
        for (row, &src) in idx.iter().enumerate() {
            let _ = row;
            prop_assert_eq!(y[idx.len() - 1 - src], src % 3);
        }
        prop_assert_eq!(x.shape(), &[n, d]);
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..6, cols in 2usize..8, shift in small_f32()) {
        let t = Tensor::from_fn(vec![rows, cols], |i| (i as f32 * 0.37).sin() * 5.0 + shift);
        let s = dropback::tensor::ops::softmax_rows(&t);
        for r in 0..rows {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn axis_sum_matches_total_sum(a in 1usize..5, b in 1usize..5, c in 1usize..5, axis in 0usize..3) {
        use dropback::tensor::axis::sum_axis;
        let t = Tensor::from_fn(vec![a, b, c], |i| ((i * 7 % 13) as f32) - 6.0);
        let reduced = sum_axis(&t, axis);
        prop_assert!((reduced.sum() - t.sum()).abs() < 1e-3);
        let mut expect_shape = vec![a, b, c];
        expect_shape.remove(axis);
        prop_assert_eq!(reduced.shape(), &expect_shape[..]);
    }

    #[test]
    fn concat_split_roundtrip(a in 1usize..4, s1 in 1usize..4, s2 in 1usize..4, inner in 1usize..4) {
        use dropback::tensor::axis::{concat, split};
        let x = Tensor::from_fn(vec![a, s1, inner], |i| i as f32);
        let y = Tensor::from_fn(vec![a, s2, inner], |i| 1000.0 + i as f32);
        let joined = concat(&[&x, &y], 1);
        let parts = split(&joined, 1, &[s1, s2]);
        prop_assert_eq!(&parts[0], &x);
        prop_assert_eq!(&parts[1], &y);
    }

    #[test]
    fn sigmoid_tanh_ranges(v in -50.0f32..50.0) {
        use dropback::tensor::activations::{sigmoid_scalar};
        let s = sigmoid_scalar(v);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!(s.is_finite());
        // Symmetry: σ(−v) = 1 − σ(v).
        prop_assert!((sigmoid_scalar(-v) - (1.0 - s)).abs() < 1e-5);
    }

    #[test]
    fn quantizer_is_idempotent(bits in 2u32..9, v in -10.0f32..10.0) {
        let q = Quantizer::new(bits);
        let once = q.quantize(v, 10.0);
        let twice = q.quantize(once, 10.0);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
        prop_assert!((once - v).abs() <= 10.0 / (q.levels() as f32 / 2.0) + 1e-5);
    }

    #[test]
    fn compression_ratio_roundtrips(total in 1usize..1_000_000, stored in 1usize..1_000_000) {
        let stored = stored.min(total);
        let ratio = compression_ratio(total, stored);
        prop_assert!(ratio >= 1.0);
        let rel_err = (ratio * stored as f32 - total as f32).abs() / total as f32;
        prop_assert!(rel_err < 1e-3);
    }
}
