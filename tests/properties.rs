//! Randomized property tests on the core data structures and invariants,
//! spanning crate boundaries.
//!
//! A dependency-free harness replaces proptest: each property runs over a
//! deterministic stream of pseudo-random cases drawn from the workspace's
//! own [`Xorshift64`] generator, so failures reproduce exactly and the
//! workspace builds offline.

use dropback::prelude::*;
use dropback::prng::{regen_normal, regen_uniform, InitScheme, RegenInit, Xorshift64};
use dropback::tensor::{matmul, matmul_nt, matmul_tn};

/// Deterministic case generator: a thin sampling layer over xorshift.
struct Cases {
    rng: Xorshift64,
}

impl Cases {
    fn new(seed: u64) -> Self {
        Self {
            rng: Xorshift64::new(seed),
        }
    }

    fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform usize in `[lo, hi)`.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.u64() % (hi - lo) as u64) as usize
    }

    /// Uniform f32 in `[lo, hi)`.
    fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.rng.next_f32() * (hi - lo)
    }

    /// A vector of f32 drawn from `[lo, hi)`.
    fn f32_vec(&mut self, len: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..len).map(|_| self.f32_in(lo, hi)).collect()
    }
}

/// Runs `body` over `n` generated cases; panics carry the case index so a
/// failure pinpoints its inputs (the generator is deterministic per test).
fn check(n: usize, seed: u64, mut body: impl FnMut(&mut Cases, usize)) {
    let mut cases = Cases::new(seed);
    for case in 0..n {
        body(&mut cases, case);
    }
}

#[test]
fn regen_is_pure() {
    check(200, 0xA11CE, |c, case| {
        let (seed, index) = (c.u64(), c.u64());
        assert_eq!(
            regen_normal(seed, index).to_bits(),
            regen_normal(seed, index).to_bits(),
            "case {case}"
        );
        assert_eq!(
            regen_uniform(seed, index).to_bits(),
            regen_uniform(seed, index).to_bits(),
            "case {case}"
        );
        let u = regen_uniform(seed, index);
        assert!((0.0..1.0).contains(&u), "case {case}: {u}");
        assert!(regen_normal(seed, index).is_finite(), "case {case}");
    });
}

#[test]
fn regen_init_fill_matches_pointwise() {
    check(50, 0xF111, |c, case| {
        let seed = c.u64();
        let start = c.u64() % 1_000_000;
        let len = c.usize_in(1, 64);
        let init = RegenInit::new(seed, InitScheme::lecun_normal(100));
        let mut buf = vec![0.0f32; len];
        init.fill(start, &mut buf);
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                init.value(start + i as u64).to_bits(),
                "case {case} offset {i}"
            );
        }
    });
}

#[test]
fn matmul_transpose_variants_agree() {
    check(40, 0x3A7, |c, case| {
        let (m, k, n) = (c.usize_in(1, 6), c.usize_in(1, 6), c.usize_in(1, 6));
        let a = Tensor::from_fn(vec![m, k], |i| ((i * 31 + 7) % 13) as f32 - 6.0);
        let b = Tensor::from_fn(vec![k, n], |i| ((i * 17 + 3) % 11) as f32 - 5.0);
        let c_ = matmul(&a, &b);
        let c_tn = matmul_tn(&a.t(), &b);
        let c_nt = matmul_nt(&a, &b.t());
        for ((x, y), z) in c_.data().iter().zip(c_tn.data()).zip(c_nt.data()) {
            assert!((x - y).abs() < 1e-3, "case {case}: {x} vs {y}");
            assert!((x - z).abs() < 1e-3, "case {case}: {x} vs {z}");
        }
    });
}

#[test]
fn matmul_is_linear_in_lhs() {
    check(50, 0x11EA2, |c, case| {
        let scale = c.f32_in(-10.0, 10.0);
        let a = Tensor::from_fn(vec![3, 4], |i| (i as f32 * 0.7).sin());
        let b = Tensor::from_fn(vec![4, 2], |i| (i as f32 * 0.3).cos());
        let left = matmul(&a.scaled(scale), &b);
        let right = matmul(&a, &b).scaled(scale);
        for (x, y) in left.data().iter().zip(right.data()) {
            assert!(
                (x - y).abs() < 1e-2 * (1.0 + y.abs()),
                "case {case}: {x} vs {y} at scale {scale}"
            );
        }
    });
}

#[test]
fn transpose_is_an_involution() {
    check(40, 0x7A5, |c, case| {
        let (r, cols) = (c.usize_in(1, 8), c.usize_in(1, 8));
        let t = Tensor::from_fn(vec![r, cols], |i| i as f32);
        assert_eq!(t.t().t(), t, "case {case}");
    });
}

#[test]
fn top_k_mask_matches_full_sort() {
    check(60, 0x70B, |c, case| {
        let len = c.usize_in(1, 200);
        let scores = c.f32_vec(len, -100.0, 100.0);
        let k = (c.usize_in(1, 100) * len / 100).max(1);
        let mask = dropback::optim::top_k_mask(&scores, k);
        assert_eq!(
            mask.iter().filter(|&&m| m).count(),
            k.min(len),
            "case {case}"
        );
        let mut order: Vec<usize> = (0..len).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
        for (rank, &idx) in order.iter().enumerate() {
            assert_eq!(
                mask[idx],
                rank < k.min(len),
                "case {case} rank {rank} idx {idx}"
            );
        }
    });
}

#[test]
fn dropback_invariant_holds_for_random_gradients() {
    check(25, 0xD20B, |c, case| {
        let n = c.usize_in(16, 64);
        let grads = c.f32_vec(n, -2.0, 2.0);
        let k = c.usize_in(1, 16);
        let steps = c.usize_in(1, 5);
        let mut ps = ParamStore::new(77);
        let r = ps.register("w", n, dropback::prng::InitScheme::lecun_normal(8));
        let mut opt = DropBack::new(k);
        for s in 0..steps {
            ps.zero_grads();
            let g: Vec<f32> = grads.iter().map(|&v| v * (s as f32 + 1.0)).collect();
            ps.accumulate_grad(&r, &g);
            dropback::optim::Optimizer::step(&mut opt, &mut ps, 0.1);
            // Invariant: untracked == regenerated init; tracked count == k.
            let tracked = opt.mask().iter().filter(|&&m| m).count();
            assert_eq!(tracked, k.min(n), "case {case} step {s}");
            for i in 0..n {
                if !opt.mask()[i] {
                    assert_eq!(ps.params()[i], ps.init_value(i), "case {case} idx {i}");
                }
            }
        }
    });
}

#[test]
fn dataset_gather_preserves_rows() {
    check(40, 0xDA7A, |c, case| {
        let (n, d) = (c.usize_in(2, 20), c.usize_in(1, 8));
        let ds = Dataset::new(
            Tensor::from_fn(vec![n, d], |i| i as f32),
            (0..n).map(|i| i % 3).collect(),
            3,
        );
        let idx: Vec<usize> = (0..n).rev().collect();
        let (x, y) = ds.gather(&idx);
        for &src in &idx {
            assert_eq!(y[idx.len() - 1 - src], src % 3, "case {case} src {src}");
        }
        assert_eq!(x.shape(), &[n, d], "case {case}");
    });
}

#[test]
fn softmax_rows_are_distributions() {
    check(40, 0x50F7, |c, case| {
        let (rows, cols) = (c.usize_in(1, 6), c.usize_in(2, 8));
        let shift = c.f32_in(-10.0, 10.0);
        let t = Tensor::from_fn(vec![rows, cols], |i| (i as f32 * 0.37).sin() * 5.0 + shift);
        let s = dropback::tensor::ops::softmax_rows(&t);
        for r in 0..rows {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "case {case} row {r}: {sum}");
            assert!(s.row(r).iter().all(|&p| p >= 0.0), "case {case} row {r}");
        }
    });
}

#[test]
fn axis_sum_matches_total_sum() {
    check(40, 0xA715, |c, case| {
        use dropback::tensor::axis::sum_axis;
        let (a, b, d) = (c.usize_in(1, 5), c.usize_in(1, 5), c.usize_in(1, 5));
        let axis = c.usize_in(0, 3);
        let t = Tensor::from_fn(vec![a, b, d], |i| ((i * 7 % 13) as f32) - 6.0);
        let reduced = sum_axis(&t, axis);
        assert!(
            (reduced.sum() - t.sum()).abs() < 1e-3,
            "case {case} axis {axis}"
        );
        let mut expect_shape = vec![a, b, d];
        expect_shape.remove(axis);
        assert_eq!(reduced.shape(), &expect_shape[..], "case {case}");
    });
}

#[test]
fn concat_split_roundtrip() {
    check(40, 0xC0CA, |c, case| {
        use dropback::tensor::axis::{concat, split};
        let (a, s1, s2, inner) = (
            c.usize_in(1, 4),
            c.usize_in(1, 4),
            c.usize_in(1, 4),
            c.usize_in(1, 4),
        );
        let x = Tensor::from_fn(vec![a, s1, inner], |i| i as f32);
        let y = Tensor::from_fn(vec![a, s2, inner], |i| 1000.0 + i as f32);
        let joined = concat(&[&x, &y], 1);
        let parts = split(&joined, 1, &[s1, s2]);
        assert_eq!(&parts[0], &x, "case {case}");
        assert_eq!(&parts[1], &y, "case {case}");
    });
}

#[test]
fn sigmoid_tanh_ranges() {
    check(100, 0x516, |c, case| {
        use dropback::tensor::activations::sigmoid_scalar;
        let v = c.f32_in(-50.0, 50.0);
        let s = sigmoid_scalar(v);
        assert!((0.0..=1.0).contains(&s), "case {case}: σ({v}) = {s}");
        assert!(s.is_finite(), "case {case}");
        // Symmetry: σ(−v) = 1 − σ(v).
        assert!(
            (sigmoid_scalar(-v) - (1.0 - s)).abs() < 1e-5,
            "case {case}: v = {v}"
        );
    });
}

#[test]
fn quantizer_is_idempotent() {
    check(100, 0x4A7, |c, case| {
        let bits = c.usize_in(2, 9) as u32;
        let v = c.f32_in(-10.0, 10.0);
        let q = Quantizer::new(bits);
        let once = q.quantize(v, 10.0);
        let twice = q.quantize(once, 10.0);
        assert_eq!(once.to_bits(), twice.to_bits(), "case {case}");
        assert!(
            (once - v).abs() <= 10.0 / (q.levels() as f32 / 2.0) + 1e-5,
            "case {case}: {v} -> {once} at {bits} bits"
        );
    });
}

#[test]
fn compression_ratio_roundtrips() {
    check(100, 0xC0DE, |c, case| {
        let total = c.usize_in(1, 1_000_000);
        let stored = c.usize_in(1, 1_000_000).min(total);
        let ratio = compression_ratio(total, stored);
        assert!(ratio >= 1.0, "case {case}");
        let rel_err = (ratio * stored as f32 - total as f32).abs() / total as f32;
        assert!(rel_err < 1e-3, "case {case}: {total}/{stored} -> {ratio}");
    });
}
