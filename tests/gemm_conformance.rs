//! GEMM conformance suite: pins the packed-microkernel path to a naive
//! triple-loop reference, bit for bit.
//!
//! The determinism contract (see `docs/PERFORMANCE.md`) says every C
//! element is one sequential fused-multiply-add fold over `k` in ascending
//! order, regardless of cache blocking, thread count, or kernel (AVX2,
//! scalar-FMA, portable). That makes the *naive* reference — a plain
//! `f32::mul_add` loop — an exact-bits oracle, not a tolerance check:
//!
//! * randomized shapes, including tile-straddling (m/n/k not divisible by
//!   the 6×16 microkernel or the MC/KC/NC blocks), k=1, 1×1, and
//!   tall/skinny matrices, for all three transpose variants;
//! * SIMD vs scalar kernels compared exact-bits (toggled in-process via
//!   `simd::set_simd`; `scripts/check.sh gemm-conformance` additionally
//!   reruns this whole binary under `DROPBACK_SIMD=0`);
//! * bit-identity across threads {1, 2, 4, 7} in the style of
//!   `tests/thread_invariance.rs`.
//!
//! Tests that reconfigure process-global state (thread count, kernel
//! selection) serialize on [`config_lock`].

use dropback::prng::Xorshift64;
use dropback::tensor::{matmul, matmul_nt, matmul_tn, pool, simd, Tensor};
use std::sync::{Mutex, MutexGuard};

const THREAD_MATRIX: [usize; 4] = [1, 2, 4, 7];

/// Serializes tests that reconfigure the global pool or kernel selection.
fn config_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic case generator (same harness style as tests/properties.rs).
struct Cases {
    rng: Xorshift64,
}

impl Cases {
    fn new(seed: u64) -> Self {
        Self {
            rng: Xorshift64::new(seed),
        }
    }
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.rng.next_u64() % (hi - lo) as u64) as usize
    }
    fn f32_vec(&mut self, len: usize) -> Vec<f32> {
        (0..len).map(|_| self.rng.next_f32() * 2.0 - 1.0).collect()
    }
}

fn check(n: usize, seed: u64, mut body: impl FnMut(&mut Cases, usize)) {
    let mut cases = Cases::new(seed);
    for case in 0..n {
        body(&mut cases, case);
    }
}

/// The oracle: a naive triple loop folding `c ← fma(a, b, c)` over `k` in
/// ascending order from 0.0 — exactly the per-element chain the packed
/// path promises.
fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut t = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            t[c * rows + r] = src[r * cols + c];
        }
    }
    t
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx}: element {i} diverged ({g} vs {w})"
        );
    }
}

/// Shapes that pin every structural edge of the packed path: unit dims,
/// k=1, tall/skinny, exact tile multiples, one-past and one-short of the
/// 6×16 microkernel, and sizes straddling the MC=96 / KC=256 / NC=512
/// cache blocks.
const EDGE_SHAPES: [(usize, usize, usize); 12] = [
    (1, 1, 1),
    (1, 1, 7),
    (6, 16, 1),
    (7, 17, 3),
    (5, 15, 33),
    (12, 32, 64),
    (200, 1, 4),
    (1, 200, 4),
    (97, 18, 5),
    (13, 513, 20),
    (6, 16, 257),
    (101, 40, 300),
];

#[test]
fn packed_gemm_matches_naive_reference_bitwise() {
    for &(m, n, k) in &EDGE_SHAPES {
        let mut c = Cases::new((m * 1000 + n * 10 + k) as u64 | 1);
        let a = c.f32_vec(m * k);
        let b = c.f32_vec(k * n);
        let got = matmul(
            &Tensor::from_vec(vec![m, k], a.clone()),
            &Tensor::from_vec(vec![k, n], b.clone()),
        );
        assert_bits_eq(got.data(), &naive(m, n, k, &a, &b), &format!("{m}x{n}x{k}"));
    }
    check(40, 0xC0FF, |c, case| {
        let (m, n, k) = (c.usize_in(1, 40), c.usize_in(1, 40), c.usize_in(1, 40));
        let a = c.f32_vec(m * k);
        let b = c.f32_vec(k * n);
        let got = matmul(
            &Tensor::from_vec(vec![m, k], a.clone()),
            &Tensor::from_vec(vec![k, n], b.clone()),
        );
        assert_bits_eq(
            got.data(),
            &naive(m, n, k, &a, &b),
            &format!("case {case} ({m}x{n}x{k})"),
        );
    });
}

#[test]
fn transpose_variants_match_naive_reference_bitwise() {
    check(30, 0x7A55, |c, case| {
        let (m, n, k) = (c.usize_in(1, 30), c.usize_in(1, 30), c.usize_in(1, 30));
        let a = c.f32_vec(m * k);
        let b = c.f32_vec(k * n);
        let want = naive(m, n, k, &a, &b);
        // Aᵀ·B with A stored as [k, m].
        let tn = matmul_tn(
            &Tensor::from_vec(vec![k, m], transpose(&a, m, k)),
            &Tensor::from_vec(vec![k, n], b.clone()),
        );
        assert_bits_eq(tn.data(), &want, &format!("case {case} tn ({m}x{n}x{k})"));
        // A·Bᵀ with B stored as [n, k].
        let nt = matmul_nt(
            &Tensor::from_vec(vec![m, k], a.clone()),
            &Tensor::from_vec(vec![n, k], transpose(&b, k, n)),
        );
        assert_bits_eq(nt.data(), &want, &format!("case {case} nt ({m}x{n}x{k})"));
    });
    // Transpose variants at a block-straddling size.
    let (m, n, k) = (103, 530, 260);
    let mut c = Cases::new(0xB1C);
    let a = c.f32_vec(m * k);
    let b = c.f32_vec(k * n);
    let want = naive(m, n, k, &a, &b);
    let tn = matmul_tn(
        &Tensor::from_vec(vec![k, m], transpose(&a, m, k)),
        &Tensor::from_vec(vec![k, n], b.clone()),
    );
    assert_bits_eq(tn.data(), &want, "large tn");
    let nt = matmul_nt(
        &Tensor::from_vec(vec![m, k], a),
        &Tensor::from_vec(vec![n, k], transpose(&b, k, n)),
    );
    assert_bits_eq(nt.data(), &want, "large nt");
}

#[test]
fn simd_and_scalar_kernels_agree_bitwise() {
    let _guard = config_lock();
    let was_active = simd::simd_active();
    for &(m, n, k) in &[(7usize, 17usize, 3usize), (64, 48, 96), (150, 550, 300)] {
        let mut c = Cases::new((m + n + k) as u64 | 1);
        let a = Tensor::from_vec(vec![m, k], c.f32_vec(m * k));
        let b = Tensor::from_vec(vec![k, n], c.f32_vec(k * n));
        simd::set_simd(true); // no-op (stays scalar) off AVX2 hardware
        let fast = matmul(&a, &b);
        simd::set_simd(false);
        let scalar = matmul(&a, &b);
        assert_bits_eq(
            fast.data(),
            scalar.data(),
            &format!("simd vs scalar {m}x{n}x{k}"),
        );
    }
    simd::set_simd(was_active);
}

#[test]
fn gemm_is_bit_identical_across_thread_counts() {
    let _guard = config_lock();
    let was_active = simd::simd_active();
    // Large enough to clear PARALLEL_THRESHOLD and span several row chunks
    // and all three cache-block dimensions.
    let (m, n, k) = (150, 550, 300);
    let mut c = Cases::new(0xDEAD);
    let a = Tensor::from_vec(vec![m, k], c.f32_vec(m * k));
    let b = Tensor::from_vec(vec![k, n], c.f32_vec(k * n));
    for simd_on in [true, false] {
        simd::set_simd(simd_on);
        pool::set_threads(THREAD_MATRIX[0]);
        let serial = matmul(&a, &b);
        for &threads in &THREAD_MATRIX[1..] {
            pool::set_threads(threads);
            let got = matmul(&a, &b);
            assert_bits_eq(
                got.data(),
                serial.data(),
                &format!("threads {threads} (simd {simd_on})"),
            );
        }
    }
    pool::set_threads(1);
    simd::set_simd(was_active);
}
