//! Top-level façade for the DropBack reproduction workspace.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories required by the project layout; the actual library surface
//! lives in [`dropback`] and the substrate crates it re-exports.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use dropback;
