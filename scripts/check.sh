#!/usr/bin/env bash
# The pre-merge gate: formatting, lints, and the full test suite.
# Everything here must pass before a change lands (see README "Install /
# build"). Runs entirely offline — the workspace has no external deps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== dropback-lint (strict, timed)"
# Build first so the timing below measures the lint pass, not the compile.
cargo build -q -p dropback-lint
LINT_T0="$(date +%s%N)"
if ! ./target/debug/dropback-lint --check --strict; then
    echo "dropback-lint found violations (or stale lint.allow entries under --strict);" >&2
    echo "run \`cargo run -p dropback-lint -- --check --strict\` for details" >&2
    echo "(rules and rationale: docs/LINTS.md; suppressions: lint.allow)" >&2
    exit 1
fi
LINT_MS=$((($(date +%s%N) - LINT_T0) / 1000000))
# The lint pass gates every PR, so it must stay interactive-fast. The
# budget is generous (structural parse included, the pass takes well
# under a second today); tripping it means something pathological landed.
LINT_BUDGET_MS=30000
echo "dropback-lint pass: ${LINT_MS}ms (budget ${LINT_BUDGET_MS}ms)"
if [ "$LINT_MS" -gt "$LINT_BUDGET_MS" ]; then
    echo "dropback-lint exceeded its ${LINT_BUDGET_MS}ms budget (${LINT_MS}ms)" >&2
    exit 1
fi
# The --json report feeds machine consumers; assert the schema actually
# parses and carries every top-level key before anything downstream
# learns the hard way.
./target/debug/dropback-lint --check --json | python3 -c '
import json, sys
r = json.load(sys.stdin)
keys = {"files_scanned", "failures", "findings", "suppressed", "todos", "unused_allows"}
missing = keys - r.keys()
assert not missing, f"lint --json report is missing keys: {missing}"
assert r["failures"] == len(r["findings"]), "failures count must mirror findings"
assert isinstance(r["files_scanned"], int) and r["files_scanned"] > 50
for s in r["suppressed"]:
    assert s["justification"], "every suppression carries its justification"
print("lint --json schema ok: %d files, %d suppressed" % (r["files_scanned"], len(r["suppressed"])))
'

echo "== resume-determinism smoke (bit-identical crash/resume)"
cargo test -q -p dropback --test resume

echo "== checkpoint corruption fuzz (truncation/bit-flips never panic)"
cargo test -q -p dropback --test corruption

echo "== cargo test"
cargo test --workspace -q

echo "== threads-matrix (bit-identical training at 1 and 4 worker threads)"
# The thread-invariance suite trains the same models at several thread
# counts inside one process; running the whole suite under two ambient
# DROPBACK_THREADS values additionally pins that the *default* pool size
# never leaks into results (see docs/PERFORMANCE.md).
DROPBACK_THREADS=1 cargo test -q -p dropback-repro --test thread_invariance
DROPBACK_THREADS=4 cargo test -q -p dropback-repro --test thread_invariance

echo "== gemm-conformance (packed microkernel vs naive reference, SIMD on/off)"
# The conformance suite compares the packed GEMM against a naive
# triple-loop oracle bit-for-bit and self-toggles the SIMD kernel
# in-process. Rerunning the whole binary under DROPBACK_SIMD=0 pins that
# the env-selected scalar default produces the same bits, and the
# threads-matrix rerun pins the ambient pool size out of the results.
for threads in 1 4; do
    DROPBACK_THREADS=$threads \
        cargo test -q -p dropback-repro --test gemm_conformance
    DROPBACK_SIMD=0 DROPBACK_THREADS=$threads \
        cargo test -q -p dropback-repro --test gemm_conformance
done

echo "== trace smoke (Chrome trace export parses, spans pair up)"
# A short traced training run, then the analyzer re-parses the file and
# fails on JSON errors or unpaired begin/end events.
TRACE_TMP="$(mktemp -t dropback-trace-smoke.XXXXXX.json)"
SERVE_TMP="$(mktemp -d -t dropback-serve-smoke.XXXXXX)"
SERVE_PID=""
CHAOS_PID=""
OBS_PID=""
cleanup() {
    rm -f "$TRACE_TMP"
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2> /dev/null || true
    [ -n "$CHAOS_PID" ] && kill "$CHAOS_PID" 2> /dev/null || true
    [ -n "$OBS_PID" ] && kill "$OBS_PID" 2> /dev/null || true
    rm -rf "$SERVE_TMP"
}
trap cleanup EXIT
cargo build --release -q -p dropback --bins
./target/release/dropback-cli train --model mnist-100-100 --epochs 2 \
    --budget 20000 --train 600 --test 150 --trace "$TRACE_TMP" --quiet > /dev/null
if ! ./target/release/dropback-trace "$TRACE_TMP" > /dev/null; then
    echo "dropback-trace rejected the smoke trace (parse error or unpaired events)" >&2
    exit 1
fi

echo "== serve smoke (boot, /infer, live hot-swap, telemetry digest, clean exit)"
# Prep one real snapshot, boot the server on an ephemeral port, probe it
# over HTTP, write a *newer* snapshot and wait for the hot swap to land,
# assert the latency histogram is populated, then shut down cleanly and
# require the final telemetry digest on stdout.
cargo build --release -q -p dropback-serve --bins
./target/release/dropback-serve prep --dir "$SERVE_TMP/ckpts" --epochs 1 \
    --samples 128 --quiet
./target/release/dropback-serve serve --dir "$SERVE_TMP/ckpts" \
    --addr 127.0.0.1:0 --addr-file "$SERVE_TMP/addr" --quiet \
    > "$SERVE_TMP/digest.json" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -f "$SERVE_TMP/addr" ] && break
    sleep 0.1
done
if [ ! -f "$SERVE_TMP/addr" ]; then
    echo "dropback-serve never published its address" >&2
    exit 1
fi
SERVE_ADDR="$(cat "$SERVE_TMP/addr")"
./target/release/dropback-serve probe --addr "$SERVE_ADDR" \
    --healthz --infer --repeat 3 > /dev/null
# A second training epoch lands on disk; the watcher must hot-swap to it.
./target/release/dropback-serve prep --dir "$SERVE_TMP/ckpts" --epochs 2 \
    --samples 128 --quiet
./target/release/dropback-serve probe --addr "$SERVE_ADDR" \
    --expect-epoch 2 --infer --assert-latency > /dev/null
./target/release/dropback-serve probe --addr "$SERVE_ADDR" --shutdown > /dev/null
wait "$SERVE_PID"
SERVE_PID=""
if ! grep -q '"serve.swaps":1' "$SERVE_TMP/digest.json"; then
    echo "serve digest missing the hot swap:" >&2
    cat "$SERVE_TMP/digest.json" >&2
    exit 1
fi

echo "== chaos smoke (seeded flood sheds 503s, server stays live, drain digest)"
# Boot a deliberately tiny server (1-deep queue, slow flush, short
# io-timeout) and slam it with a seeded flood of real requests plus rude
# mid-body hangups. The server must shed with 503 + Retry-After, answer
# /healthz afterwards, then drain and report the shed/drain counters.
./target/release/dropback-serve serve --dir "$SERVE_TMP/ckpts" \
    --addr 127.0.0.1:0 --addr-file "$SERVE_TMP/chaos-addr" --quiet \
    --queue-cap 1 --max-batch 1 --flush-ms 100 --io-timeout-ms 500 \
    --drain-ms 1000 > "$SERVE_TMP/chaos-digest.json" &
CHAOS_PID=$!
for _ in $(seq 1 100); do
    [ -f "$SERVE_TMP/chaos-addr" ] && break
    sleep 0.1
done
if [ ! -f "$SERVE_TMP/chaos-addr" ]; then
    echo "dropback-serve (chaos) never published its address" >&2
    exit 1
fi
CHAOS_ADDR="$(cat "$SERVE_TMP/chaos-addr")"
./target/release/dropback-serve probe --addr "$CHAOS_ADDR" \
    --flood 16 --seed 1234 --expect-shed --healthz > /dev/null
./target/release/dropback-serve probe --addr "$CHAOS_ADDR" --shutdown > /dev/null
wait "$CHAOS_PID"
CHAOS_PID=""
if grep -q '"serve.shed":0,' "$SERVE_TMP/chaos-digest.json" \
    || ! grep -q '"serve.shed":' "$SERVE_TMP/chaos-digest.json"; then
    echo "chaos digest shows no shed load:" >&2
    cat "$SERVE_TMP/chaos-digest.json" >&2
    exit 1
fi
for key in '"serve.drained":' '"serve.drain.forced":' '"serve.timeout.read":'; do
    if ! grep -q "$key" "$SERVE_TMP/chaos-digest.json"; then
        echo "chaos digest missing $key:" >&2
        cat "$SERVE_TMP/chaos-digest.json" >&2
        exit 1
    fi
done

echo "== serve-trace smoke (async request lanes pair up, access log parses)"
# Boot with request tracing, an access log, and the flight recorder, put
# real + flood traffic through it, and fetch /debug/flightrec live. The
# exported timeline must satisfy the strict analyzer (per-id async lane
# pairing) and every access-log line must be one parseable JSON object
# carrying the per-request schema (the Json::parse round-trip itself is
# pinned by serve's access_log unit test).
./target/release/dropback-serve serve --dir "$SERVE_TMP/ckpts" \
    --addr 127.0.0.1:0 --addr-file "$SERVE_TMP/obs-addr" --quiet \
    --trace "$SERVE_TMP/obs-trace.json" \
    --access-log "$SERVE_TMP/obs-access.jsonl" \
    --flightrec "$SERVE_TMP/obs-flightrec.json" \
    > "$SERVE_TMP/obs-digest.json" &
OBS_PID=$!
for _ in $(seq 1 100); do
    [ -f "$SERVE_TMP/obs-addr" ] && break
    sleep 0.1
done
if [ ! -f "$SERVE_TMP/obs-addr" ]; then
    echo "dropback-serve (trace smoke) never published its address" >&2
    exit 1
fi
OBS_ADDR="$(cat "$SERVE_TMP/obs-addr")"
./target/release/dropback-serve probe --addr "$OBS_ADDR" \
    --healthz --infer --repeat 4 > /dev/null
./target/release/dropback-serve probe --addr "$OBS_ADDR" \
    --flood 8 --seed 99 > /dev/null
./target/release/dropback-serve probe --addr "$OBS_ADDR" \
    --flightrec > "$SERVE_TMP/obs-flightrec-live.json"
./target/release/dropback-serve probe --addr "$OBS_ADDR" --shutdown > /dev/null
wait "$OBS_PID"
OBS_PID=""
for trace in "$SERVE_TMP/obs-trace.json" "$SERVE_TMP/obs-flightrec-live.json"; do
    if ! ./target/release/dropback-trace --json "$trace" > /dev/null; then
        echo "dropback-trace rejected $trace (parse error or unpaired lanes)" >&2
        exit 1
    fi
done
python3 - "$SERVE_TMP/obs-access.jsonl" << 'EOF'
import json, sys
required = {"id", "conn", "method", "target", "status", "reason",
            "queue_ns", "infer_ns", "write_ns"}
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "access log is empty"
ids = set()
infer_ok = 0
for line in lines:
    rec = json.loads(line)
    missing = required - rec.keys()
    assert not missing, f"access record missing {missing}: {rec}"
    assert rec["id"] > 0 and rec["id"] not in ids, "request ids must be unique"
    ids.add(rec["id"])
    if rec["target"] == "/infer" and rec["status"] == 200:
        infer_ok += 1
        assert rec["infer_ns"] > 0, f"served infer has no infer_ns: {rec}"
assert infer_ok >= 4, f"expected >=4 successful /infer records, saw {infer_ok}"
print(f"access log ok: {len(lines)} records, {infer_ok} served infers")
EOF

echo "All checks passed."
