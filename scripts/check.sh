#!/usr/bin/env bash
# The pre-merge gate: formatting, lints, and the full test suite.
# Everything here must pass before a change lands (see README "Install /
# build"). Runs entirely offline — the workspace has no external deps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== dropback-lint"
if ! cargo run -q -p dropback-lint -- --check; then
    echo "dropback-lint found violations; run \`cargo run -p dropback-lint -- --check\` for details" >&2
    echo "(rules and rationale: docs/LINTS.md; suppressions: lint.allow)" >&2
    exit 1
fi

echo "== resume-determinism smoke (bit-identical crash/resume)"
cargo test -q -p dropback --test resume

echo "== checkpoint corruption fuzz (truncation/bit-flips never panic)"
cargo test -q -p dropback --test corruption

echo "== cargo test"
cargo test --workspace -q

echo "== threads-matrix (bit-identical training at 1 and 4 worker threads)"
# The thread-invariance suite trains the same models at several thread
# counts inside one process; running the whole suite under two ambient
# DROPBACK_THREADS values additionally pins that the *default* pool size
# never leaks into results (see docs/PERFORMANCE.md).
DROPBACK_THREADS=1 cargo test -q -p dropback-repro --test thread_invariance
DROPBACK_THREADS=4 cargo test -q -p dropback-repro --test thread_invariance

echo "== trace smoke (Chrome trace export parses, spans pair up)"
# A short traced training run, then the analyzer re-parses the file and
# fails on JSON errors or unpaired begin/end events.
TRACE_TMP="$(mktemp -t dropback-trace-smoke.XXXXXX.json)"
trap 'rm -f "$TRACE_TMP"' EXIT
cargo build --release -q -p dropback --bins
./target/release/dropback-cli train --model mnist-100-100 --epochs 2 \
    --budget 20000 --train 600 --test 150 --trace "$TRACE_TMP" --quiet > /dev/null
if ! ./target/release/dropback-trace "$TRACE_TMP" > /dev/null; then
    echo "dropback-trace rejected the smoke trace (parse error or unpaired events)" >&2
    exit 1
fi

echo "All checks passed."
