#!/usr/bin/env bash
# The pre-merge gate: formatting, lints, and the full test suite.
# Everything here must pass before a change lands (see README "Install /
# build"). Runs entirely offline — the workspace has no external deps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== dropback-lint"
if ! cargo run -q -p dropback-lint -- --check; then
    echo "dropback-lint found violations; run \`cargo run -p dropback-lint -- --check\` for details" >&2
    echo "(rules and rationale: docs/LINTS.md; suppressions: lint.allow)" >&2
    exit 1
fi

echo "== resume-determinism smoke (bit-identical crash/resume)"
cargo test -q -p dropback --test resume

echo "== checkpoint corruption fuzz (truncation/bit-flips never panic)"
cargo test -q -p dropback --test corruption

echo "== cargo test"
cargo test --workspace -q

echo "All checks passed."
