#!/usr/bin/env bash
# Regenerates every paper table/figure plus the ablations into results/.
# Scale knobs: DROPBACK_EPOCHS / DROPBACK_TRAIN / DROPBACK_TEST / DROPBACK_SEED.
# On a slow machine, export smaller values or run Table 3 suite-by-suite:
#   DROPBACK_SUITE=vgg DROPBACK_ROWS=0-3 ... --bin repro_table3
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

run() {
  local bin=$1
  shift
  echo "== $bin =="
  cargo run --release -q -p dropback-bench --bin "$bin" "$@" | tee "results/$bin.txt"
}

cargo build --release -p dropback-bench

run repro_energy
run repro_fig1
run repro_fig2
run repro_fig3
run repro_table1
run repro_table2
run repro_fig5
run repro_fig6
run repro_fig4
run repro_table3
run repro_ablation_zeroed
run repro_ablation_freeze
run repro_ablation_quant
run repro_ablation_optimizers

echo "all experiment outputs written to results/"
