#!/usr/bin/env bash
# Sequential completion of the remaining experiment queue (single-core box).
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

echo "[$(date +%T)] building"
cargo build --release -p dropback-bench

echo "[$(date +%T)] vgg rows 6-7"
DROPBACK_SUITE=vgg DROPBACK_ROWS=6-7 cargo run --release -q -p dropback-bench --bin repro_table3 > results/t3_vgg_c.txt 2>&1

echo "[$(date +%T)] densenet rows 0-2"
DROPBACK_SUITE=densenet DROPBACK_ROWS=0-2 cargo run --release -q -p dropback-bench --bin repro_table3 > results/t3_dense_a.txt 2>&1
echo "[$(date +%T)] densenet rows 3-5"
DROPBACK_SUITE=densenet DROPBACK_ROWS=3-5 cargo run --release -q -p dropback-bench --bin repro_table3 > results/t3_dense_b.txt 2>&1

echo "[$(date +%T)] wrn rows 0-3"
DROPBACK_SUITE=wrn DROPBACK_ROWS=0-3 cargo run --release -q -p dropback-bench --bin repro_table3 > results/t3_wrn_a.txt 2>&1
echo "[$(date +%T)] wrn rows 4-6"
DROPBACK_SUITE=wrn DROPBACK_ROWS=4-6 cargo run --release -q -p dropback-bench --bin repro_table3 > results/t3_wrn_b.txt 2>&1

echo "[$(date +%T)] fig6"
cargo run --release -q -p dropback-bench --bin repro_fig6 > results/repro_fig6.txt 2>&1
echo "[$(date +%T)] fig4"
DROPBACK_EPOCHS=10 cargo run --release -q -p dropback-bench --bin repro_fig4 > results/repro_fig4.txt 2>&1

echo "[$(date +%T)] ablation: zeroed"
cargo run --release -q -p dropback-bench --bin repro_ablation_zeroed > results/repro_ablation_zeroed.txt 2>&1
echo "[$(date +%T)] ablation: freeze"
cargo run --release -q -p dropback-bench --bin repro_ablation_freeze > results/repro_ablation_freeze.txt 2>&1
echo "[$(date +%T)] ablation: quant"
cargo run --release -q -p dropback-bench --bin repro_ablation_quant > results/repro_ablation_quant.txt 2>&1
echo "[$(date +%T)] ablation: optimizers"
cargo run --release -q -p dropback-bench --bin repro_ablation_optimizers > results/repro_ablation_optimizers.txt 2>&1

echo "[$(date +%T)] ALL EXPERIMENTS DONE"
