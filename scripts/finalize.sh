#!/usr/bin/env bash
# Waits for finish_experiments.sh to complete, then captures the final
# workspace test and bench outputs required by the deliverables.
set -uo pipefail
cd "$(dirname "$0")/.."

until grep -q "ALL EXPERIMENTS DONE" results/finish.log 2>/dev/null; do
  sleep 10
done

echo "[$(date +%T)] running workspace tests"
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt
echo "[$(date +%T)] running workspace benches"
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt
echo "[$(date +%T)] FINALIZE DONE"
