//! Quickstart: train the same MLP with plain SGD and with DropBack on a
//! 4.5× smaller weight budget, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dropback::prelude::*;

fn main() {
    // A seeded synthetic MNIST-like task (drop real MNIST IDX files in a
    // directory and use `dropback::data::load_mnist_idx` instead).
    let (train, test) = synthetic_mnist(3000, 600, 42);

    // The paper's 90k-parameter MLP.
    let config = TrainConfig::new(8, 64).lr(LrSchedule::Constant(0.1));

    println!("training MNIST-100-100 (89,610 params) two ways...\n");

    let sgd_report = Trainer::new(config).run(models::mnist_100_100(42), Sgd::new(), &train, &test);
    println!(
        "baseline SGD:    stored {:>6} weights, best val error {:>5.2}%",
        sgd_report.stored_weights,
        sgd_report.best_val_error_percent()
    );

    // DropBack: track only the 20,000 highest-accumulated-gradient weights;
    // the other 69,610 are regenerated from the seed at every access.
    let db_report = Trainer::new(config).run(
        models::mnist_100_100(42),
        DropBack::new(20_000).freeze_after(4),
        &train,
        &test,
    );
    println!(
        "DropBack 20k:    stored {:>6} weights, best val error {:>5.2}%  ({:.2}x compression)",
        db_report.stored_weights,
        db_report.best_val_error_percent(),
        db_report.compression()
    );

    // The energy story that motivates all of this.
    let model = EnergyModel::paper_45nm();
    let base = TrainingTraffic::baseline(sgd_report.params as u64);
    let db = TrainingTraffic::dropback(db_report.params as u64, 20_000);
    println!(
        "\nweight-memory energy per training step: {:.1} µJ -> {:.1} µJ ({:.1}x less)",
        base.step().energy_pj(&model) / 1e6,
        db.step().energy_pj(&model) / 1e6,
        db.advantage_over(&base, &model)
    );
}
