//! Weight-diffusion analysis (the paper's §4 discussion): compare how far
//! each training rule's weight vector travels from initialization, and why
//! that predicts which ones generalize.
//!
//! ```text
//! cargo run --release --example diffusion_analysis
//! ```

use dropback::prelude::*;

struct Probe {
    tracker: DiffusionTracker,
}

impl StepProbe for Probe {
    fn after_step(&mut self, iteration: u64, ps: &ParamStore) {
        if DiffusionTracker::should_sample(iteration + 1, 4) {
            self.tracker.record(iteration + 1, ps.params());
        }
    }
}

fn run(name: &str, net: Network, opt: impl Optimizer, train: &Dataset, test: &Dataset) {
    let mut probe = Probe {
        tracker: DiffusionTracker::new(&net.store().regen_initial()),
    };
    let cfg = TrainConfig::new(4, 64)
        .lr(LrSchedule::Constant(0.1))
        .patience(None);
    let report = Trainer::new(cfg).run_probed(net, opt, train, test, &mut probe);
    let series: Vec<String> = probe
        .tracker
        .samples()
        .iter()
        .map(|(it, d)| format!("{it}:{d:.1}"))
        .collect();
    println!(
        "{name:<16} val acc {:.3}  ℓ2-from-init: {}",
        report.best_val_acc,
        series.join("  ")
    );
}

fn main() {
    let (train, test) = synthetic_mnist(2500, 500, 21);
    println!("ℓ2 distance from initialization vs iteration (MNIST-100-100):\n");
    run(
        "baseline sgd",
        models::mnist_100_100(21),
        Sgd::new(),
        &train,
        &test,
    );
    run(
        "dropback 10k",
        models::mnist_100_100(21),
        DropBack::new(10_000),
        &train,
        &test,
    );
    run(
        "dropback 2k",
        models::mnist_100_100(21),
        DropBack::new(2_000),
        &train,
        &test,
    );
    run(
        "mag prune .75",
        models::mnist_100_100(21),
        MagnitudePruning::new(0.75),
        &train,
        &test,
    );
    println!(
        "\nreading the curves: DropBack moves almost exactly like the baseline (it\n\
         updates the weights that matter and leaves the rest at their init values);\n\
         magnitude pruning starts far from init because zeroing small weights\n\
         destroys the initialization scaffolding SGD needs."
    );
}
