//! The deployment story end to end: train on a weight budget with the
//! sparse store, ship `(seed, k entries)` as a checkpoint file, and rebuild
//! a bit-identical model from architecture + checkpoint alone.
//!
//! ```text
//! cargo run --release --example checkpoint_deploy
//! ```

use dropback::prelude::*;
use dropback::Checkpoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, test) = synthetic_mnist(2500, 500, 77);

    // "Device A": train MNIST-100-100 storing only 8,000 weights.
    let mut net = models::mnist_100_100(77);
    let mut opt = SparseDropBack::new(8_000).freeze_after(3);
    let batcher = Batcher::new(64, 9);
    for epoch in 0..6u64 {
        for (x, labels) in batcher.epoch(&train, epoch) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.15);
        }
        opt.end_epoch(epoch as usize, net.store_mut());
    }
    let acc = net.accuracy(&test, 256);
    println!(
        "trained: val acc {acc:.4} with {} stored weights",
        opt.storage_entries()
    );

    // Cut the checkpoint: seed + tracked entries, nothing else.
    let ckpt = Checkpoint::from_sparse(&net, &opt);
    let path = std::env::temp_dir().join("dropback_deploy.dbk");
    ckpt.write_to(std::fs::File::create(&path)?)?;
    let dense_bytes = net.num_params() * 4;
    println!(
        "checkpoint: {} bytes on disk vs {} bytes dense ({:.1}x smaller)",
        ckpt.size_bytes(),
        dense_bytes,
        dense_bytes as f32 / ckpt.size_bytes() as f32
    );

    // "Device B": knows only the architecture; loads seed + entries.
    let loaded = Checkpoint::read_from(std::fs::File::open(&path)?)?;
    let mut device_b = models::mnist_100_100(loaded.seed());
    loaded.apply(&mut device_b)?;
    let acc_b = device_b.accuracy(&test, 256);
    println!("rebuilt: val acc {acc_b:.4} (must match exactly)");
    assert_eq!(acc, acc_b);

    std::fs::remove_file(&path)?;
    Ok(())
}
