//! Train LeNet-300-100 under a hard weight budget and inspect where the
//! tracked weights land — the workflow behind the paper's Tables 1 and 2.
//!
//! ```text
//! cargo run --release --example mnist_pruned_training
//! ```

use dropback::prelude::*;

fn main() {
    let (train, test) = synthetic_mnist(4000, 800, 7);
    let mut net = models::lenet_300_100(7);
    let epochs = 10;
    let schedule = LrSchedule::paper_mnist(epochs);

    // Budget: 20k of 266,610 weights (13.3x), freeze the set at epoch 5.
    let mut opt = DropBack::new(20_000).freeze_after(5);
    let batcher = Batcher::new(64, 1);

    println!(
        "LeNet-300-100: {} params, tracking 20,000\n",
        net.num_params()
    );
    for epoch in 0..epochs {
        let lr = schedule.at(epoch);
        let mut loss_sum = 0.0;
        let mut batches = 0;
        for (x, labels) in batcher.epoch(&train, epoch as u64) {
            let (loss, _) = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), lr);
            loss_sum += loss;
            batches += 1;
        }
        opt.end_epoch(epoch, net.store_mut());
        let val = net.accuracy(&test, 256);
        println!(
            "epoch {epoch:>2}  lr {lr:.3}  loss {:.4}  val acc {val:.4}  frozen: {}  swaps(last): {}",
            loss_sum / batches as f32,
            opt.is_frozen(),
            opt.last_swaps()
        );
    }

    println!("\nwhere the tracked budget went (cf. paper Table 2):");
    for (name, tracked, total) in opt.tracked_per_range(net.store()) {
        if total > 0 && name.ends_with(".weight") {
            println!(
                "  {name:<12} {tracked:>6} / {total:>6}  ({:.1}x compressed)",
                total as f32 / tracked.max(1) as f32
            );
        }
    }

    // Verify the storage invariant the whole paper rests on: every
    // untracked weight equals its regenerated initialization value.
    let mask = opt.mask();
    let violations = (0..net.num_params())
        .filter(|&i| !mask[i] && net.store().params()[i] != net.store().init_value(i))
        .count();
    println!("\nuntracked-weights-equal-init violations: {violations} (must be 0)");
    assert_eq!(violations, 0);
}
