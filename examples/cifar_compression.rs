//! Compress a DenseNet during training — the architecture class the paper
//! highlights as hardest to prune with channel-level techniques, and where
//! DropBack's ability to prune *batch-norm* parameters matters.
//!
//! ```text
//! cargo run --release --example cifar_compression
//! ```

use dropback::prelude::*;

fn main() {
    let hw = dropback::nn::models::CIFAR_NANO_HW;
    let (train, test) = synthetic_cifar(1200, 300, hw, hw, 11);

    let net = models::densenet_nano(11);
    let params = net.num_params();
    let k = params / 4; // the paper's 4.5x Densenet point, rounded kindly
    println!("DenseNet-nano: {params} params; DropBack budget {k} (≈4x)\n");

    let cfg = TrainConfig::new(6, 32)
        .lr(LrSchedule::Constant(0.05))
        .patience(None);

    let base = Trainer::new(cfg).run(models::densenet_nano(11), Sgd::new(), &train, &test);
    let db = Trainer::new(cfg).run(net, DropBack::new(k).freeze_after(3), &train, &test);

    println!(
        "baseline   : best val error {:>5.2}%",
        base.best_val_error_percent()
    );
    println!(
        "DropBack 4x: best val error {:>5.2}%  ({:.2}x weight compression)",
        db.best_val_error_percent(),
        db.compression()
    );

    // DropBack prunes BN scales/shifts too — count how much of the tracked
    // budget ends up in batch-norm parameters (regenerable constants).
    let mut net2 = models::densenet_nano(11);
    let mut opt = DropBack::new(k);
    let batcher = Batcher::new(32, 2);
    for epoch in 0..2u64 {
        for (x, labels) in batcher.epoch(&train, epoch) {
            let _ = net2.loss_backward(&x, &labels);
            opt.step(net2.store_mut(), 0.05);
        }
    }
    let (bn_tracked, bn_total): (usize, usize) = opt
        .tracked_per_range(net2.store())
        .iter()
        .filter(|(name, _, _)| name.contains(".gamma") || name.contains(".beta"))
        .fold((0, 0), |(t, n), (_, tracked, total)| {
            (t + tracked, n + total)
        });
    println!(
        "\nbatch-norm params tracked: {bn_tracked} / {bn_total} — the rest regenerate to\n\
         their γ=1 / β=0 constants for free (the paper's 'prunes layers like batch\n\
         normalization, which cannot be pruned using existing approaches')."
    );
}
