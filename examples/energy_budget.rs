//! Size an edge-accelerator weight budget with the energy model, and
//! demonstrate the sparse weight store that makes the budget real.
//!
//! ```text
//! cargo run --release --example energy_budget
//! ```

use dropback::optim::Optimizer as _;
use dropback::prelude::*;

fn main() {
    let m = EnergyModel::paper_45nm();
    println!(
        "45nm energy model: DRAM access {} pJ, FLOP {} pJ, regen {:.1} pJ ({:.0}x cheaper than DRAM)\n",
        m.dram_access_pj,
        m.flop_pj,
        m.regen_pj(),
        m.regen_advantage()
    );

    // Sweep the weight budget for LeNet-300-100 and print the energy frontier.
    let params = 266_610u64;
    println!("training-step weight energy vs budget (LeNet-300-100, {params} params):");
    let base = TrainingTraffic::baseline(params);
    for k in [params, 50_000, 20_000, 5_000, 1_500] {
        let t = TrainingTraffic::dropback(params, k);
        println!(
            "  k = {k:>7}  ({:>6.2}x compression): {:>8.1} µJ/step  ({:.1}x less than dense)",
            params as f64 / k as f64,
            t.step().energy_pj(&m) / 1e6,
            t.advantage_over(&base, &m)
        );
    }

    // The sparse store: train with the tracked weights held in an actual
    // k-entry map, proving the k-weight memory claim end to end.
    println!("\ntraining MNIST-100-100 with a 5,000-entry sparse weight store...");
    let (train, test) = synthetic_mnist(2000, 400, 33);
    let mut net = models::mnist_100_100(33);
    let mut opt = SparseDropBack::new(5_000).freeze_after(2);
    let batcher = Batcher::new(64, 3);
    for epoch in 0..4u64 {
        for (x, labels) in batcher.epoch(&train, epoch) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
        }
        opt.end_epoch(epoch as usize, net.store_mut());
        println!(
            "  epoch {epoch}: val acc {:.3}, sparse entries {} (≤ 5000)",
            net.accuracy(&test, 256),
            opt.storage_entries()
        );
    }
    println!(
        "\nevery weight outside those {} entries is regenerated from seed+index on\n\
         access — nothing else is stored, during or after training.",
        opt.storage_entries()
    );
}
