//! Dense `f32` tensor substrate for the DropBack reproduction.
//!
//! DropBack trains real networks (MLPs and BN-heavy convolutional nets), so
//! this crate provides the minimal-but-complete dense linear algebra that the
//! `dropback-nn` layer zoo is built on:
//!
//! * [`Tensor`] — a contiguous, row-major, dynamically-shaped `f32` tensor
//!   with elementwise arithmetic, mapping, and reductions.
//! * [`matmul`] and its transposed variants — packed-panel GEMM built on a
//!   fixed 6×16 microkernel ([`simd`]; AVX2/FMA with a bit-identical
//!   portable fallback), cache-blocked and multi-threaded on the
//!   persistent worker [`pool`] (no external dependency).
//! * [`conv`] — convolution with the `im2col` lowering fused into the GEMM
//!   pack (the column matrix is never materialized), plus pooling kernels.
//! * [`ops`] — numerically-stable softmax / log-softmax and friends.
//! * [`pool`] — the deterministic worker pool every threaded kernel in the
//!   workspace runs on (`DROPBACK_THREADS`; fixed, thread-count-independent
//!   work partitioning so results are bit-identical at any thread count —
//!   see `docs/PERFORMANCE.md`).
//! * [`alloc`] — process-wide tensor-allocation accounting (live bytes +
//!   high-water mark), sampled by the trainer's telemetry.
//!
//! The hot kernels (gemm, im2col/col2im, conv, pooling, activations) are
//! permanently instrumented with `dropback-telemetry` spans annotated with
//! flop/byte counts; with both timing and tracing off a span costs one
//! relaxed atomic load, so the instrumentation lives in the kernels
//! unconditionally.
//!
//! The crate is deliberately framework-free: every operation is a pure
//! function over `Tensor`, and all state (e.g. pooling argmax caches) is
//! returned to the caller, which keeps the layer implementations explicit
//! about what they store between forward and backward passes.
//!
//! # Example
//!
//! ```
//! use dropback_tensor::{Tensor, matmul};
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
//! let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
//! let c = matmul(&a, &b);
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data(), &[58., 64., 139., 154.]);
//! ```

#![deny(missing_docs)]

pub mod activations;
pub mod alloc;
pub mod axis;
pub mod conv;
mod gemm;
pub mod ops;
pub mod pool;
pub mod simd;
mod tensor;

pub use gemm::{matmul, matmul_nt, matmul_tn};
pub use tensor::Tensor;
