//! Deterministic persistent worker pool for the training hot path.
//!
//! Every parallel kernel in the workspace (gemm, im2col/col2im, pooling,
//! elementwise maps, sharded top-k, untracked-weight regeneration) submits
//! its work here instead of spawning threads per call. The pool upholds two
//! contracts that plain `std::thread::scope` does not:
//!
//! 1. **Thread-count invariance.** Callers partition work by *problem size
//!    only* — never by [`threads()`] — and every task writes a disjoint
//!    region (or returns a partial merged serially in task order). The
//!    worker count then only decides *where* tasks run, not *what* they
//!    compute, so outputs are bit-identical for any `DROPBACK_THREADS`
//!    value. `tests/thread_invariance.rs` pins this end to end.
//! 2. **No per-call spawn cost.** Workers are created once (lazily, or on
//!    [`set_threads`]) and live for the process; a dispatch is one queue
//!    push per task. With one thread the pool is never engaged at all:
//!    [`run_tasks`] degrades to a plain in-order loop on the caller's
//!    thread, so a 1-thread "pool" adds zero dispatch cost
//!    (`crates/tensor/tests/pool_overhead.rs`).
//!
//! The thread count comes from `DROPBACK_THREADS` (falling back to
//! `available_parallelism`, capped at 8) and can be overridden at runtime
//! with [`set_threads`]. Pool engagement is observable through the global
//! telemetry collector (`pool.runs.parallel`, `pool.runs.inline`,
//! `pool.tasks`) and, when tracing is armed, a `pool.tasks` trace counter
//! per parallel run — see `docs/PERFORMANCE.md`.
//!
//! Tasks never nest: a task that itself reaches a parallel kernel (e.g. a
//! per-sample conv task calling `matmul`) runs that kernel inline on its
//! worker, which keeps execution deadlock-free and the partitioning
//! identical to the serial path.

use dropback_telemetry::{global, trace, Counter};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock};

/// A borrowed unit of work submitted to [`run_tasks`]. The borrow is safe
/// because [`run_tasks`] does not return until every task has finished.
pub type Task<'a> = Box<dyn FnOnce() + Send + 'a>;

/// A task whose borrows have been erased; only constructed inside
/// [`run_tasks`], which guarantees the borrows outlive the execution.
type ErasedTask = Box<dyn FnOnce() + Send + 'static>;

/// Completion state shared by the tasks of one `run_tasks` call.
struct RunState {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

enum Job {
    Run {
        state: Arc<RunState>,
        task: ErasedTask,
    },
    /// Retires one worker (pushed by [`set_threads`] during a rebuild).
    Stop,
}

/// The queue shared between the submitting threads and the workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Cached thread count (0 = pool not yet initialized). Kept outside the
/// lock so the hot-path `threads()` check is one relaxed load.
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while this thread is executing a pool task; nested parallel
    /// kernels run inline instead of re-entering the queue.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Poison-proof lock: a panic in a task is already routed through
/// [`RunState::panic`], so a poisoned mutex carries no extra information.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct PoolStats {
    parallel: Counter,
    inline: Counter,
    tasks: Counter,
}

fn stats() -> &'static PoolStats {
    static STATS: OnceLock<PoolStats> = OnceLock::new();
    STATS.get_or_init(|| {
        let g = global();
        PoolStats {
            parallel: g.counter("pool.runs.parallel"),
            inline: g.counter("pool.runs.inline"),
            tasks: g.counter("pool.tasks"),
        }
    })
}

fn env_threads() -> usize {
    std::env::var("DROPBACK_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1)
        })
}

fn handle() -> &'static RwLock<Pool> {
    static POOL: OnceLock<RwLock<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let n = env_threads();
        THREADS.store(n, Ordering::Relaxed);
        RwLock::new(Pool::start(n))
    })
}

impl Pool {
    /// Spawns `n - 1` workers; the thread that submits a run is always the
    /// `n`-th participant, so `n == 1` spawns nothing.
    fn start(n: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        let workers = (1..n)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        Self { shared, workers }
    }

    /// Retires every worker and joins them. Called with the pool write
    /// lock held, so no run can be queueing concurrently.
    fn shutdown(self) {
        {
            let mut q = lock(&self.shared.queue);
            for _ in &self.workers {
                q.push_back(Job::Stop);
            }
        }
        self.shared.available.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Everything a worker runs is a pool task; nested parallel kernels
    // inside tasks must execute inline.
    IN_POOL.with(|f| f.set(true));
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = shared.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            Job::Stop => return,
            Job::Run { state, task } => execute(&state, task),
        }
    }
}

/// Runs one task, capturing a panic into the run's state, and signals the
/// submitter when the run's last task finishes.
fn execute(state: &RunState, task: ErasedTask) {
    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
        let mut slot = lock(&state.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    let mut rem = lock(&state.remaining);
    *rem -= 1;
    if *rem == 0 {
        state.done.notify_all();
    }
}

/// The configured worker-thread count (including the submitting thread).
///
/// Resolved once from `DROPBACK_THREADS` (or `available_parallelism`,
/// capped at 8) and updated by [`set_threads`]. Kernels consult this only
/// to decide *whether* to engage the pool — never to shape their work
/// partitioning, which must depend on problem size alone.
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let _ = handle();
    THREADS.load(Ordering::Relaxed)
}

/// Overrides the worker-thread count at runtime (clamped to at least 1),
/// rebuilding the worker set. Blocks until in-flight runs finish and the
/// retired workers have exited, so the switch is atomic with respect to
/// determinism: no run ever observes a half-rebuilt pool.
pub fn set_threads(n: usize) {
    let n = n.max(1);
    let mut guard = handle().write().unwrap_or_else(|e| e.into_inner());
    if THREADS.load(Ordering::Relaxed) == n {
        return;
    }
    let old = std::mem::replace(&mut *guard, Pool::start(n));
    THREADS.store(n, Ordering::Relaxed);
    old.shutdown();
}

/// Runs every task to completion, distributing them over the pool when it
/// has more than one thread.
///
/// Tasks may borrow from the caller's stack: the call does not return
/// until all of them have finished (or one has panicked — the first panic
/// payload is re-raised on the caller after the run drains). The caller's
/// thread participates in draining the queue, so a 1-thread pool executes
/// everything inline, in submission order, with zero dispatch cost.
///
/// Determinism contract for callers: partition work by problem size only
/// and give every task a disjoint output region; then the result is
/// bit-identical for every thread count, because each task's computation
/// is self-contained and execution order cannot matter.
pub fn run_tasks(tasks: Vec<Task<'_>>) {
    if tasks.len() <= 1 || threads() < 2 || IN_POOL.with(|f| f.get()) {
        stats().inline.inc();
        for t in tasks {
            t();
        }
        return;
    }
    stats().parallel.inc();
    stats().tasks.add(tasks.len() as u64);
    trace::record_counter("pool.tasks", tasks.len() as f64);
    let state = Arc::new(RunState {
        remaining: Mutex::new(tasks.len()),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    {
        // Hold the read lock for the whole run so `set_threads` cannot
        // retire the workers while our jobs are queued.
        let pool = handle().read().unwrap_or_else(|e| e.into_inner());
        {
            let mut q = lock(&pool.shared.queue);
            for task in tasks {
                // SAFETY: the erased borrow cannot outlive its referent;
                // this function blocks until `remaining` hits zero, i.e.
                // every erased task ran, and none is stored past that.
                let erased = unsafe { std::mem::transmute::<Task<'_>, ErasedTask>(task) };
                q.push_back(Job::Run {
                    state: Arc::clone(&state),
                    task: erased,
                });
            }
        }
        pool.shared.available.notify_all();
        // Drain alongside the workers (FIFO, so our own tasks come first;
        // jobs from concurrent runs may be executed too, which only helps).
        loop {
            let job = lock(&pool.shared.queue).pop_front();
            match job {
                Some(Job::Run { state, task }) => {
                    IN_POOL.with(|f| f.set(true));
                    execute(&state, task);
                    IN_POOL.with(|f| f.set(false));
                }
                Some(Job::Stop) => {
                    // Unreachable while we hold the read lock (rebuilds
                    // need the write lock), but hand it back defensively.
                    lock(&pool.shared.queue).push_back(Job::Stop);
                    pool.shared.available.notify_one();
                    break;
                }
                None => break,
            }
        }
        let mut rem = lock(&state.remaining);
        while *rem > 0 {
            rem = state.done.wait(rem).unwrap_or_else(|e| e.into_inner());
        }
    }
    let payload = lock(&state.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Splits `data` into fixed `chunk`-sized pieces and applies
/// `f(chunk_index, chunk)` to each, in parallel when profitable.
///
/// The chunking depends only on `data.len()` and `chunk`, so the write
/// pattern — and therefore the result — is identical at every thread
/// count. `chunk_index * chunk` is the global offset of a chunk's first
/// element.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    if data.len() <= chunk || threads() < 2 || IN_POOL.with(|p| p.get()) {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let f = &f;
    let tasks: Vec<Task<'_>> = data
        .chunks_mut(chunk)
        .enumerate()
        .map(|(i, c)| Box::new(move || f(i, c)) as Task<'_>)
        .collect();
    run_tasks(tasks);
}

/// Two-slice variant of [`for_each_chunk_mut`]: chunks `a` by `chunk_a`
/// and `b` by `chunk_b` in lockstep and applies `f(i, a_chunk, b_chunk)`.
///
/// # Panics
///
/// Panics if either chunk size is zero or the chunk counts differ.
pub fn for_each_chunk_mut2<A, B, F>(a: &mut [A], chunk_a: usize, b: &mut [B], chunk_b: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert!(chunk_a > 0 && chunk_b > 0, "chunk sizes must be positive");
    assert_eq!(
        a.len().div_ceil(chunk_a),
        b.len().div_ceil(chunk_b),
        "slices must split into the same number of chunks"
    );
    if a.len() <= chunk_a || threads() < 2 || IN_POOL.with(|p| p.get()) {
        for (i, (ca, cb)) in a.chunks_mut(chunk_a).zip(b.chunks_mut(chunk_b)).enumerate() {
            f(i, ca, cb);
        }
        return;
    }
    let f = &f;
    let tasks: Vec<Task<'_>> = a
        .chunks_mut(chunk_a)
        .zip(b.chunks_mut(chunk_b))
        .enumerate()
        .map(|(i, (ca, cb))| Box::new(move || f(i, ca, cb)) as Task<'_>)
        .collect();
    run_tasks(tasks);
}

/// Computes `f(0), f(1), …, f(n-1)` (in parallel when profitable) and
/// returns the results in index order — a deterministic parallel map for
/// per-shard partials that a caller then merges serially.
pub fn map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    {
        let f = &f;
        let tasks: Vec<Task<'_>> = slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| Box::new(move || *slot = Some(f(i))) as Task<'_>)
            .collect();
        run_tasks(tasks);
    }
    let out: Vec<R> = slots.into_iter().flatten().collect();
    assert_eq!(out.len(), n, "every task fills its slot");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that reconfigure the global pool serialize on this lock so
    /// they do not interleave thread-count changes.
    fn config_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        lock(&LOCK)
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let _guard = config_lock();
        set_threads(4);
        let mut hits = [0u8; 64];
        {
            let tasks: Vec<Task<'_>> = hits
                .iter_mut()
                .map(|h| Box::new(move || *h += 1) as Task<'_>)
                .collect();
            run_tasks(tasks);
        }
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn chunked_results_are_identical_across_thread_counts() {
        let _guard = config_lock();
        let compute = || {
            let mut data = vec![0.0f32; 1000];
            for_each_chunk_mut(&mut data, 64, |i, c| {
                for (j, v) in c.iter_mut().enumerate() {
                    *v = ((i * 64 + j) as f32).sin();
                }
            });
            data
        };
        set_threads(1);
        let serial = compute();
        for n in [2, 4, 7] {
            set_threads(n);
            let par = compute();
            let same = serial
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "thread count {n} changed the bits");
        }
        set_threads(1);
    }

    #[test]
    fn map_indexed_preserves_order() {
        let _guard = config_lock();
        set_threads(3);
        let out = map_indexed(17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        set_threads(1);
    }

    #[test]
    fn nested_runs_execute_inline_without_deadlock() {
        let _guard = config_lock();
        set_threads(4);
        let mut outer = vec![0usize; 8];
        for_each_chunk_mut(&mut outer, 1, |_, c| {
            // A nested parallel map inside a pool task must run inline.
            let inner = map_indexed(5, |i| i + 1);
            c[0] = inner.iter().sum();
        });
        assert!(outer.iter().all(|&v| v == 15));
        set_threads(1);
    }

    #[test]
    fn task_panic_propagates_to_the_submitter() {
        let _guard = config_lock();
        set_threads(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let data = [1u8; 8];
            let tasks: Vec<Task<'_>> = data
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    Box::new(move || {
                        assert!(i != 3, "task 3 fails");
                    }) as Task<'_>
                })
                .collect();
            run_tasks(tasks);
        }));
        assert!(result.is_err(), "panic must reach the caller");
        set_threads(1);
    }

    #[test]
    fn set_threads_clamps_to_one_and_reports() {
        let _guard = config_lock();
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(5);
        assert_eq!(threads(), 5);
        set_threads(1);
        assert_eq!(threads(), 1);
    }

    #[test]
    fn chunk_mut2_walks_slices_in_lockstep() {
        let _guard = config_lock();
        set_threads(4);
        let mut a = vec![0u32; 30];
        let mut b = vec![0u32; 60];
        for_each_chunk_mut2(&mut a, 5, &mut b, 10, |i, ca, cb| {
            ca.fill(i as u32);
            cb.fill(10 + i as u32);
        });
        assert_eq!(a[14], 2);
        assert_eq!(b[29], 12);
        set_threads(1);
    }
}
