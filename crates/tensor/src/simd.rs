//! Register-tile GEMM microkernels and runtime kernel selection.
//!
//! The packed GEMM in [`crate::matmul`] computes every output tile with one
//! of three interchangeable microkernels, all sharing a **fixed 6×16 tile
//! shape and a fixed reduction order**:
//!
//! * `Avx2` — explicit `std::arch` AVX2/FMA kernel: twelve 8-lane `ymm`
//!   accumulators, one broadcast + two fused multiply-adds per A element.
//! * `ScalarFma` — the same tile walked scalar-element-wise, compiled with
//!   the `fma` target feature so `f32::mul_add` lowers to a single
//!   `vfmadd` instruction.
//! * `Portable` — plain safe Rust using `f32::mul_add` (libm `fmaf` when
//!   the target has no FMA unit).
//!
//! **Determinism contract.** Every kernel loads the C tile, folds
//! `c ← fma(a_k, b_k, c)` over `k` in ascending order, and stores the tile
//! back. IEEE-754 fused multiply-add is correctly rounded, so the scalar
//! `f32::mul_add` chain and each SIMD lane's `_mm256_fmadd_ps` chain
//! produce **identical bits**. Results therefore do not depend on which
//! kernel runs — `DROPBACK_SIMD=0` (or a CPU without AVX2) changes speed,
//! never output. `tests/gemm_conformance.rs` pins this exactly.
//!
//! Selection happens once, lazily, from `DROPBACK_SIMD` plus
//! `is_x86_feature_detected!`; tests and benches can switch in-process via
//! [`set_simd`]. This module is the only place in the workspace allowed to
//! use SIMD intrinsics or runtime feature detection (enforced by
//! `dropback-lint`'s `unsafe-audit` and `feature-detect` rules).

use std::sync::atomic::{AtomicU8, Ordering};

/// Microkernel tile rows (the register-blocking factor along M).
pub(crate) const MR: usize = 6;
/// Microkernel tile columns — two 8-lane AVX2 `f32` vectors.
pub(crate) const NR: usize = 16;

/// Which microkernel implementation a gemm call dispatches to. Resolved
/// once per gemm call so a concurrent [`set_simd`] never switches kernels
/// mid-call (all kernels produce the same bits anyway; this keeps the
/// dispatch cost at one relaxed load).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Kernel {
    /// Safe portable scalar tile (`f32::mul_add`).
    Portable,
    /// Scalar tile compiled with the `fma` target feature.
    ScalarFma,
    /// AVX2/FMA 6×16 vector tile.
    Avx2,
}

const K_UNINIT: u8 = 0;
const K_PORTABLE: u8 = 1;
const K_SCALAR_FMA: u8 = 2;
const K_AVX2: u8 = 3;

/// Selected kernel, initialized lazily from the environment + CPUID.
static KERNEL: AtomicU8 = AtomicU8::new(K_UNINIT);

/// Probes the CPU and returns the best kernel honoring `want_simd`.
fn detect(want_simd: bool) -> u8 {
    #[cfg(target_arch = "x86_64")]
    {
        let fma = std::arch::is_x86_feature_detected!("fma");
        let avx2 = std::arch::is_x86_feature_detected!("avx2");
        if want_simd && fma && avx2 {
            return K_AVX2;
        }
        if fma {
            return K_SCALAR_FMA;
        }
    }
    let _ = want_simd;
    K_PORTABLE
}

/// `DROPBACK_SIMD=0|off|false` forces the scalar kernel; anything else
/// (including unset) allows the vector kernel when the CPU supports it.
fn env_wants_simd() -> bool {
    match std::env::var("DROPBACK_SIMD") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false"
        ),
        Err(_) => true,
    }
}

/// The kernel the next gemm call will use (resolving it on first use).
pub(crate) fn kernel() -> Kernel {
    let mut v = KERNEL.load(Ordering::Relaxed);
    if v == K_UNINIT {
        v = detect(env_wants_simd());
        KERNEL.store(v, Ordering::Relaxed);
    }
    match v {
        K_SCALAR_FMA => Kernel::ScalarFma,
        K_AVX2 => Kernel::Avx2,
        _ => Kernel::Portable,
    }
}

/// Switches the GEMM microkernel between SIMD and scalar at runtime
/// (overriding `DROPBACK_SIMD`), for conformance tests and benches.
///
/// Returns `true` if the request was honored — `set_simd(true)` reports
/// `false` on hardware without AVX2+FMA, where the scalar kernel keeps
/// running. Either way results are bit-identical; only speed changes.
pub fn set_simd(on: bool) -> bool {
    let v = detect(on);
    KERNEL.store(v, Ordering::Relaxed);
    v == K_AVX2 || !on
}

/// Whether gemm calls currently dispatch to the AVX2/FMA vector kernel.
pub fn simd_active() -> bool {
    kernel() == Kernel::Avx2
}

/// Runs one `MR×NR` tile update: `C_tile += Ap · Bp` over `kb` steps.
///
/// * `ap` — packed A micro-panel, layout `ap[kk * MR + i]`.
/// * `bp` — packed B micro-panel, layout `bp[kk * NR + j]`.
/// * `c` — C tile in row-major storage with row stride `ldc`; must span at
///   least `(MR - 1) * ldc + NR` elements.
///
/// Every element performs `c_ij ← fma(ap[kk,i], bp[kk,j], c_ij)` for
/// `kk = 0..kb` in order, identically across all three kernels.
///
/// # Panics
///
/// Panics (in debug builds via the slice checks of the portable kernel, and
/// via the explicit asserts here) if the slices are too short.
pub(crate) fn run_tile(kern: Kernel, ap: &[f32], bp: &[f32], kb: usize, c: &mut [f32], ldc: usize) {
    assert!(ap.len() >= kb * MR, "packed A panel too short");
    assert!(bp.len() >= kb * NR, "packed B panel too short");
    assert!(
        ldc >= NR && c.len() >= (MR - 1) * ldc + NR,
        "C tile too short"
    );
    match kern {
        Kernel::Portable => tile_portable(ap, bp, kb, c, ldc),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Kernel::ScalarFma` is only ever selected by `detect`
        // after `is_x86_feature_detected!("fma")` returned true, so the
        // `fma` target feature is available on this CPU.
        Kernel::ScalarFma => unsafe { tile_scalar_fma(ap, bp, kb, c, ldc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Kernel::Avx2` is only ever selected by `detect` after
        // both `avx2` and `fma` were detected at runtime, and the slice
        // bounds asserted above cover every vector load/store below.
        Kernel::Avx2 => unsafe { tile_avx2(ap, bp, kb, c, ldc) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => tile_portable(ap, bp, kb, c, ldc),
    }
}

/// Portable scalar tile: the reference accumulation order every other
/// kernel must reproduce bit-for-bit.
fn tile_portable(ap: &[f32], bp: &[f32], kb: usize, c: &mut [f32], ldc: usize) {
    for i in 0..MR {
        for j in 0..NR {
            let mut acc = c[i * ldc + j];
            for kk in 0..kb {
                acc = ap[kk * MR + i].mul_add(bp[kk * NR + j], acc);
            }
            c[i * ldc + j] = acc;
        }
    }
}

/// Scalar tile compiled with the `fma` target feature so `mul_add` is a
/// single `vfmadd` instruction instead of a libm call. Same body as
/// [`tile_portable`], therefore the same bits.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("fma")`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
unsafe fn tile_scalar_fma(ap: &[f32], bp: &[f32], kb: usize, c: &mut [f32], ldc: usize) {
    for i in 0..MR {
        for j in 0..NR {
            let mut acc = c[i * ldc + j];
            for kk in 0..kb {
                acc = ap[kk * MR + i].mul_add(bp[kk * NR + j], acc);
            }
            c[i * ldc + j] = acc;
        }
    }
}

/// AVX2/FMA 6×16 tile: 12 `ymm` accumulators (6 rows × 2 vectors), one
/// broadcast and two `vfmadd231ps` per A element. Lane `j` of row `i`
/// computes exactly the scalar chain `c ← fma(a, b, c)` in the same `k`
/// order, so the result is bit-identical to [`tile_portable`].
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("avx2")` and
/// `("fma")`, and must pass `ap.len() >= kb*MR`, `bp.len() >= kb*NR`, and
/// `c.len() >= (MR-1)*ldc + NR` (checked by [`run_tile`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tile_avx2(ap: &[f32], bp: &[f32], kb: usize, c: &mut [f32], ldc: usize) {
    use std::arch::x86_64::{
        _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    // SAFETY: run_tile asserted `c` spans `(MR-1)*ldc + NR` elements and
    // the panels span `kb*MR` / `kb*NR`, so every unaligned 8-float
    // load/store and scalar read below is in bounds (`u` variants).
    unsafe {
        let cp = c.as_mut_ptr();
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for (i, row) in acc.iter_mut().enumerate() {
            row[0] = _mm256_loadu_ps(cp.add(i * ldc));
            row[1] = _mm256_loadu_ps(cp.add(i * ldc + 8));
        }
        let mut a = ap.as_ptr();
        let mut b = bp.as_ptr();
        for _ in 0..kb {
            let b0 = _mm256_loadu_ps(b);
            let b1 = _mm256_loadu_ps(b.add(8));
            for (i, row) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*a.add(i));
                row[0] = _mm256_fmadd_ps(av, b0, row[0]);
                row[1] = _mm256_fmadd_ps(av, b1, row[1]);
            }
            a = a.add(MR);
            b = b.add(NR);
        }
        for (i, row) in acc.iter().enumerate() {
            _mm256_storeu_ps(cp.add(i * ldc), row[0]);
            _mm256_storeu_ps(cp.add(i * ldc + 8), row[1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    /// Every available kernel must produce the same bits on the same tile.
    #[test]
    fn kernels_are_bit_identical() {
        let kb = 37;
        let ap = rand_vec(kb * MR, 1);
        let bp = rand_vec(kb * NR, 2);
        let c0 = rand_vec(MR * NR, 3);
        let mut reference = c0.clone();
        tile_portable(&ap, &bp, kb, &mut reference, NR);
        for kern in [Kernel::Portable, Kernel::ScalarFma, Kernel::Avx2] {
            // Only exercise kernels the CPU actually supports.
            let supported = match kern {
                Kernel::Portable => true,
                #[cfg(target_arch = "x86_64")]
                Kernel::ScalarFma => std::arch::is_x86_feature_detected!("fma"),
                #[cfg(target_arch = "x86_64")]
                Kernel::Avx2 => {
                    std::arch::is_x86_feature_detected!("avx2")
                        && std::arch::is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                _ => false,
            };
            if !supported {
                continue;
            }
            let mut c = c0.clone();
            run_tile(kern, &ap, &bp, kb, &mut c, NR);
            let same = c
                .iter()
                .zip(&reference)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "{kern:?} diverged from the portable tile");
        }
    }

    /// The tile update must equal a per-element sequential fma fold.
    #[test]
    fn tile_matches_sequential_fma_fold() {
        let kb = 11;
        let ap = rand_vec(kb * MR, 4);
        let bp = rand_vec(kb * NR, 5);
        let mut c = rand_vec(MR * NR, 6);
        let expect: Vec<f32> = (0..MR * NR)
            .map(|idx| {
                let (i, j) = (idx / NR, idx % NR);
                let mut acc = c[idx];
                for kk in 0..kb {
                    acc = ap[kk * MR + i].mul_add(bp[kk * NR + j], acc);
                }
                acc
            })
            .collect();
        run_tile(kernel(), &ap, &bp, kb, &mut c, NR);
        assert!(c
            .iter()
            .zip(&expect)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn set_simd_round_trips() {
        // Scalar is always honored.
        assert!(set_simd(false));
        assert!(!simd_active());
        let honored = set_simd(true);
        assert_eq!(honored, simd_active());
        // Leave the process-default selection behind for other tests.
        let _ = set_simd(true);
    }

    #[test]
    fn strided_c_tile_only_touches_its_columns() {
        let kb = 3;
        let ap = rand_vec(kb * MR, 7);
        let bp = rand_vec(kb * NR, 8);
        let ldc = NR + 5;
        let mut c = vec![1.0f32; (MR - 1) * ldc + NR + 5];
        let sentinel = c.clone();
        run_tile(kernel(), &ap, &bp, kb, &mut c, ldc);
        for i in 0..MR - 1 {
            for j in NR..ldc {
                assert_eq!(
                    c[i * ldc + j].to_bits(),
                    sentinel[i * ldc + j].to_bits(),
                    "gap column ({i},{j}) was clobbered"
                );
            }
        }
    }
}
