//! Elementwise activation functions and their derivatives.
//!
//! The model zoo only needs ReLU/PReLU, but a reusable substrate should
//! cover the standard battery; each function comes with its exact
//! derivative (in terms of input or output, whichever is cheaper) and is
//! finite-difference-tested.

use crate::Tensor;
use dropback_telemetry::Span;

/// Span guard for an elementwise activation kernel, annotated with the
/// payload it reads.
fn act_span(x: &Tensor) -> Span {
    Span::enter_with("activation", &[("bytes", (x.len() * 4) as f64)])
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, numerically stable on both tails.
pub fn sigmoid(x: &Tensor) -> Tensor {
    let _span = act_span(x);
    x.par_map(sigmoid_scalar)
}

/// Scalar sigmoid (stable: never exponentiates a large positive value).
#[inline]
pub fn sigmoid_scalar(v: f32) -> f32 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

/// Sigmoid backward given the *output* `y`: `dx = dout · y · (1 − y)`.
pub fn sigmoid_backward(dout: &Tensor, output: &Tensor) -> Tensor {
    let _span = act_span(dout);
    dout.par_zip(output, |g, y| g * y * (1.0 - y))
}

/// Hyperbolic tangent.
pub fn tanh(x: &Tensor) -> Tensor {
    let _span = act_span(x);
    x.par_map(f32::tanh)
}

/// Tanh backward given the *output* `y`: `dx = dout · (1 − y²)`.
pub fn tanh_backward(dout: &Tensor, output: &Tensor) -> Tensor {
    let _span = act_span(dout);
    dout.par_zip(output, |g, y| g * (1.0 - y * y))
}

/// GELU (tanh approximation, as used by transformer stacks).
pub fn gelu(x: &Tensor) -> Tensor {
    let _span = act_span(x);
    x.par_map(gelu_scalar)
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/π)

#[inline]
fn gelu_scalar(v: f32) -> f32 {
    0.5 * v * (1.0 + (GELU_C * (v + 0.044715 * v * v * v)).tanh())
}

/// GELU backward given the *input* `x` (derivative of the tanh
/// approximation).
pub fn gelu_backward(dout: &Tensor, input: &Tensor) -> Tensor {
    let _span = act_span(dout);
    dout.par_zip(input, |g, v| {
        let u = GELU_C * (v + 0.044715 * v * v * v);
        let t = u.tanh();
        let du = GELU_C * (1.0 + 3.0 * 0.044715 * v * v);
        g * (0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du)
    })
}

/// Leaky ReLU with fixed negative slope.
pub fn leaky_relu(x: &Tensor, slope: f32) -> Tensor {
    let _span = act_span(x);
    x.par_map(|v| if v > 0.0 { v } else { slope * v })
}

/// Leaky ReLU backward given the *input*.
pub fn leaky_relu_backward(dout: &Tensor, input: &Tensor, slope: f32) -> Tensor {
    let _span = act_span(dout);
    dout.par_zip(input, |g, v| if v > 0.0 { g } else { slope * g })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(
        f: impl Fn(&Tensor) -> Tensor,
        df: impl Fn(&Tensor, &Tensor, &Tensor) -> Tensor, // (dout, input, output)
        points: &[f32],
        tol: f32,
    ) {
        let x = Tensor::from_vec(vec![points.len()], points.to_vec());
        let y = f(&x);
        let dout = Tensor::filled(vec![points.len()], 1.0);
        let dx = df(&dout, &x, &y);
        let eps = 1e-3;
        for (i, &point) in points.iter().enumerate() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let lp = f(&xp).data()[i];
            xp.data_mut()[i] -= 2.0 * eps;
            let lm = f(&xp).data()[i];
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < tol,
                "point {}: numeric {num} vs analytic {}",
                point,
                dx.data()[i]
            );
        }
    }

    const PTS: [f32; 7] = [-3.0, -1.0, -0.2, 0.1, 0.5, 1.5, 4.0];

    #[test]
    fn sigmoid_matches_finite_difference() {
        fd_check(sigmoid, |d, _x, y| sigmoid_backward(d, y), &PTS, 1e-3);
    }

    #[test]
    fn sigmoid_is_stable_on_tails() {
        assert!(sigmoid_scalar(-100.0) >= 0.0);
        assert!((sigmoid_scalar(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid_scalar(-100.0) < 1e-6);
        assert!((sigmoid_scalar(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn tanh_matches_finite_difference() {
        fd_check(tanh, |d, _x, y| tanh_backward(d, y), &PTS, 1e-3);
    }

    #[test]
    fn gelu_matches_finite_difference() {
        fd_check(gelu, |d, x, _y| gelu_backward(d, x), &PTS, 2e-3);
    }

    #[test]
    fn gelu_anchors() {
        // GELU(0) = 0; GELU(large) ≈ identity; GELU(-large) ≈ 0.
        assert_eq!(gelu_scalar(0.0), 0.0);
        assert!((gelu_scalar(6.0) - 6.0).abs() < 1e-3);
        assert!(gelu_scalar(-6.0).abs() < 1e-3);
    }

    #[test]
    fn leaky_relu_matches_finite_difference() {
        fd_check(
            |x| leaky_relu(x, 0.1),
            |d, x, _y| leaky_relu_backward(d, x, 0.1),
            &PTS,
            1e-3,
        );
    }
}
