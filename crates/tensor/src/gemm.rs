//! Packed, cache-blocked, multi-threaded matrix multiplication.
//!
//! Three entry points cover everything the layer backward passes need
//! without materializing transposes:
//!
//! * [`matmul`]     — `C = A · B`
//! * [`matmul_tn`]  — `C = Aᵀ · B` (e.g. weight gradients `Xᵀ · dY`)
//! * [`matmul_nt`]  — `C = A · Bᵀ` (e.g. input gradients `dY · Wᵀ`)
//!
//! All three route through one BLIS-style blocked loop nest
//! ([`gemm_into`]): B panels are packed `NR` columns at a time, A panels
//! `MR` rows at a time, and every `MR×NR` output tile is updated by the
//! microkernel selected in [`crate::simd`] (AVX2/FMA or bit-identical
//! scalar). Transposed operands are handled by the *pack* reading the
//! source in its natural layout — no `O(km)` transpose copies — and the
//! convolution path packs B straight out of the input image via the
//! im2col coordinate mapping, so the column matrix is never materialized
//! (see [`crate::conv`]).
//!
//! **Determinism.** Each output element receives one sequential
//! fused-multiply-add fold over `k` in ascending order: `KC` blocks are
//! visited in order, the microkernel folds each block in order on top of
//! the previous partial, and row-block tasks only partition *disjoint*
//! output rows by problem shape (never by thread count). Results are
//! therefore bit-identical for every `DROPBACK_THREADS` value, with SIMD
//! on or off — `tests/gemm_conformance.rs` pins this against a naive
//! `f32::mul_add` triple loop, exactly.
//!
//! Pack buffers are thread-local and bounded (`MC·KC` floats for A,
//! `KC·NC` for B per thread), reused across calls instead of sized per
//! call. Every entry point records a `"gemm"` span (annotated with the
//! call's FLOP count for the trace analyzer's GFLOP/s column) plus
//! call/FLOP counters in the global collector.

use crate::conv::ConvGeom;
use crate::simd::{self, Kernel, MR, NR};
use crate::{pool, Tensor};
use dropback_telemetry::{global, Counter, Span};
use std::cell::RefCell;
use std::sync::OnceLock;

/// Rows per packed A block (multiple of `MR`); the A block of `MC × KC`
/// floats is sized to stay cache-resident while a B panel streams past.
const MC: usize = 96;
/// Shared-dimension depth per packed block.
const KC: usize = 256;
/// Columns per packed B block (multiple of `NR`).
const NC: usize = 512;

/// Problems smaller than this many multiply-accumulates stay single-threaded.
const PARALLEL_THRESHOLD: usize = 1 << 18;

/// Multiply-accumulates per parallel row block. The row-chunk size is
/// derived from this and the problem shape only, keeping the task list
/// independent of the worker count (the determinism contract of
/// [`pool::run_tasks`]).
const BLOCK_MACS: usize = 1 << 16;

/// Rows per parallel task for an `m × k × n` problem — a pure function of
/// the problem shape, rounded up to whole `MR` micro-panels so tasks never
/// split a register tile.
fn par_row_chunk(m: usize, k: usize, n: usize) -> usize {
    let rows = (BLOCK_MACS / (k * n).max(1)).max(1);
    rows.next_multiple_of(MR).min(m.next_multiple_of(MR))
}

thread_local! {
    /// Reusable packed-A buffer (≤ `MC·KC` floats), one per worker thread.
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Reusable packed-B buffer (≤ `KC·NC` floats), one per worker thread.
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Takes a thread-local pack buffer. Taken (not borrowed) so a nested gemm
/// on the same thread — e.g. the caller draining a concurrent run's conv
/// task while its own gemm is mid-flight — starts from an empty buffer
/// instead of panicking on a `RefCell` re-borrow.
fn take_buf(slot: &'static std::thread::LocalKey<RefCell<Vec<f32>>>) -> Vec<f32> {
    slot.with(|c| std::mem::take(&mut *c.borrow_mut()))
}

/// Returns a pack buffer to its thread-local slot for the next call.
fn put_buf(slot: &'static std::thread::LocalKey<RefCell<Vec<f32>>>, buf: Vec<f32>) {
    slot.with(|c| *c.borrow_mut() = buf);
}

/// Where a gemm call reads its `m × k` left operand from.
#[derive(Clone, Copy)]
pub(crate) enum ASrc<'a> {
    /// `A[i, kk]` stored row-major at `data[i * k + kk]`.
    RowMajor(&'a [f32]),
    /// `A[i, kk]` stored transposed (`[k, m]`) at `data[kk * m + i]` —
    /// lets [`matmul_tn`] pack Aᵀ with contiguous copies, no transpose
    /// tensor.
    ColMajor(&'a [f32]),
}

/// Where a gemm call reads its `k × n` right operand from.
#[derive(Clone, Copy)]
pub(crate) enum BSrc<'a> {
    /// `B[kk, j]` stored row-major at `data[kk * n + j]`.
    RowMajor(&'a [f32]),
    /// `B[kk, j]` stored transposed (`[n, k]`) at `data[j * k + kk]`
    /// (for [`matmul_nt`]).
    ColMajor(&'a [f32]),
    /// The im2col matrix of one `[c, h, w]` image, read on the fly via the
    /// coordinate mapping: row `kk` decomposes to `(c, ky, kx)`, column
    /// `j` to `(oy, ox)`, and the pack gathers `image[c, iy, ix]` (or a
    /// padding zero) directly — the column matrix is never materialized.
    Im2col {
        /// The `[c, h, w]` input image, flat.
        image: &'a [f32],
        /// Convolution geometry defining the mapping.
        geom: ConvGeom,
    },
    /// The *transpose* of the im2col matrix (row `kk` ↦ `(oy, ox)`,
    /// column `j` ↦ `(c, ky, kx)`), used by the weight-gradient GEMM
    /// `dW = dY · im2colᵀ`.
    Im2colT {
        /// The `[c, h, w]` input image, flat.
        image: &'a [f32],
        /// Convolution geometry defining the mapping.
        geom: ConvGeom,
    },
}

/// Records one gemm call of `2·m·n·k` FLOPs in the global collector and
/// returns the timing span guard, annotated with the FLOP count so the
/// trace analyzer can derive per-kernel GFLOP/s. Counter handles are
/// resolved once — the per-call cost is two relaxed atomic adds.
fn gemm_telemetry(m: usize, k: usize, n: usize) -> Span {
    static COUNTERS: OnceLock<(Counter, Counter)> = OnceLock::new();
    let (calls, flops) = COUNTERS.get_or_init(|| {
        let g = global();
        (
            g.counter("tensor.gemm.calls"),
            g.counter("tensor.gemm.flops"),
        )
    });
    let nflops = 2 * (m * n * k) as u64;
    calls.inc();
    flops.add(nflops);
    Span::enter_with("gemm", &[("flops", nflops as f64)])
}

/// `C = A · B` for rank-2 tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if either input is not rank-2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims: lhs [{m},{k}] vs rhs [{k2},{n}]");
    let mut out = vec![0.0f32; m * n];
    gemm_into(
        &mut out,
        m,
        n,
        k,
        ASrc::RowMajor(a.data()),
        BSrc::RowMajor(b.data()),
    );
    Tensor::from_vec(vec![m, n], out)
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`, producing `[m, n]`.
///
/// The transpose is absorbed by the A pack (column-major reads), not a
/// copy.
///
/// # Panics
///
/// Panics if either input is not rank-2 or the shared dimension disagrees.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_tn lhs");
    let (k2, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(
        k, k2,
        "matmul_tn shared dim: lhs [{k},{m}] vs rhs [{k2},{n}]"
    );
    let mut out = vec![0.0f32; m * n];
    gemm_into(
        &mut out,
        m,
        n,
        k,
        ASrc::ColMajor(a.data()),
        BSrc::RowMajor(b.data()),
    );
    Tensor::from_vec(vec![m, n], out)
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`, producing `[m, n]`.
///
/// The transpose is absorbed by the B pack (column-major reads), not a
/// copy.
///
/// # Panics
///
/// Panics if either input is not rank-2 or the shared dimension disagrees.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nt lhs");
    let (n, k2) = dims2(b, "matmul_nt rhs");
    assert_eq!(
        k, k2,
        "matmul_nt shared dim: lhs [{m},{k}] vs rhs [{n},{k2}]"
    );
    let mut out = vec![0.0f32; m * n];
    gemm_into(
        &mut out,
        m,
        n,
        k,
        ASrc::RowMajor(a.data()),
        BSrc::ColMajor(b.data()),
    );
    Tensor::from_vec(vec![m, n], out)
}

/// `C += A · B` into a caller-provided `m × n` buffer — the single blocked
/// loop nest every entry point (and the fused conv path) runs through.
///
/// `c` is accumulated into, so callers wanting `C = A·B` pass zeros.
///
/// # Panics
///
/// Panics if `c.len() != m * n` or a source slice is too short for the
/// declared dimensions.
pub(crate) fn gemm_into(c: &mut [f32], m: usize, n: usize, k: usize, a: ASrc<'_>, b: BSrc<'_>) {
    assert_eq!(c.len(), m * n, "gemm output buffer");
    let _span = gemm_telemetry(m, k, n);
    let kern = simd::kernel();
    let chunk = par_row_chunk(m, k, n);
    let parallel = m * n * k >= PARALLEL_THRESHOLD && pool::threads() >= 2 && chunk < m;
    let mut bbuf = take_buf(&PACK_B);
    for jc in (0..n).step_by(NC) {
        let nb = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            pack_b(&mut bbuf, b, k, n, pc, kb, jc, nb);
            if parallel {
                let bref = &bbuf;
                let tasks: Vec<pool::Task<'_>> = c
                    .chunks_mut(chunk * n)
                    .enumerate()
                    .map(|(t, crows)| {
                        let rows = crows.len() / n;
                        Box::new(move || {
                            gemm_row_block(
                                kern,
                                crows,
                                t * chunk,
                                rows,
                                n,
                                jc,
                                nb,
                                pc,
                                kb,
                                a,
                                m,
                                k,
                                bref,
                            );
                        }) as pool::Task<'_>
                    })
                    .collect();
                pool::run_tasks(tasks);
            } else {
                gemm_row_block(kern, c, 0, m, n, jc, nb, pc, kb, a, m, k, &bbuf);
            }
        }
    }
    put_buf(&PACK_B, bbuf);
}

/// Updates rows `[row0, row0 + rows)` of C for one `(jc, pc)` block:
/// packs A in `MC`-row sub-blocks into the thread-local buffer and walks
/// the `MR×NR` tile grid against the shared packed-B block.
#[allow(clippy::too_many_arguments)]
fn gemm_row_block(
    kern: Kernel,
    crows: &mut [f32],
    row0: usize,
    rows: usize,
    n: usize,
    jc: usize,
    nb: usize,
    pc: usize,
    kb: usize,
    a: ASrc<'_>,
    m: usize,
    k: usize,
    bbuf: &[f32],
) {
    let mut abuf = take_buf(&PACK_A);
    let npanels = nb.div_ceil(NR);
    for ic in (0..rows).step_by(MC) {
        let mb = MC.min(rows - ic);
        pack_a(&mut abuf, a, m, k, row0 + ic, mb, pc, kb);
        for jp in 0..npanels {
            let nr = NR.min(nb - jp * NR);
            let bp = &bbuf[jp * kb * NR..(jp + 1) * kb * NR];
            for ir in (0..mb).step_by(MR) {
                let mr = MR.min(mb - ir);
                let ap = &abuf[(ir / MR) * kb * MR..(ir / MR + 1) * kb * MR];
                let off = (ic + ir) * n + jc + jp * NR;
                if mr == MR && nr == NR {
                    let tile = &mut crows[off..off + (MR - 1) * n + NR];
                    simd::run_tile(kern, ap, bp, kb, tile, n);
                } else {
                    // Edge tile: run the full-size kernel on a scratch
                    // tile (packed panels are zero-padded) and copy the
                    // live `mr × nr` region back. Each live element's fma
                    // chain is identical to the full-tile path, so edges
                    // are bit-identical too.
                    let mut scratch = [0.0f32; MR * NR];
                    for i in 0..mr {
                        let src = &crows[off + i * n..off + i * n + nr];
                        scratch[i * NR..i * NR + nr].copy_from_slice(src);
                    }
                    simd::run_tile(kern, ap, bp, kb, &mut scratch, NR);
                    for i in 0..mr {
                        let dst = &mut crows[off + i * n..off + i * n + nr];
                        dst.copy_from_slice(&scratch[i * NR..i * NR + nr]);
                    }
                }
            }
        }
    }
    put_buf(&PACK_A, abuf);
}

/// Packs A rows `[row0, row0+mb) × k-range [pc, pc+kb)` into `MR`-row
/// micro-panels: `buf[(ip*kb + kk)*MR + i]`, zero-padding the last panel.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    buf: &mut Vec<f32>,
    a: ASrc<'_>,
    m: usize,
    k: usize,
    row0: usize,
    mb: usize,
    pc: usize,
    kb: usize,
) {
    let panels = mb.div_ceil(MR);
    buf.clear();
    buf.resize(panels * kb * MR, 0.0);
    for ip in 0..panels {
        let rbase = row0 + ip * MR;
        let live = MR.min(row0 + mb - rbase);
        let dst = &mut buf[ip * kb * MR..(ip + 1) * kb * MR];
        match a {
            ASrc::RowMajor(d) => {
                for i in 0..live {
                    let src = &d[(rbase + i) * k + pc..(rbase + i) * k + pc + kb];
                    for (kk, &v) in src.iter().enumerate() {
                        dst[kk * MR + i] = v;
                    }
                }
            }
            ASrc::ColMajor(d) => {
                for kk in 0..kb {
                    let src = &d[(pc + kk) * m + rbase..(pc + kk) * m + rbase + live];
                    dst[kk * MR..kk * MR + live].copy_from_slice(src);
                }
            }
        }
    }
}

/// Packs B k-range `[pc, pc+kb) × columns [jc, jc+nb)` into `NR`-column
/// micro-panels: `buf[(jp*kb + kk)*NR + j]`, zero-padding the last panel.
/// The im2col variants gather conv patches straight from the image.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    buf: &mut Vec<f32>,
    b: BSrc<'_>,
    k: usize,
    n: usize,
    pc: usize,
    kb: usize,
    jc: usize,
    nb: usize,
) {
    let panels = nb.div_ceil(NR);
    buf.clear();
    buf.resize(panels * kb * NR, 0.0);
    for jp in 0..panels {
        let jbase = jc + jp * NR;
        let live = NR.min(jc + nb - jbase);
        let dst = &mut buf[jp * kb * NR..(jp + 1) * kb * NR];
        match b {
            BSrc::RowMajor(d) => {
                for kk in 0..kb {
                    let src = &d[(pc + kk) * n + jbase..(pc + kk) * n + jbase + live];
                    dst[kk * NR..kk * NR + live].copy_from_slice(src);
                }
            }
            BSrc::ColMajor(d) => {
                for j in 0..live {
                    let src = &d[(jbase + j) * k + pc..(jbase + j) * k + pc + kb];
                    for (kk, &v) in src.iter().enumerate() {
                        dst[kk * NR + j] = v;
                    }
                }
            }
            BSrc::Im2col { image, geom } => {
                pack_im2col(dst, image, geom, pc, kb, jbase, live);
            }
            BSrc::Im2colT { image, geom } => {
                pack_im2col_t(dst, image, geom, pc, kb, jbase, live);
            }
        }
    }
}

/// Gathers an im2col micro-panel (rows ↦ `(c, ky, kx)`, columns ↦
/// `(oy, ox)`) directly from the image via the coordinate mapping.
fn pack_im2col(
    dst: &mut [f32],
    image: &[f32],
    g: ConvGeom,
    pc: usize,
    kb: usize,
    jbase: usize,
    live: usize,
) {
    let ow = g.ow();
    for kk in 0..kb {
        let r = pc + kk;
        let kx = r % g.kw;
        let ky = (r / g.kw) % g.kh;
        let c = r / (g.kw * g.kh);
        let row = &mut dst[kk * NR..kk * NR + live];
        for (j, slot) in row.iter_mut().enumerate() {
            let cc = jbase + j;
            *slot = g.patch_value(image, c, ky, kx, cc / ow, cc % ow);
        }
    }
}

/// Gathers the *transposed* im2col micro-panel (rows ↦ `(oy, ox)`,
/// columns ↦ `(c, ky, kx)`) for the weight-gradient GEMM.
fn pack_im2col_t(
    dst: &mut [f32],
    image: &[f32],
    g: ConvGeom,
    pc: usize,
    kb: usize,
    jbase: usize,
    live: usize,
) {
    let ow = g.ow();
    for kk in 0..kb {
        let cc = pc + kk;
        let (oy, ox) = (cc / ow, cc % ow);
        let row = &mut dst[kk * NR..kk * NR + live];
        for (j, slot) in row.iter_mut().enumerate() {
            let r = jbase + j;
            let kx = r % g.kw;
            let ky = (r / g.kw) % g.kh;
            let c = r / (g.kw * g.kh);
            *slot = g.patch_value(image, c, ky, kx, oy, ox);
        }
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.rank(),
        2,
        "{what} must be rank-2, got shape {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive triple loop with the same per-element sequential `mul_add`
    /// fold the packed kernel guarantees — comparisons are exact-bits.
    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        Tensor::from_fn(vec![m, n], |idx| {
            let (i, j) = (idx / n, idx % n);
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = a.at2(i, kk).mul_add(b.at2(kk, j), acc);
            }
            acc
        })
    }

    fn rand_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
        let mut state = seed.max(1);
        Tensor::from_fn(shape, |_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        })
    }

    fn assert_bits_eq(c: &Tensor, r: &Tensor) {
        assert_eq!(c.shape(), r.shape());
        for (i, (x, y)) in c.data().iter().zip(r.data()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "element {i}: {x} ({:#x}) vs {y} ({:#x})",
                x.to_bits(),
                y.to_bits()
            );
        }
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        assert_eq!(matmul(&a, &b).data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_matches_naive_bitwise_small() {
        let a = rand_tensor(vec![7, 5], 1);
        let b = rand_tensor(vec![5, 9], 2);
        assert_bits_eq(&matmul(&a, &b), &naive(&a, &b));
    }

    #[test]
    fn matmul_matches_naive_bitwise_across_blocks() {
        // Crosses MR/NR tile edges, the MC row blocking, and KC blocking.
        let a = rand_tensor(vec![MC + 7, KC + 3], 3);
        let b = rand_tensor(vec![KC + 3, NR * 2 + 5], 4);
        assert_bits_eq(&matmul(&a, &b), &naive(&a, &b));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose_bitwise() {
        let a = rand_tensor(vec![6, 4], 5);
        let b = rand_tensor(vec![6, 3], 6);
        let c = matmul_tn(&a, &b);
        assert_bits_eq(&c, &matmul(&a.t(), &b));
        assert_eq!(c.shape(), &[4, 3]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose_bitwise() {
        let a = rand_tensor(vec![6, 4], 7);
        let b = rand_tensor(vec![5, 4], 8);
        let c = matmul_nt(&a, &b);
        assert_bits_eq(&c, &matmul(&a, &b.t()));
        assert_eq!(c.shape(), &[6, 5]);
    }

    #[test]
    fn matmul_parallel_path_matches_naive_bitwise() {
        let a = rand_tensor(vec![130, 70], 3);
        let b = rand_tensor(vec![70, 90], 4);
        assert_bits_eq(&matmul(&a, &b), &naive(&a, &b));
    }

    #[test]
    fn par_row_chunk_is_tile_aligned() {
        for (m, k, n) in [(1, 1, 1), (64, 784, 100), (1000, 3, 2), (5, 9000, 9000)] {
            let c = par_row_chunk(m, k, n);
            assert!(c.is_multiple_of(MR), "chunk {c} not a multiple of MR");
            assert!(c >= MR && c <= m.next_multiple_of(MR));
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        matmul(&a, &b);
    }

    #[test]
    #[should_panic(expected = "must be rank-2")]
    fn matmul_rank_mismatch_panics() {
        let a = Tensor::zeros(vec![2, 3, 4]);
        let b = Tensor::zeros(vec![4, 2]);
        matmul(&a, &b);
    }

    #[test]
    fn telemetry_hook_counts_calls_and_flops() {
        let g = dropback_telemetry::global();
        let calls_before = g.counter("tensor.gemm.calls").get();
        let flops_before = g.counter("tensor.gemm.flops").get();
        let a = rand_tensor(vec![4, 5], 20);
        let b = rand_tensor(vec![5, 6], 21);
        let _ = matmul(&a, &b);
        // Other tests call matmul concurrently in this process, so the
        // deltas are lower bounds rather than exact.
        assert!(g.counter("tensor.gemm.calls").get() > calls_before);
        assert!(g.counter("tensor.gemm.flops").get() >= flops_before + 2 * 4 * 5 * 6);
    }

    #[test]
    fn identity_multiplication() {
        let a = rand_tensor(vec![5, 5], 11);
        let eye = Tensor::from_fn(vec![5, 5], |i| if i / 5 == i % 5 { 1.0 } else { 0.0 });
        let c = matmul(&a, &eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn gemm_into_accumulates() {
        let a = rand_tensor(vec![3, 4], 12);
        let b = rand_tensor(vec![4, 2], 13);
        let mut c = vec![1.0f32; 6];
        gemm_into(
            &mut c,
            3,
            2,
            4,
            ASrc::RowMajor(a.data()),
            BSrc::RowMajor(b.data()),
        );
        let plain = matmul(&a, &b);
        for (x, y) in c.iter().zip(plain.data()) {
            // Accumulation on top of 1.0 seeds the fold with 1.0.
            assert!((x - (y + 1.0)).abs() < 1e-5, "{x} vs {}", y + 1.0);
        }
    }
}
