//! Blocked, multi-threaded matrix multiplication.
//!
//! Three entry points cover everything the layer backward passes need
//! without materializing transposes:
//!
//! * [`matmul`]     — `C = A · B`
//! * [`matmul_tn`]  — `C = Aᵀ · B` (e.g. weight gradients `Xᵀ · dY`)
//! * [`matmul_nt`]  — `C = A · Bᵀ` (e.g. input gradients `dY · Wᵀ`)
//!
//! The kernel is a cache-friendly `i-k-j` loop over row blocks; when the
//! problem is large enough, row blocks are dispatched to the persistent
//! worker [`pool`](crate::pool). Row blocks are sized from the problem
//! shape alone (never from the thread count), and each block computes its
//! output rows independently, so results are bit-identical for every
//! `DROPBACK_THREADS` value.
//!
//! Every entry point records a `"gemm"` span (annotated with the call's
//! FLOP count for the trace analyzer's GFLOP/s column) plus call/FLOP
//! counters in the global collector.

use crate::{pool, Tensor};
use dropback_telemetry::{global, Counter, Span};
use std::sync::OnceLock;

/// Problems smaller than this many multiply-accumulates stay single-threaded.
const PARALLEL_THRESHOLD: usize = 1 << 18;

/// Multiply-accumulates per parallel row block. The row-chunk size is
/// derived from this and the problem shape only, keeping the task list
/// independent of the worker count (the determinism contract of
/// [`pool::run_tasks`]).
const BLOCK_MACS: usize = 1 << 16;

/// Rows per parallel task for an `m × k × n` problem — a pure function of
/// the problem shape.
fn par_row_chunk(m: usize, k: usize, n: usize) -> usize {
    (BLOCK_MACS / (k * n).max(1)).clamp(1, m)
}

/// Records one gemm call of `2·m·n·k` FLOPs in the global collector and
/// returns the timing span guard, annotated with the FLOP count so the
/// trace analyzer can derive per-kernel GFLOP/s. Counter handles are
/// resolved once — the per-call cost is two relaxed atomic adds.
fn gemm_telemetry(m: usize, k: usize, n: usize) -> Span {
    static COUNTERS: OnceLock<(Counter, Counter)> = OnceLock::new();
    let (calls, flops) = COUNTERS.get_or_init(|| {
        let g = global();
        (
            g.counter("tensor.gemm.calls"),
            g.counter("tensor.gemm.flops"),
        )
    });
    let nflops = 2 * (m * n * k) as u64;
    calls.inc();
    flops.add(nflops);
    Span::enter_with("gemm", &[("flops", nflops as f64)])
}

/// `C = A · B` for rank-2 tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if either input is not rank-2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims: lhs [{m},{k}] vs rhs [{k2},{n}]");
    let _span = gemm_telemetry(m, k, n);
    let mut out = vec![0.0f32; m * n];
    gemm_rows(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec(vec![m, n], out)
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`, producing `[m, n]`.
///
/// # Panics
///
/// Panics if either input is not rank-2 or the shared dimension disagrees.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_tn lhs");
    let (k2, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(
        k, k2,
        "matmul_tn shared dim: lhs [{k},{m}] vs rhs [{k2},{n}]"
    );
    let _span = gemm_telemetry(m, k, n);
    // Transposing A up front turns this into the cache-friendly kernel; the
    // copy is O(km) against O(kmn) compute.
    let at = a.t();
    let mut out = vec![0.0f32; m * n];
    gemm_rows(at.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec(vec![m, n], out)
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`, producing `[m, n]`.
///
/// # Panics
///
/// Panics if either input is not rank-2 or the shared dimension disagrees.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nt lhs");
    let (n, k2) = dims2(b, "matmul_nt rhs");
    assert_eq!(
        k, k2,
        "matmul_nt shared dim: lhs [{m},{k}] vs rhs [{n},{k2}]"
    );
    let _span = gemm_telemetry(m, k, n);
    let mut out = vec![0.0f32; m * n];
    let work = m * n * k;
    if work < PARALLEL_THRESHOLD || pool::threads() < 2 || m < 2 {
        gemm_nt_block(a.data(), b.data(), &mut out, 0, m, k, n);
    } else {
        let chunk = par_row_chunk(m, k, n);
        let a_data = a.data();
        let b_data = b.data();
        let tasks: Vec<pool::Task<'_>> = out
            .chunks_mut(chunk * n)
            .enumerate()
            .map(|(t, out_chunk)| {
                let rows = out_chunk.len() / n;
                Box::new(move || {
                    gemm_nt_block(a_data, b_data, out_chunk, t * chunk, rows, k, n);
                }) as pool::Task<'_>
            })
            .collect();
        pool::run_tasks(tasks);
    }
    Tensor::from_vec(vec![m, n], out)
}

/// Dispatches `C = A · B` over row blocks, threading when profitable.
fn gemm_rows(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let work = m * n * k;
    if work < PARALLEL_THRESHOLD || pool::threads() < 2 || m < 2 {
        gemm_block(a, b, out, 0, m, k, n);
        return;
    }
    let chunk = par_row_chunk(m, k, n);
    let tasks: Vec<pool::Task<'_>> = out
        .chunks_mut(chunk * n)
        .enumerate()
        .map(|(t, out_chunk)| {
            let rows = out_chunk.len() / n;
            Box::new(move || {
                gemm_block(a, b, out_chunk, t * chunk, rows, k, n);
            }) as pool::Task<'_>
        })
        .collect();
    pool::run_tasks(tasks);
}

/// `out[0..rows*n] = A[row0..row0+rows, :] · B` with an i-k-j kernel.
fn gemm_block(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    for i in 0..rows {
        let arow = &a[(row0 + i) * k..(row0 + i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out[0..rows*n] = A[row0.., :] · Bᵀ` — dot-product kernel (B rows are
/// contiguous, so this is already cache-friendly).
fn gemm_nt_block(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    for i in 0..rows {
        let arow = &a[(row0 + i) * k..(row0 + i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(
        t.rank(),
        2,
        "{what} must be rank-2, got shape {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        Tensor::from_fn(vec![m, n], |idx| {
            let (i, j) = (idx / n, idx % n);
            (0..k).map(|kk| a.at2(i, kk) * b.at2(kk, j)).sum()
        })
    }

    fn rand_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
        let mut state = seed.max(1);
        Tensor::from_fn(shape, |_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        })
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        assert_eq!(matmul(&a, &b).data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = rand_tensor(vec![7, 5], 1);
        let b = rand_tensor(vec![5, 9], 2);
        let c = matmul(&a, &b);
        let r = naive(&a, &b);
        for (x, y) in c.data().iter().zip(r.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_large_parallel() {
        // Big enough to trigger the threaded path.
        let a = rand_tensor(vec![130, 70], 3);
        let b = rand_tensor(vec![70, 90], 4);
        let c = matmul(&a, &b);
        let r = naive(&a, &b);
        for (x, y) in c.data().iter().zip(r.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = rand_tensor(vec![6, 4], 5);
        let b = rand_tensor(vec![6, 3], 6);
        let c = matmul_tn(&a, &b);
        let r = matmul(&a.t(), &b);
        for (x, y) in c.data().iter().zip(r.data()) {
            assert!((x - y).abs() < 1e-4);
        }
        assert_eq!(c.shape(), &[4, 3]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = rand_tensor(vec![6, 4], 7);
        let b = rand_tensor(vec![5, 4], 8);
        let c = matmul_nt(&a, &b);
        let r = matmul(&a, &b.t());
        for (x, y) in c.data().iter().zip(r.data()) {
            assert!((x - y).abs() < 1e-4);
        }
        assert_eq!(c.shape(), &[6, 5]);
    }

    #[test]
    fn matmul_nt_parallel_path() {
        let a = rand_tensor(vec![128, 64], 9);
        let b = rand_tensor(vec![96, 64], 10);
        let c = matmul_nt(&a, &b);
        let r = matmul(&a, &b.t());
        for (x, y) in c.data().iter().zip(r.data()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        matmul(&a, &b);
    }

    #[test]
    #[should_panic(expected = "must be rank-2")]
    fn matmul_rank_mismatch_panics() {
        let a = Tensor::zeros(vec![2, 3, 4]);
        let b = Tensor::zeros(vec![4, 2]);
        matmul(&a, &b);
    }

    #[test]
    fn telemetry_hook_counts_calls_and_flops() {
        let g = dropback_telemetry::global();
        let calls_before = g.counter("tensor.gemm.calls").get();
        let flops_before = g.counter("tensor.gemm.flops").get();
        let a = rand_tensor(vec![4, 5], 20);
        let b = rand_tensor(vec![5, 6], 21);
        let _ = matmul(&a, &b);
        // Other tests call matmul concurrently in this process, so the
        // deltas are lower bounds rather than exact.
        assert!(g.counter("tensor.gemm.calls").get() > calls_before);
        assert!(g.counter("tensor.gemm.flops").get() >= flops_before + 2 * 4 * 5 * 6);
    }

    #[test]
    fn identity_multiplication() {
        let a = rand_tensor(vec![5, 5], 11);
        let eye = Tensor::from_fn(vec![5, 5], |i| if i / 5 == i % 5 { 1.0 } else { 0.0 });
        let c = matmul(&a, &eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
