//! Process-wide tensor-allocation accounting.
//!
//! Every [`Tensor`](crate::Tensor) registers its payload size (4 bytes per
//! `f32` element) at construction and releases it on drop, maintaining a
//! live-bytes counter and a high-water mark. The trainer samples the mark
//! per epoch as a telemetry gauge / trace counter, answering "how much
//! tensor memory did this configuration peak at?" — the memory half of the
//! paper's pruned-weight-budget story.
//!
//! Everything is relaxed atomics: two uncontended read-modify-writes per
//! tensor lifetime, noise next to the `Vec` allocation itself. Counts are
//! element bytes only — `Vec` capacity slack and the shape vector are not
//! modeled.

use std::sync::atomic::{AtomicU64, Ordering};

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static HWM_BYTES: AtomicU64 = AtomicU64::new(0);

pub(crate) fn track_alloc(bytes: usize) {
    let live = LIVE_BYTES.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    HWM_BYTES.fetch_max(live, Ordering::Relaxed);
}

pub(crate) fn track_free(bytes: usize) {
    // Saturating rather than wrapping: a (would-be) accounting bug must
    // never poison the high-water mark with a near-u64::MAX "live" value.
    let _ = LIVE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(bytes as u64))
    });
}

/// Bytes of tensor payload currently alive in the process.
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Highest [`live_bytes`] value observed since process start (or the last
/// [`reset_hwm`]).
pub fn hwm_bytes() -> u64 {
    HWM_BYTES.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live total, so a caller can
/// measure the peak of one phase (e.g. a single epoch) in isolation.
pub fn reset_hwm() {
    HWM_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    // Other tests in the crate allocate tensors concurrently (KBs), so
    // these tests use multi-MB tensors and leave generous slack instead
    // of asserting exact totals.

    /// 4 MiB of payload — two orders of magnitude above anything the rest
    /// of the test binary allocates at once.
    const BIG: usize = 1 << 20;
    const BIG_BYTES: u64 = (BIG as u64) * 4;
    const SLACK: u64 = BIG_BYTES / 4;

    #[test]
    fn alloc_raises_live_and_hwm_and_drop_releases() {
        let before = live_bytes();
        let t = Tensor::zeros(vec![BIG]);
        let with = live_bytes();
        assert!(with >= before + BIG_BYTES, "alloc tracked");
        assert!(hwm_bytes() >= with, "hwm covers the peak");
        drop(t);
        assert!(
            live_bytes() <= with - BIG_BYTES + SLACK,
            "drop released the payload"
        );
    }

    #[test]
    fn clone_and_into_vec_balance() {
        let t = Tensor::from_fn(vec![BIG], |i| i as f32);
        let live_one = live_bytes();
        let c = t.clone();
        assert!(live_bytes() >= live_one + BIG_BYTES, "clone tracked");
        let with_clone = live_bytes();
        let v = c.into_vec();
        assert_eq!(v.len(), BIG);
        assert!(
            live_bytes() <= with_clone - BIG_BYTES + SLACK,
            "into_vec released the tensor's accounting"
        );
        drop(t);
    }

    #[test]
    fn reset_hwm_tracks_current_live() {
        let t = Tensor::zeros(vec![BIG]);
        reset_hwm();
        assert!(hwm_bytes() >= BIG_BYTES, "reset keeps live tensors counted");
        drop(t);
    }
}
