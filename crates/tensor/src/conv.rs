//! Convolution and pooling kernels (NCHW layout).
//!
//! Convolution uses the classic `im2col` lowering *as a coordinate
//! mapping, not a copy*: the packed GEMM's B-panel pack gathers receptive
//! fields straight from the input image (`BSrc::Im2col` /
//! `BSrc::Im2colT` in [`crate::gemm`]), so the `[c*kh*kw, oh*ow]` column
//! matrix is never materialized. The forward pass is one fused GEMM per
//! sample against the `[filters, c*kh*kw]` weight matrix, the weight
//! gradient is a fused `dY · im2colᵀ` GEMM, and only the input-gradient
//! scatter (`col2im`) still materializes a per-sample column-gradient
//! buffer. The process-wide tensor-allocation high-water mark
//! (`tensor.alloc_hwm_bytes`) shows the drop versus the old materialized
//! path; `crates/tensor/tests/conv_fused.rs` pins both the bits and the
//! peak. The standalone [`im2col`]/[`col2im`] lowerings remain available
//! (tests and the adjoint property use them).
//!
//! All kernels distribute work over the persistent [`pool`](crate::pool):
//! conv forward/backward by sample (with per-sample weight/bias partials
//! merged serially in sample order), `im2col`/`col2im` by channel, and
//! pooling by `(n, c)` plane. Each partition depends only on the problem
//! shape — never on the thread count — so outputs are bit-identical at any
//! `DROPBACK_THREADS` value.

use crate::gemm::{gemm_into, ASrc, BSrc};
use crate::{pool, Tensor};
use dropback_telemetry::{global, Counter, Span};
use std::sync::OnceLock;

/// Records one conv call over `n` samples in the global collector and
/// returns the timing span guard, annotated with the GEMM-equivalent FLOP
/// count (`2 · f · col_rows · col_cols` per sample) so the trace analyzer
/// can report conv GFLOP/s.
fn conv_telemetry(n: usize, f: usize, g: ConvGeom) -> Span {
    static COUNTERS: OnceLock<(Counter, Counter)> = OnceLock::new();
    let (calls, samples) = COUNTERS.get_or_init(|| {
        let c = global();
        (
            c.counter("tensor.conv.calls"),
            c.counter("tensor.conv.samples"),
        )
    });
    calls.inc();
    samples.add(n as u64);
    let flops = 2.0 * (n * f * g.col_rows() * g.col_cols()) as f64;
    Span::enter_with("conv", &[("flops", flops), ("samples", n as f64)])
}

/// Span guard for the im2col/col2im lowering steps, annotated with the
/// column-matrix payload size.
fn lowering_span(name: &'static str, g: ConvGeom) -> Span {
    Span::enter_with(name, &[("bytes", (g.col_rows() * g.col_cols() * 4) as f64)])
}

/// Output spatial size for a convolution/pooling dimension (dilation 1).
///
/// # Panics
///
/// Panics if the kernel does not fit the padded input or `stride == 0`.
pub fn out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    out_dim_dilated(input, kernel, stride, pad, 1)
}

/// Output spatial size with kernel `dilation` (effective kernel extent
/// `(kernel - 1) * dilation + 1`).
///
/// # Panics
///
/// Panics if the effective kernel does not fit the padded input, or
/// `stride == 0`, or `dilation == 0`.
pub fn out_dim_dilated(
    input: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    dilation: usize,
) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(dilation > 0, "dilation must be positive");
    let eff = (kernel - 1) * dilation + 1;
    let padded = input + 2 * pad;
    assert!(
        padded >= eff,
        "kernel {eff} larger than padded input {padded}"
    );
    (padded - eff) / stride + 1
}

/// Geometry of one convolution, shared by forward and backward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Kernel dilation (same in both dimensions; 1 = dense kernel).
    pub dilation: usize,
}

impl ConvGeom {
    /// Output height.
    pub fn oh(&self) -> usize {
        out_dim_dilated(self.h, self.kh, self.stride, self.pad, self.dilation)
    }
    /// Output width.
    pub fn ow(&self) -> usize {
        out_dim_dilated(self.w, self.kw, self.stride, self.pad, self.dilation)
    }
    /// Rows of the im2col matrix (`c * kh * kw`).
    pub fn col_rows(&self) -> usize {
        self.c * self.kh * self.kw
    }
    /// Columns of the im2col matrix (`oh * ow`).
    pub fn col_cols(&self) -> usize {
        self.oh() * self.ow()
    }

    /// One element of the (virtual) im2col matrix: the input value under
    /// kernel tap `(ky, kx)` of channel `c` at output position
    /// `(oy, ox)`, or `0.0` where the tap falls in the zero padding. This
    /// is the coordinate mapping the packed GEMM gathers B panels
    /// through.
    #[inline]
    pub(crate) fn patch_value(
        &self,
        image: &[f32],
        c: usize,
        ky: usize,
        kx: usize,
        oy: usize,
        ox: usize,
    ) -> f32 {
        let iy = (oy * self.stride + ky * self.dilation) as isize - self.pad as isize;
        let ix = (ox * self.stride + kx * self.dilation) as isize - self.pad as isize;
        if iy < 0 || ix < 0 || iy >= self.h as isize || ix >= self.w as isize {
            0.0
        } else {
            image[(c * self.h + iy as usize) * self.w + ix as usize]
        }
    }
}

/// Unrolls one `[c, h, w]` image into an `[c*kh*kw, oh*ow]` column matrix.
///
/// The training hot path no longer calls this — the packed GEMM reads
/// patches via the coordinate mapping instead — but the explicit lowering
/// remains for tests, tooling, and the adjoint property with [`col2im`].
///
/// Parallelized by input channel: channel `c` owns the `kh*kw` column rows
/// derived from it, a disjoint slice of the output.
pub fn im2col(x: &[f32], g: ConvGeom) -> Tensor {
    let _span = lowering_span("im2col", g);
    let (oh, ow) = (g.oh(), g.ow());
    let mut col = vec![0.0f32; g.col_rows() * g.col_cols()];
    let cols = oh * ow;
    pool::for_each_chunk_mut(&mut col, g.kh * g.kw * cols, |c, chunk| {
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let out_base = (ky * g.kw + kx) * cols;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky * g.dilation) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.h as isize {
                        continue;
                    }
                    let in_base = (c * g.h + iy as usize) * g.w;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx * g.dilation) as isize - g.pad as isize;
                        if ix < 0 || ix >= g.w as isize {
                            continue;
                        }
                        chunk[out_base + oy * ow + ox] = x[in_base + ix as usize];
                    }
                }
            }
        }
    });
    Tensor::from_vec(vec![g.col_rows(), g.col_cols()], col)
}

/// Scatters an `[c*kh*kw, oh*ow]` column-gradient matrix back into a
/// `[c, h, w]` image gradient (the adjoint of [`im2col`]).
///
/// Parallelized by channel: the `kh*kw` column rows of channel `c` scatter
/// only into channel `c`'s `[h, w]` plane, so the accumulation per plane
/// keeps the serial loop order (`ky`, `kx`, `oy`, `ox`) and is
/// bit-identical at any thread count.
pub fn col2im(col: &Tensor, g: ConvGeom) -> Vec<f32> {
    assert_eq!(col.shape(), &[g.col_rows(), g.col_cols()], "col2im shape");
    let _span = lowering_span("col2im", g);
    let mut x = vec![0.0f32; g.c * g.h * g.w];
    col2im_into(col.data(), g, &mut x);
    x
}

/// [`col2im`] into a caller-provided (zeroed) `[c, h, w]` buffer —
/// accumulates with `+=`, per-plane in the serial `ky, kx, oy, ox` order.
fn col2im_into(data: &[f32], g: ConvGeom, x: &mut [f32]) {
    let (oh, ow) = (g.oh(), g.ow());
    let cols = oh * ow;
    pool::for_each_chunk_mut(x, g.h * g.w, |c, plane| {
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let row = (c * g.kh + ky) * g.kw + kx;
                let in_base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky * g.dilation) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.h as isize {
                        continue;
                    }
                    let out_base = iy as usize * g.w;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx * g.dilation) as isize - g.pad as isize;
                        if ix < 0 || ix >= g.w as isize {
                            continue;
                        }
                        plane[out_base + ix as usize] += data[in_base + oy * ow + ox];
                    }
                }
            }
        }
    });
}

/// Forward convolution with the im2col lowering fused into the GEMM pack.
///
/// * `x`: `[n, c, h, w]`
/// * `weight`: `[f, c*kh*kw]` (pre-flattened filter matrix)
/// * `bias`: optional `[f]`
///
/// Returns the output `[n, f, oh, ow]`. The backward pass
/// ([`conv2d_backward`]) takes the original input instead of saved column
/// matrices, so nothing im2col-shaped is ever allocated.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_forward(x: &Tensor, weight: &Tensor, bias: Option<&[f32]>, g: ConvGeom) -> Tensor {
    assert_eq!(x.rank(), 4, "conv input must be [n,c,h,w]");
    let n = x.shape()[0];
    assert_eq!(x.shape()[1..], [g.c, g.h, g.w], "conv input vs geom");
    let f = weight.shape()[0];
    assert_eq!(
        weight.shape()[1],
        g.col_rows(),
        "weight cols {} != c*kh*kw {}",
        weight.shape()[1],
        g.col_rows()
    );
    if let Some(b) = bias {
        assert_eq!(b.len(), f, "bias len");
    }
    let _span = conv_telemetry(n, f, g);
    let (oh, ow) = (g.oh(), g.ow());
    let sample = g.c * g.h * g.w;
    let mut out = vec![0.0f32; n * f * oh * ow];
    // One task per sample, each writing a disjoint output slice; the fused
    // GEMM inside a task runs inline on its worker.
    pool::for_each_chunk_mut(&mut out, f * oh * ow, |i, dst| {
        let image = &x.data()[i * sample..(i + 1) * sample];
        gemm_into(
            dst,
            f,
            g.col_cols(),
            g.col_rows(),
            ASrc::RowMajor(weight.data()),
            BSrc::Im2col { image, geom: g },
        );
        if let Some(b) = bias {
            for (fi, bv) in b.iter().enumerate() {
                for v in &mut dst[fi * oh * ow..(fi + 1) * oh * ow] {
                    *v += bv;
                }
            }
        }
    });
    Tensor::from_vec(vec![n, f, oh, ow], out)
}

/// Backward convolution.
///
/// * `dout`: `[n, f, oh, ow]`
/// * `weight`: `[f, c*kh*kw]`
/// * `x`: the forward input `[n, c, h, w]` (replaces the old saved
///   im2col matrices — the weight-gradient GEMM re-reads patches through
///   the fused pack)
///
/// Returns `(dx [n,c,h,w], dweight [f, c*kh*kw], dbias [f])`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_backward(
    dout: &Tensor,
    weight: &Tensor,
    x: &Tensor,
    g: ConvGeom,
) -> (Tensor, Tensor, Vec<f32>) {
    assert_eq!(dout.rank(), 4, "dout must be [n,f,oh,ow]");
    assert_eq!(x.rank(), 4, "conv input must be [n,c,h,w]");
    let n = dout.shape()[0];
    let f = dout.shape()[1];
    assert_eq!(x.shape()[0], n, "dout/input sample counts");
    assert_eq!(x.shape()[1..], [g.c, g.h, g.w], "conv input vs geom");
    let _span = conv_telemetry(n, f, g);
    let (oh, ow) = (g.oh(), g.ow());
    assert_eq!(dout.shape()[2..], [oh, ow], "dout spatial dims");
    let cr = g.col_rows();
    let cc = oh * ow;
    let mut dw = vec![0.0f32; f * cr];
    let mut db = vec![0.0f32; f];
    let mut dx = vec![0.0f32; n * g.c * g.h * g.w];
    let sample = g.c * g.h * g.w;
    // One task per sample: dx slices are disjoint direct writes; the
    // per-sample dW/db partials land in slots and are merged serially in
    // sample order below — the same accumulation order as a serial loop,
    // so the result is bit-identical at any thread count.
    let mut partials: Vec<Option<(Vec<f32>, Vec<f32>)>> = Vec::with_capacity(n);
    partials.resize_with(n, || None);
    pool::for_each_chunk_mut2(&mut dx, sample, &mut partials, 1, |i, dxi, slot| {
        let dy = &dout.data()[i * f * cc..(i + 1) * f * cc];
        let image = &x.data()[i * sample..(i + 1) * sample];
        // dW_i = dY · im2colᵀ, with the transposed column matrix gathered
        // by the pack instead of materialized.
        let mut dw_i = vec![0.0f32; f * cr];
        gemm_into(
            &mut dw_i,
            f,
            cr,
            cc,
            ASrc::RowMajor(dy),
            BSrc::Im2colT { image, geom: g },
        );
        // db_i = row sums of dY.
        let mut db_i = vec![0.0f32; f];
        for (fi, row) in dy.chunks_exact(cc).enumerate() {
            db_i[fi] = row.iter().sum::<f32>();
        }
        // dcol = Wᵀ · dY (the one per-sample buffer the backward pass
        // still materializes), then scatter back into the image gradient.
        let mut dcol = vec![0.0f32; cr * cc];
        gemm_into(
            &mut dcol,
            cr,
            cc,
            f,
            ASrc::ColMajor(weight.data()),
            BSrc::RowMajor(dy),
        );
        col2im_into(&dcol, g, dxi);
        slot[0] = Some((dw_i, db_i));
    });
    assert!(
        partials.iter().all(Option::is_some),
        "every sample task fills its gradient slot"
    );
    for (dw_i, db_i) in partials.into_iter().flatten() {
        for (d, p) in dw.iter_mut().zip(&dw_i) {
            *d += p;
        }
        for (d, p) in db.iter_mut().zip(&db_i) {
            *d += p;
        }
    }
    (
        Tensor::from_vec(vec![n, g.c, g.h, g.w], dx),
        Tensor::from_vec(vec![f, cr], dw),
        db,
    )
}

/// Max pooling over `[n, c, h, w]` with square window `size` and `stride`.
///
/// Returns `(output, argmax)` where `argmax[i]` is the flat input index that
/// produced output element `i` (needed for the backward pass).
///
/// # Panics
///
/// Panics if the input is not rank-4 or the window does not fit.
pub fn maxpool2d(x: &Tensor, size: usize, stride: usize) -> (Tensor, Vec<u32>) {
    assert_eq!(x.rank(), 4, "pool input must be [n,c,h,w]");
    let _span = Span::enter_with("pool", &[("bytes", (x.len() * 4) as f64)]);
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let oh = out_dim(h, size, stride, 0);
    let ow = out_dim(w, size, stride, 0);
    let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
    let mut arg = vec![0u32; n * c * oh * ow];
    let data = x.data();
    let plane = oh * ow;
    // One task per (n, c) plane; argmax stores absolute input indices, so
    // each task only needs its plane offset `nc`.
    pool::for_each_chunk_mut2(&mut out, plane, &mut arg, plane, |nc, po, pa| {
        let in_base = nc * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for ky in 0..size {
                    for kx in 0..size {
                        let idx = in_base + (oy * stride + ky) * w + (ox * stride + kx);
                        if data[idx] > best {
                            best = data[idx];
                            best_idx = idx;
                        }
                    }
                }
                po[oy * ow + ox] = best;
                pa[oy * ow + ox] = best_idx as u32;
            }
        }
    });
    (Tensor::from_vec(vec![n, c, oh, ow], out), arg)
}

/// Backward of [`maxpool2d`]: routes each output gradient to the input
/// element that won the max.
///
/// Parallelized by `(n, c)` plane: every argmax index from output plane
/// `p` points into input plane `p`, so per-plane scatters are disjoint and
/// keep the serial accumulation order within the plane.
pub fn maxpool2d_backward(dout: &Tensor, argmax: &[u32], input_shape: &[usize]) -> Tensor {
    assert_eq!(dout.len(), argmax.len(), "dout/argmax length mismatch");
    let _span = Span::enter_with("pool", &[("bytes", (dout.len() * 4) as f64)]);
    let mut dx = Tensor::zeros(input_shape.to_vec());
    let (h, w) = (input_shape[2], input_shape[3]);
    let nc = input_shape[0] * input_shape[1];
    assert_eq!(dout.len() % nc.max(1), 0, "dout planes");
    let out_plane = dout.len() / nc.max(1);
    pool::for_each_chunk_mut(dx.data_mut(), h * w, |p, plane| {
        let base = p * h * w;
        let lo = p * out_plane;
        for (&g, &idx) in dout.data()[lo..lo + out_plane]
            .iter()
            .zip(&argmax[lo..lo + out_plane])
        {
            plane[idx as usize - base] += g;
        }
    });
    dx
}

/// Global average pooling: `[n, c, h, w]` → `[n, c]`.
///
/// # Panics
///
/// Panics if the input is not rank-4.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 4, "pool input must be [n,c,h,w]");
    let _span = Span::enter_with("pool", &[("bytes", (x.len() * 4) as f64)]);
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let hw = (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    // Group whole planes per task so the chunking depends only on shape.
    let planes_per = ((1 << 15) / (h * w).max(1)).max(1);
    pool::for_each_chunk_mut(&mut out, planes_per, |ci, chunk| {
        let first = ci * planes_per;
        for (j, o) in chunk.iter_mut().enumerate() {
            let plane = &x.data()[(first + j) * h * w..(first + j + 1) * h * w];
            *o = plane.iter().sum::<f32>() / hw;
        }
    });
    Tensor::from_vec(vec![n, c], out)
}

/// Backward of [`global_avg_pool`]: spreads each `[n, c]` gradient uniformly
/// over the corresponding `h*w` plane.
pub fn global_avg_pool_backward(dout: &Tensor, input_shape: &[usize]) -> Tensor {
    assert_eq!(dout.rank(), 2, "dout must be [n,c]");
    let _span = Span::enter_with("pool", &[("bytes", (dout.len() * 4) as f64)]);
    let (h, w) = (input_shape[2], input_shape[3]);
    let hw = (h * w) as f32;
    let mut dx = Tensor::zeros(input_shape.to_vec());
    pool::for_each_chunk_mut(dx.data_mut(), h * w, |p, plane| {
        let v = dout.data()[p] / hw;
        for e in plane {
            *e = v;
        }
    });
    dx
}

/// Average pooling over `[n, c, h, w]` with square window `size`/`stride`.
pub fn avgpool2d(x: &Tensor, size: usize, stride: usize) -> Tensor {
    assert_eq!(x.rank(), 4, "pool input must be [n,c,h,w]");
    let _span = Span::enter_with("pool", &[("bytes", (x.len() * 4) as f64)]);
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let oh = out_dim(h, size, stride, 0);
    let ow = out_dim(w, size, stride, 0);
    let inv = 1.0 / (size * size) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let data = x.data();
    pool::for_each_chunk_mut(&mut out, oh * ow, |nc, po| {
        let in_base = nc * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..size {
                    for kx in 0..size {
                        acc += data[in_base + (oy * stride + ky) * w + (ox * stride + kx)];
                    }
                }
                po[oy * ow + ox] = acc * inv;
            }
        }
    });
    Tensor::from_vec(vec![n, c, oh, ow], out)
}

/// Backward of [`avgpool2d`].
pub fn avgpool2d_backward(
    dout: &Tensor,
    size: usize,
    stride: usize,
    input_shape: &[usize],
) -> Tensor {
    let _span = Span::enter_with("pool", &[("bytes", (dout.len() * 4) as f64)]);
    let (h, w) = (input_shape[2], input_shape[3]);
    let (oh, ow) = (dout.shape()[2], dout.shape()[3]);
    let inv = 1.0 / (size * size) as f32;
    let mut dx = Tensor::zeros(input_shape.to_vec());
    pool::for_each_chunk_mut(dx.data_mut(), h * w, |p, plane| {
        let out_base = p * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let g = dout.data()[out_base + oy * ow + ox] * inv;
                for ky in 0..size {
                    for kx in 0..size {
                        plane[(oy * stride + ky) * w + (ox * stride + kx)] += g;
                    }
                }
            }
        }
    });
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul;

    /// Direct (definition-based) convolution for cross-checking.
    fn naive_conv(x: &Tensor, w4: &Tensor, bias: Option<&[f32]>, g: ConvGeom) -> Tensor {
        let n = x.shape()[0];
        let f = w4.shape()[0];
        let (oh, ow) = (g.oh(), g.ow());
        let mut out = vec![0.0f32; n * f * oh * ow];
        for ni in 0..n {
            for fi in 0..f {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map(|b| b[fi]).unwrap_or(0.0);
                        for c in 0..g.c {
                            for ky in 0..g.kh {
                                for kx in 0..g.kw {
                                    let iy =
                                        (oy * g.stride + ky * g.dilation) as isize - g.pad as isize;
                                    let ix =
                                        (ox * g.stride + kx * g.dilation) as isize - g.pad as isize;
                                    if iy < 0 || ix < 0 || iy >= g.h as isize || ix >= g.w as isize
                                    {
                                        continue;
                                    }
                                    let xv = x.data()
                                        [((ni * g.c + c) * g.h + iy as usize) * g.w + ix as usize];
                                    let wv = w4.data()[((fi * g.c + c) * g.kh + ky) * g.kw + kx];
                                    acc += xv * wv;
                                }
                            }
                        }
                        out[((ni * f + fi) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        Tensor::from_vec(vec![n, f, oh, ow], out)
    }

    fn rand_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
        let mut state = seed.max(1);
        Tensor::from_fn(shape, |_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        })
    }

    #[test]
    fn out_dim_basics() {
        assert_eq!(out_dim(28, 3, 1, 1), 28);
        assert_eq!(out_dim(28, 2, 2, 0), 14);
        assert_eq!(out_dim(5, 3, 1, 0), 3);
        // A dilated 3-kernel spans 5 input cells.
        assert_eq!(out_dim_dilated(7, 3, 1, 0, 2), 3);
        assert_eq!(out_dim_dilated(28, 3, 1, 2, 2), 28);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        out_dim(5, 3, 0, 0);
    }

    #[test]
    #[should_panic(expected = "dilation must be positive")]
    fn zero_dilation_panics() {
        out_dim_dilated(5, 3, 1, 0, 0);
    }

    #[test]
    fn conv_matches_naive_no_pad() {
        let g = ConvGeom {
            c: 2,
            h: 6,
            w: 6,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 0,
            dilation: 1,
        };
        let x = rand_tensor(vec![2, 2, 6, 6], 1);
        let w4 = rand_tensor(vec![4, 2, 3, 3], 2);
        let wmat = w4.clone().reshape(vec![4, 18]);
        let bias = vec![0.1, -0.2, 0.3, 0.0];
        let y = conv2d_forward(&x, &wmat, Some(&bias), g);
        let r = naive_conv(&x, &w4, Some(&bias), g);
        for (a, b) in y.data().iter().zip(r.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn conv_matches_naive_with_pad_and_stride() {
        let g = ConvGeom {
            c: 3,
            h: 7,
            w: 5,
            kh: 3,
            kw: 3,
            stride: 2,
            pad: 1,
            dilation: 1,
        };
        let x = rand_tensor(vec![1, 3, 7, 5], 3);
        let w4 = rand_tensor(vec![2, 3, 3, 3], 4);
        let wmat = w4.clone().reshape(vec![2, 27]);
        let y = conv2d_forward(&x, &wmat, None, g);
        let r = naive_conv(&x, &w4, None, g);
        assert_eq!(y.shape(), r.shape());
        for (a, b) in y.data().iter().zip(r.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn dilated_conv_matches_naive() {
        let g = ConvGeom {
            c: 2,
            h: 9,
            w: 8,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 2,
            dilation: 2,
        };
        let x = rand_tensor(vec![2, 2, 9, 8], 11);
        let w4 = rand_tensor(vec![3, 2, 3, 3], 12);
        let wmat = w4.clone().reshape(vec![3, 18]);
        let y = conv2d_forward(&x, &wmat, None, g);
        let r = naive_conv(&x, &w4, None, g);
        assert_eq!(y.shape(), r.shape());
        for (a, b) in y.data().iter().zip(r.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn fused_forward_matches_materialized_im2col_bitwise() {
        let g = ConvGeom {
            c: 3,
            h: 8,
            w: 7,
            kh: 3,
            kw: 2,
            stride: 2,
            pad: 1,
            dilation: 1,
        };
        let x = rand_tensor(vec![2, 3, 8, 7], 21);
        let wmat = rand_tensor(vec![5, g.col_rows()], 22);
        let y = conv2d_forward(&x, &wmat, None, g);
        let sample = g.c * g.h * g.w;
        for i in 0..2 {
            let col = im2col(&x.data()[i * sample..(i + 1) * sample], g);
            let yi = matmul(&wmat, &col);
            let plane = g.col_cols() * 5;
            let got = &y.data()[i * plane..(i + 1) * plane];
            assert!(
                got.iter()
                    .zip(yi.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "fused sample {i} diverged from materialized lowering"
            );
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), c> == <x, col2im(c)> for all x, c (adjoint property).
        let g = ConvGeom {
            c: 2,
            h: 5,
            w: 4,
            kh: 3,
            kw: 2,
            stride: 1,
            pad: 1,
            dilation: 1,
        };
        let x = rand_tensor(vec![g.c * g.h * g.w], 5);
        let cmat = rand_tensor(vec![g.col_rows(), g.col_cols()], 6);
        let cx = im2col(x.data(), g);
        let lhs: f64 = cx
            .data()
            .iter()
            .zip(cmat.data())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        let back = col2im(&cmat, g);
        let rhs: f64 = x
            .data()
            .iter()
            .zip(&back)
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_backward_weight_grad_matches_finite_difference() {
        let g = ConvGeom {
            c: 1,
            h: 4,
            w: 4,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
            dilation: 1,
        };
        let x = rand_tensor(vec![1, 1, 4, 4], 7);
        let mut wmat = rand_tensor(vec![2, 9], 8);
        let loss = |w: &Tensor| -> f32 {
            let y = conv2d_forward(&x, w, None, g);
            y.data().iter().map(|v| v * v).sum::<f32>() * 0.5
        };
        let y = conv2d_forward(&x, &wmat, None, g);
        let (_, dw, _) = conv2d_backward(&y, &wmat, &x, g);
        let eps = 1e-3;
        for idx in [0usize, 4, 8, 13] {
            let orig = wmat.data()[idx];
            wmat.data_mut()[idx] = orig + eps;
            let lp = loss(&wmat);
            wmat.data_mut()[idx] = orig - eps;
            let lm = loss(&wmat);
            wmat.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dw.data()[idx]).abs() < 2e-2 * (1.0 + num.abs()),
                "idx {idx}: numeric {num} vs analytic {}",
                dw.data()[idx]
            );
        }
    }

    #[test]
    fn conv_backward_input_grad_matches_finite_difference() {
        let g = ConvGeom {
            c: 2,
            h: 4,
            w: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
            dilation: 1,
        };
        let mut x = rand_tensor(vec![1, 2, 4, 3], 9);
        let wmat = rand_tensor(vec![2, 18], 10);
        let loss = |x: &Tensor| -> f32 {
            let y = conv2d_forward(x, &wmat, None, g);
            y.data().iter().map(|v| v * v).sum::<f32>() * 0.5
        };
        let y = conv2d_forward(&x, &wmat, None, g);
        let (dx, _, _) = conv2d_backward(&y, &wmat, &x, g);
        let eps = 1e-3;
        for idx in [0usize, 5, 11, 23] {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let lp = loss(&x);
            x.data_mut()[idx] = orig - eps;
            let lm = loss(&x);
            x.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 2e-2 * (1.0 + num.abs()),
                "idx {idx}: numeric {num} vs analytic {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn dilated_conv_backward_matches_finite_difference() {
        let g = ConvGeom {
            c: 1,
            h: 7,
            w: 7,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 2,
            dilation: 2,
        };
        let mut x = rand_tensor(vec![1, 1, 7, 7], 31);
        let wmat = rand_tensor(vec![2, 9], 32);
        let loss = |x: &Tensor| -> f32 {
            let y = conv2d_forward(x, &wmat, None, g);
            y.data().iter().map(|v| v * v).sum::<f32>() * 0.5
        };
        let y = conv2d_forward(&x, &wmat, None, g);
        let (dx, dw, _) = conv2d_backward(&y, &wmat, &x, g);
        let eps = 1e-3;
        for idx in [0usize, 10, 24, 40] {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let lp = loss(&x);
            x.data_mut()[idx] = orig - eps;
            let lm = loss(&x);
            x.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{idx}]: numeric {num} vs analytic {}",
                dx.data()[idx]
            );
        }
        assert_eq!(dw.shape(), &[2, 9]);
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1., 2., 5., 3., //
                4., 0., 1., 2., //
                7., 8., 2., 1., //
                0., 3., 4., 9.,
            ],
        );
        let (y, arg) = maxpool2d(&x, 2, 2);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4., 5., 8., 9.]);
        let dout = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 1., 1., 1.]);
        let dx = maxpool2d_backward(&dout, &arg, &[1, 1, 4, 4]);
        assert_eq!(dx.data().iter().sum::<f32>(), 4.0);
        assert_eq!(dx.data()[4], 1.0); // the "4" won its window
        assert_eq!(dx.data()[15], 1.0); // the "9" won its window
    }

    #[test]
    fn avgpool_forward_and_backward() {
        let x = Tensor::from_fn(vec![1, 1, 4, 4], |i| i as f32);
        let y = avgpool2d(&x, 2, 2);
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
        let dout = Tensor::filled(vec![1, 1, 2, 2], 1.0);
        let dx = avgpool2d_backward(&dout, 2, 2, &[1, 1, 4, 4]);
        assert!(dx.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let x = Tensor::from_fn(vec![2, 3, 2, 2], |i| i as f32);
        let y = global_avg_pool(&x);
        assert_eq!(y.shape(), &[2, 3]);
        assert!((y.data()[0] - 1.5).abs() < 1e-6);
        let dx = global_avg_pool_backward(&y, &[2, 3, 2, 2]);
        assert_eq!(dx.shape(), &[2, 3, 2, 2]);
        assert!((dx.data()[0] - 1.5 / 4.0).abs() < 1e-6);
    }
}
