//! The dense row-major [`Tensor`] type.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A contiguous, row-major, dynamically-shaped `f32` tensor.
///
/// Invariant: `data.len() == shape.iter().product()`. A rank-0 tensor is not
/// supported; scalars are rank-1 tensors of length 1.
///
/// Payload bytes are registered with [`crate::alloc`] at construction and
/// released on drop, feeding the process-wide allocation high-water mark.
#[derive(PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Self::tracked(self.shape.clone(), self.data.clone())
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        crate::alloc::track_free(self.data.len() * 4);
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:?}, {:?}, ... ({} elems)]",
                self.data[0],
                self.data[1],
                self.data.len()
            )
        }
    }
}

impl Tensor {
    /// The single tracked constructor every other one funnels through.
    fn tracked(shape: Vec<usize>, data: Vec<f32>) -> Self {
        crate::alloc::track_alloc(data.len() * 4);
        Self { shape, data }
    }

    /// Creates a tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: Vec<usize>) -> Self {
        Self::filled(shape, 0.0)
    }

    /// Creates a tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn filled(shape: Vec<usize>, value: f32) -> Self {
        let n = checked_len(&shape);
        Self::tracked(shape, vec![value; n])
    }

    /// Creates a tensor from a flat `Vec` in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let n = checked_len(&shape);
        assert_eq!(
            n,
            data.len(),
            "shape {:?} implies {} elements but data has {}",
            shape,
            n,
            data.len()
        );
        Self::tracked(shape, data)
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: Vec<usize>, mut f: impl FnMut(usize) -> f32) -> Self {
        let n = checked_len(&shape);
        let data = (0..n).map(&mut f).collect();
        Self::tracked(shape, data)
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(mut self) -> Vec<f32> {
        let data = std::mem::take(&mut self.data);
        // `Drop` will see the emptied vec, so release the payload here.
        crate::alloc::track_free(data.len() * 4);
        data
    }

    /// Element at a 2-D position.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or the indices are out of bounds.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        let cols = self.shape[1];
        assert!(
            r < self.shape[0] && c < cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * cols + c]
    }

    /// Returns a copy with a new shape sharing the same data order.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Self {
        let n = checked_len(&shape);
        assert_eq!(
            n,
            self.data.len(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        self.shape = shape;
        self
    }

    /// Row `i` of a rank-2 tensor, as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape[1];
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Copies rows `[start, end)` of a rank-2 tensor into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or the range is out of bounds.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "slice_rows() requires a rank-2 tensor");
        assert!(
            start <= end && end <= self.shape[0],
            "bad row range {start}..{end}"
        );
        let cols = self.shape[1];
        Tensor::from_vec(
            vec![end - start, cols],
            self.data[start * cols..end * cols].to_vec(),
        )
    }

    /// Transpose of a rank-2 tensor (copying).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn t(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "t() requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec(vec![c, r], out)
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::tracked(
            self.shape.clone(),
            self.data.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip");
        Tensor::tracked(
            self.shape.clone(),
            self.data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// Elements per parallel chunk for [`Tensor::par_map`]/[`Tensor::par_zip`].
    /// Fixed (independent of the thread count), so the per-element work
    /// assignment — and therefore the result — is identical at any
    /// `DROPBACK_THREADS` value.
    const PAR_CHUNK: usize = 1 << 15;

    /// Like [`Tensor::map`], but distributed over the worker
    /// [`pool`](crate::pool) for large tensors. `f` must be pure (each
    /// element is computed exactly once, from its input alone), which is
    /// what makes the parallel result bit-identical to the serial one.
    pub fn par_map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = self.clone();
        let src = &self.data;
        crate::pool::for_each_chunk_mut(&mut out.data, Self::PAR_CHUNK, |ci, chunk| {
            let base = ci * Self::PAR_CHUNK;
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = f(src[base + j]);
            }
        });
        out
    }

    /// Like [`Tensor::zip`], but distributed over the worker
    /// [`pool`](crate::pool) for large tensors. Same purity requirement as
    /// [`Tensor::par_map`].
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn par_zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip");
        let mut out = self.clone();
        let (a, b) = (&self.data, &other.data);
        crate::pool::for_each_chunk_mut(&mut out.data, Self::PAR_CHUNK, |ci, chunk| {
            let base = ci * Self::PAR_CHUNK;
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = f(a[base + j], b[base + j]);
            }
        });
        out
    }

    /// Multiplies every element by `s`, in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns `self * s` elementwise.
    pub fn scaled(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// `self += alpha * other`, in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().cloned().fold(f32::INFINITY, f32::min)
    }

    /// Squared ℓ2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>() as f32
    }

    /// ℓ2 norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Per-row argmax of a rank-2 tensor (e.g. class predictions).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows() requires a rank-2 tensor");
        let cols = self.shape[1];
        self.data
            .chunks_exact(cols)
            .map(|row| {
                let mut best = 0usize;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Column-wise sum of a rank-2 tensor, returning shape `[cols]`
    /// (used for bias gradients).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_rows() requires a rank-2 tensor");
        let cols = self.shape[1];
        let mut out = vec![0.0f32; cols];
        for row in self.data.chunks_exact(cols) {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::from_vec(vec![cols], out)
    }
}

fn checked_len(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "tensors must have rank >= 1");
    assert!(
        shape.iter().all(|&d| d > 0),
        "zero-sized dimension in shape {shape:?}"
    );
    shape.iter().product()
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<&Tensor> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let t = Tensor::zeros(vec![2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&v| v == 0.0));
        let u = Tensor::filled(vec![4], 2.5);
        assert!(u.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    #[should_panic(expected = "rank >= 1")]
    fn empty_shape_panics() {
        Tensor::zeros(vec![]);
    }

    #[test]
    #[should_panic(expected = "zero-sized dimension")]
    fn zero_dim_panics() {
        Tensor::zeros(vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "implies 6 elements")]
    fn from_vec_len_mismatch_panics() {
        Tensor::from_vec(vec![2, 3], vec![1.0; 5]);
    }

    #[test]
    fn from_fn_indexes_flat() {
        let t = Tensor::from_fn(vec![2, 2], |i| i as f32);
        assert_eq!(t.data(), &[0., 1., 2., 3.]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(vec![2, 3], |i| i as f32).reshape(vec![3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[0., 1., 2., 3., 4., 5.]);
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let tt = t.t();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.data(), &[1., 4., 2., 5., 3., 6.]);
        assert_eq!(tt.t(), t);
    }

    #[test]
    fn row_and_slice_rows() {
        let t = Tensor::from_fn(vec![4, 3], |i| i as f32);
        assert_eq!(t.row(2), &[6., 7., 8.]);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.shape(), &[2, 3]);
        assert_eq!(s.data(), &[3., 4., 5., 6., 7., 8.]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(vec![3], vec![4., 5., 6.]);
        assert_eq!((&a + &b).data(), &[5., 7., 9.]);
        assert_eq!((&b - &a).data(), &[3., 3., 3.]);
        assert_eq!((&a * &b).data(), &[4., 10., 18.]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![2], vec![1., 1.]);
        let b = Tensor::from_vec(vec![2], vec![2., 4.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2., 3.]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![2, 2], vec![1., -2., 3., 4.]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 1.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -2.0);
        assert!((t.norm_sq() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let t = Tensor::from_vec(vec![2, 3], vec![0.1, 0.9, 0.5, 0.7, 0.7, 0.2]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn sum_rows_is_column_sum() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 10., 20., 30.]);
        assert_eq!(t.sum_rows().data(), &[11., 22., 33.]);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(vec![100]);
        let s = format!("{t:?}");
        assert!(s.contains("Tensor[100]"));
    }

    #[test]
    fn map_and_scale() {
        let mut t = Tensor::from_vec(vec![2], vec![1., -2.]);
        let m = t.map(|v| v.abs());
        assert_eq!(m.data(), &[1., 2.]);
        t.scale_inplace(3.0);
        assert_eq!(t.data(), &[3., -6.]);
        assert_eq!(t.scaled(-1.0).data(), &[-3., 6.]);
    }
}
