//! Numerically-stable activation and normalization primitives.

use crate::{pool, Tensor};

/// Elements per parallel chunk for the row-wise kernels. Rows are grouped
/// so each task covers roughly this many elements; the grouping depends
/// only on the tensor shape, never on the thread count.
const ROW_BLOCK_ELEMS: usize = 1 << 15;

/// Whole rows per parallel chunk for a rank-2 tensor with `cols` columns.
fn rows_per_chunk(cols: usize) -> usize {
    (ROW_BLOCK_ELEMS / cols.max(1)).max(1)
}

/// Row-wise softmax of a rank-2 tensor (max-subtracted for stability).
///
/// # Panics
///
/// Panics if `logits` is not rank-2.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.rank(), 2, "softmax_rows requires rank-2 input");
    let cols = logits.shape()[1];
    let mut out = logits.clone();
    let chunk = rows_per_chunk(cols) * cols.max(1);
    pool::for_each_chunk_mut(out.data_mut(), chunk, |_ci, block| {
        for row in block.chunks_mut(cols) {
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
            let inv = 1.0 / z;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    });
    out
}

/// Row-wise log-softmax of a rank-2 tensor.
///
/// # Panics
///
/// Panics if `logits` is not rank-2.
pub fn log_softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.rank(), 2, "log_softmax_rows requires rank-2 input");
    let cols = logits.shape()[1];
    let mut out = logits.clone();
    let chunk = rows_per_chunk(cols) * cols.max(1);
    pool::for_each_chunk_mut(out.data_mut(), chunk, |_ci, block| {
        for row in block.chunks_mut(cols) {
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let logz = row.iter().map(|v| (v - m).exp()).sum::<f32>().ln() + m;
            for v in row.iter_mut() {
                *v -= logz;
            }
        }
    });
    out
}

/// Mean cross-entropy loss and its logit gradient for one-hot labels.
///
/// Returns `(loss, dlogits)` where `dlogits = (softmax(logits) - onehot) / n`.
///
/// # Panics
///
/// Panics if shapes disagree or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.rank(), 2, "logits must be rank-2");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(n, labels.len(), "one label per row");
    let mut probs = softmax_rows(logits);
    let mut loss = 0.0f64;
    let inv_n = 1.0 / n as f32;
    for (i, (&label, row)) in labels
        .iter()
        .zip(probs.data_mut().chunks_exact_mut(c))
        .enumerate()
    {
        assert!(label < c, "label {label} out of range at row {i}");
        loss -= (row[label].max(1e-12) as f64).ln();
        row[label] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_n;
        }
    }
    ((loss / n as f64) as f32, probs)
}

/// ReLU applied elementwise.
pub fn relu(x: &Tensor) -> Tensor {
    x.par_map(|v| v.max(0.0))
}

/// ReLU backward: passes gradient where the *input* was positive.
pub fn relu_backward(dout: &Tensor, input: &Tensor) -> Tensor {
    dout.par_zip(input, |g, x| if x > 0.0 { g } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let s = softmax_rows(&t);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1, 3], vec![1000., 1001., 1002.]);
        let b = Tensor::from_vec(vec![1, 3], vec![0., 1., 2.]);
        let sa = softmax_rows(&a);
        let sb = softmax_rows(&b);
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![2, 4], vec![0.5, -1., 2., 0., 3., 3., 3., 3.]);
        let ls = log_softmax_rows(&t);
        let s = softmax_rows(&t);
        for (a, b) in ls.data().iter().zip(s.data()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        // Uniform logits over 4 classes: loss = ln(4).
        let t = Tensor::zeros(vec![3, 4]);
        let (loss, grad) = softmax_cross_entropy(&t, &[0, 1, 2]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for r in 0..3 {
            let sum: f32 = grad.row(r).iter().sum();
            assert!(sum.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let mut t = Tensor::from_vec(vec![2, 3], vec![0.2, -0.4, 0.7, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&t, &labels);
        let eps = 1e-3;
        for idx in 0..6 {
            let orig = t.data()[idx];
            t.data_mut()[idx] = orig + eps;
            let (lp, _) = softmax_cross_entropy(&t, &labels);
            t.data_mut()[idx] = orig - eps;
            let (lm, _) = softmax_cross_entropy(&t, &labels);
            t.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad.data()[idx]).abs() < 1e-3,
                "idx {idx}: {num} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    #[should_panic(expected = "label 7 out of range")]
    fn cross_entropy_bad_label_panics() {
        let t = Tensor::zeros(vec![1, 3]);
        softmax_cross_entropy(&t, &[7]);
    }

    #[test]
    fn relu_and_backward() {
        let x = Tensor::from_vec(vec![4], vec![-1., 0., 2., -3.]);
        assert_eq!(relu(&x).data(), &[0., 0., 2., 0.]);
        let dout = Tensor::filled(vec![4], 1.0);
        assert_eq!(relu_backward(&dout, &x).data(), &[0., 0., 1., 0.]);
    }
}
