//! Axis-wise reductions and shape surgery for rank-N tensors.
//!
//! The layer kernels mostly hand-roll their reductions for speed, but a
//! reusable substrate needs general axis operations; these are used by the
//! analysis code (per-channel statistics) and exposed for downstream users.

use crate::Tensor;

/// Sums over `axis`, removing that dimension
/// (`[a, b, c]`, axis 1 → `[a, c]`).
///
/// # Panics
///
/// Panics if `axis >= rank` or the tensor is rank-1 (reduce to a scalar
/// with [`Tensor::sum`] instead).
pub fn sum_axis(t: &Tensor, axis: usize) -> Tensor {
    reduce_axis(t, axis, 0.0, |acc, v| acc + v)
}

/// Means over `axis`, removing that dimension.
///
/// # Panics
///
/// Panics if `axis >= rank` or the tensor is rank-1.
pub fn mean_axis(t: &Tensor, axis: usize) -> Tensor {
    let n = t.shape()[axis] as f32;
    let mut out = sum_axis(t, axis);
    out.scale_inplace(1.0 / n);
    out
}

/// Maximum over `axis`, removing that dimension.
///
/// # Panics
///
/// Panics if `axis >= rank` or the tensor is rank-1.
pub fn max_axis(t: &Tensor, axis: usize) -> Tensor {
    reduce_axis(t, axis, f32::NEG_INFINITY, f32::max)
}

fn reduce_axis(t: &Tensor, axis: usize, init: f32, f: impl Fn(f32, f32) -> f32) -> Tensor {
    let shape = t.shape();
    assert!(axis < shape.len(), "axis {axis} out of range for {shape:?}");
    assert!(shape.len() >= 2, "use Tensor::sum for rank-1 reductions");
    let outer: usize = shape[..axis].iter().product();
    let mid = shape[axis];
    let inner: usize = shape[axis + 1..].iter().product();
    let mut out_shape: Vec<usize> = Vec::with_capacity(shape.len() - 1);
    out_shape.extend_from_slice(&shape[..axis]);
    out_shape.extend_from_slice(&shape[axis + 1..]);
    let mut out = vec![init; outer * inner];
    let data = t.data();
    for o in 0..outer {
        for m in 0..mid {
            let base = (o * mid + m) * inner;
            let out_base = o * inner;
            for i in 0..inner {
                out[out_base + i] = f(out[out_base + i], data[base + i]);
            }
        }
    }
    Tensor::from_vec(out_shape, out)
}

/// Concatenates tensors along `axis`; all other dimensions must match.
///
/// # Panics
///
/// Panics on empty input, rank/shape mismatch, or `axis >= rank`.
pub fn concat(tensors: &[&Tensor], axis: usize) -> Tensor {
    assert!(!tensors.is_empty(), "nothing to concatenate");
    let first = tensors[0].shape();
    assert!(axis < first.len(), "axis {axis} out of range");
    for t in tensors {
        assert_eq!(t.rank(), first.len(), "rank mismatch in concat");
        for (d, (a, b)) in t.shape().iter().zip(first).enumerate() {
            assert!(d == axis || a == b, "dim {d} mismatch in concat");
        }
    }
    let outer: usize = first[..axis].iter().product();
    let inner: usize = first[axis + 1..].iter().product();
    let total_mid: usize = tensors.iter().map(|t| t.shape()[axis]).sum();
    let mut out_shape = first.to_vec();
    out_shape[axis] = total_mid;
    let mut out = Vec::with_capacity(outer * total_mid * inner);
    for o in 0..outer {
        for t in tensors {
            let mid = t.shape()[axis];
            let chunk = mid * inner;
            out.extend_from_slice(&t.data()[o * chunk..(o + 1) * chunk]);
        }
    }
    Tensor::from_vec(out_shape, out)
}

/// Splits a tensor along `axis` at the given sizes (must sum to the axis
/// length). Inverse of [`concat`].
///
/// # Panics
///
/// Panics if sizes don't sum to the axis length or any size is zero.
pub fn split(t: &Tensor, axis: usize, sizes: &[usize]) -> Vec<Tensor> {
    let shape = t.shape();
    assert!(axis < shape.len(), "axis {axis} out of range");
    assert_eq!(
        sizes.iter().sum::<usize>(),
        shape[axis],
        "split sizes must sum to the axis length"
    );
    assert!(sizes.iter().all(|&s| s > 0), "zero-sized split piece");
    let outer: usize = shape[..axis].iter().product();
    let inner: usize = shape[axis + 1..].iter().product();
    let mid = shape[axis];
    let mut pieces: Vec<Vec<f32>> = sizes
        .iter()
        .map(|&s| Vec::with_capacity(outer * s * inner))
        .collect();
    let data = t.data();
    for o in 0..outer {
        let mut offset = 0usize;
        for (p, &s) in pieces.iter_mut().zip(sizes) {
            let base = (o * mid + offset) * inner;
            p.extend_from_slice(&data[base..base + s * inner]);
            offset += s;
        }
    }
    pieces
        .into_iter()
        .zip(sizes)
        .map(|(p, &s)| {
            let mut sh = shape.to_vec();
            sh[axis] = s;
            Tensor::from_vec(sh, p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t234() -> Tensor {
        Tensor::from_fn(vec![2, 3, 4], |i| i as f32)
    }

    #[test]
    fn sum_axis_middle() {
        let s = sum_axis(&t234(), 1);
        assert_eq!(s.shape(), &[2, 4]);
        // element (0,0): 0 + 4 + 8 = 12
        assert_eq!(s.data()[0], 12.0);
        // element (1,3): 15 + 19 + 23 = 57
        assert_eq!(s.data()[7], 57.0);
    }

    #[test]
    fn sum_axis_first_and_last() {
        let s0 = sum_axis(&t234(), 0);
        assert_eq!(s0.shape(), &[3, 4]);
        assert_eq!(s0.data()[0], 0.0 + 12.0);
        let s2 = sum_axis(&t234(), 2);
        assert_eq!(s2.shape(), &[2, 3]);
        assert_eq!(s2.data()[0], 0.0 + 1.0 + 2.0 + 3.0);
    }

    #[test]
    fn mean_and_max_axis() {
        let m = mean_axis(&t234(), 2);
        assert_eq!(m.data()[0], 1.5);
        let mx = max_axis(&t234(), 2);
        assert_eq!(mx.data()[0], 3.0);
        assert_eq!(mx.data()[5], 23.0);
    }

    #[test]
    fn axis_reductions_agree_with_total() {
        let t = t234();
        let via_axes = sum_axis(&sum_axis(&t, 0), 0).sum();
        assert!((via_axes - t.sum()).abs() < 1e-4);
    }

    #[test]
    fn concat_then_split_roundtrips() {
        let a = Tensor::from_fn(vec![2, 2, 3], |i| i as f32);
        let b = Tensor::from_fn(vec![2, 4, 3], |i| 100.0 + i as f32);
        let c = concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 6, 3]);
        let parts = split(&c, 1, &[2, 4]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn concat_axis0_is_stacking() {
        let a = Tensor::from_vec(vec![1, 2], vec![1., 2.]);
        let b = Tensor::from_vec(vec![2, 2], vec![3., 4., 5., 6.]);
        let c = concat(&[&a, &b], 0);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "dim 1 mismatch")]
    fn concat_shape_mismatch_panics() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 4]);
        concat(&[&a, &b], 0);
    }

    #[test]
    #[should_panic(expected = "must sum to the axis length")]
    fn split_bad_sizes_panics() {
        split(&t234(), 1, &[1, 1]);
    }
}
