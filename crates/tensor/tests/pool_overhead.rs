//! Zero-overhead pins for the worker pool, mirroring the telemetry
//! "zero overhead when off" test: instead of flaky timing assertions,
//! these tests prove via the pool's own engagement counters that the
//! cheap paths never touch the queue at all.
//!
//! This lives in its own integration-test binary (= its own process) so
//! no unrelated test can bump the process-global pool counters while a
//! delta is being measured.

use dropback_tensor::conv::{conv2d_backward, conv2d_forward, ConvGeom};
use dropback_tensor::{matmul, pool, Tensor};

fn counter(name: &str) -> u64 {
    dropback_telemetry::global().counter(name).get()
}

fn small_gemm() -> Tensor {
    let a = Tensor::from_fn(vec![8, 8], |i| i as f32 * 0.5);
    let b = Tensor::from_fn(vec![8, 8], |i| 1.0 - i as f32 * 0.25);
    matmul(&a, &b)
}

fn large_gemm() -> Tensor {
    // 150×300×550 clears PARALLEL_THRESHOLD and spans several MR-aligned
    // row chunks plus all three MC/KC/NC cache blocks of the packed path.
    let a = Tensor::from_fn(vec![150, 300], |i| (i % 97) as f32 * 0.01);
    let b = Tensor::from_fn(vec![300, 550], |i| (i % 89) as f32 * 0.02);
    matmul(&a, &b)
}

fn fused_conv_round_trip() -> Tensor {
    // Big enough that the per-sample partitioning would dispatch on a
    // multi-thread pool.
    let g = ConvGeom {
        c: 8,
        h: 16,
        w: 16,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
        dilation: 1,
    };
    let x = Tensor::from_fn(vec![4, 8, 16, 16], |i| (i % 23) as f32 * 0.05);
    let w = Tensor::from_fn(vec![8, g.col_rows()], |i| (i % 31) as f32 * 0.02);
    let y = conv2d_forward(&x, &w, None, g);
    let (dx, _dw, _db) = conv2d_backward(&y, &w, &x, g);
    dx
}

/// The whole matrix runs in one test fn: the counters are process-global,
/// so sub-cases must execute sequentially.
#[test]
fn cheap_paths_never_engage_the_pool() {
    // A 1-thread pool must behave exactly like serial code: no parallel
    // runs, no queued tasks, for any problem size.
    pool::set_threads(1);
    let before = (counter("pool.runs.parallel"), counter("pool.tasks"));
    let s = small_gemm();
    let l = large_gemm();
    let d = fused_conv_round_trip();
    assert!(s.data()[0].is_finite() && l.data()[0].is_finite() && d.data()[0].is_finite());
    let after = (counter("pool.runs.parallel"), counter("pool.tasks"));
    assert_eq!(
        before, after,
        "a 1-thread pool dispatched work to the queue"
    );

    // Small gemms sit below PARALLEL_THRESHOLD: even a multi-thread pool
    // must not pay dispatch cost for them.
    pool::set_threads(4);
    let before = (counter("pool.runs.parallel"), counter("pool.tasks"));
    for _ in 0..16 {
        let y = small_gemm();
        assert!(y.data()[0].is_finite());
    }
    let after = (counter("pool.runs.parallel"), counter("pool.tasks"));
    assert_eq!(before, after, "small gemms engaged the pool");

    // Sanity check that the counters do move when the pool is engaged —
    // otherwise the two assertions above would pass vacuously.
    let before_tasks = counter("pool.tasks");
    let mut data = vec![0.0f32; 4096];
    pool::for_each_chunk_mut(&mut data, 64, |i, c| c.fill(i as f32));
    assert!(
        counter("pool.tasks") > before_tasks,
        "engagement counters never move; the zero-overhead checks prove nothing"
    );
    pool::set_threads(1);
}
