//! Fused-im2col regression suite: the conv path that gathers patches
//! inside the GEMM pack must be bit-equal to the old materialized
//! `im2col` lowering, and must no longer allocate the column matrix.
//!
//! The reference path here *is* the old implementation, reconstructed from
//! public pieces: materialize `im2col`, then run the same packed GEMM
//! (`matmul` / `matmul_nt` / `matmul_tn`). Both paths feed identical
//! values through identical kernels in identical order, so equality is
//! exact bits — any divergence means the pack's coordinate mapping is
//! wrong.
//!
//! This lives in its own integration-test binary (= its own process) so
//! the allocation high-water-mark measurement is not polluted by
//! unrelated tests; tensors here are sized in MBs against KB-scale noise
//! from sibling tests in this binary.

use dropback_tensor::alloc;
use dropback_tensor::conv::{col2im, conv2d_backward, conv2d_forward, im2col, ConvGeom};
use dropback_tensor::{matmul, matmul_nt, matmul_tn, Tensor};

fn rand_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut state = seed.max(1);
    Tensor::from_fn(shape, |_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
    })
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx}: element {i} diverged ({g} vs {w})"
        );
    }
}

/// The old forward: materialize the column matrix, one GEMM per sample,
/// and — like the old `ConvCache` — retain every sample's cols for the
/// backward pass.
fn materialized_forward(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    g: ConvGeom,
) -> (Tensor, Vec<Tensor>) {
    let n = x.shape()[0];
    let f = w.shape()[0];
    let (oh, ow) = (g.oh(), g.ow());
    let sample = g.c * g.h * g.w;
    let mut out = Vec::with_capacity(n * f * oh * ow);
    let mut cols = Vec::with_capacity(n);
    for i in 0..n {
        let col = im2col(&x.data()[i * sample..(i + 1) * sample], g);
        let y = matmul(w, &col);
        cols.push(col);
        for fi in 0..f {
            for p in 0..oh * ow {
                let mut v = y.data()[fi * oh * ow + p];
                if let Some(b) = bias {
                    v += b[fi];
                }
                out.push(v);
            }
        }
    }
    (Tensor::from_vec(vec![n, f, oh, ow], out), cols)
}

/// The old backward: per-sample `dW += dY·colᵀ`, `dcol = Wᵀ·dY`,
/// `dx = col2im(dcol)`, partials summed in sample order, reading the
/// column matrices saved by the forward pass.
fn materialized_backward(
    dout: &Tensor,
    w: &Tensor,
    cols: &[Tensor],
    g: ConvGeom,
) -> (Tensor, Tensor, Vec<f32>) {
    let n = dout.shape()[0];
    let f = dout.shape()[1];
    let cc = g.col_cols();
    let sample = g.c * g.h * g.w;
    let mut dw = Tensor::zeros(vec![f, g.col_rows()]);
    let mut db = vec![0.0f32; f];
    let mut dx = Vec::with_capacity(n * sample);
    for (i, col) in cols.iter().enumerate() {
        let dy = Tensor::from_vec(
            vec![f, cc],
            dout.data()[i * f * cc..(i + 1) * f * cc].to_vec(),
        );
        dw.axpy(1.0, &matmul_nt(&dy, col));
        for (fi, row) in dy.data().chunks_exact(cc).enumerate() {
            db[fi] += row.iter().sum::<f32>();
        }
        let dcol = matmul_tn(w, &dy);
        dx.extend_from_slice(&col2im(&dcol, g));
    }
    (Tensor::from_vec(vec![n, g.c, g.h, g.w], dx), dw, db)
}

/// Geometries covering the stride/pad/dilation edges and microkernel
/// tile straddling (f and oh·ow not multiples of 6/16).
fn edge_geometries() -> Vec<(usize, usize, ConvGeom)> {
    vec![
        // (n, f, geom)
        (
            2,
            5,
            ConvGeom {
                c: 3,
                h: 8,
                w: 7,
                kh: 3,
                kw: 3,
                stride: 1,
                pad: 1,
                dilation: 1,
            },
        ),
        (
            1,
            7,
            ConvGeom {
                c: 2,
                h: 9,
                w: 9,
                kh: 3,
                kw: 3,
                stride: 2,
                pad: 0,
                dilation: 1,
            },
        ),
        (
            3,
            4,
            ConvGeom {
                c: 1,
                h: 6,
                w: 11,
                kh: 2,
                kw: 4,
                stride: 2,
                pad: 2,
                dilation: 1,
            },
        ),
        (
            2,
            6,
            ConvGeom {
                c: 2,
                h: 11,
                w: 10,
                kh: 3,
                kw: 3,
                stride: 1,
                pad: 2,
                dilation: 2,
            },
        ),
        (
            1,
            3,
            ConvGeom {
                c: 2,
                h: 13,
                w: 7,
                kh: 3,
                kw: 2,
                stride: 2,
                pad: 1,
                dilation: 3,
            },
        ),
        (
            2,
            17,
            ConvGeom {
                c: 4,
                h: 1,
                w: 23,
                kh: 1,
                kw: 3,
                stride: 1,
                pad: 1,
                dilation: 1,
            },
        ),
    ]
}

#[test]
fn fused_forward_is_bit_equal_to_materialized_path() {
    for (idx, (n, f, g)) in edge_geometries().into_iter().enumerate() {
        let x = rand_tensor(vec![n, g.c, g.h, g.w], 100 + idx as u64);
        let w = rand_tensor(vec![f, g.col_rows()], 200 + idx as u64);
        let bias: Vec<f32> = (0..f).map(|i| (i as f32) * 0.3 - 0.5).collect();
        for b in [None, Some(&bias[..])] {
            let fused = conv2d_forward(&x, &w, b, g);
            let (reference, _cols) = materialized_forward(&x, &w, b, g);
            assert_eq!(fused.shape(), reference.shape());
            assert_bits_eq(
                fused.data(),
                reference.data(),
                &format!("geometry {idx} (bias {})", b.is_some()),
            );
        }
    }
}

#[test]
fn fused_backward_is_bit_equal_to_materialized_path() {
    for (idx, (n, f, g)) in edge_geometries().into_iter().enumerate() {
        let x = rand_tensor(vec![n, g.c, g.h, g.w], 300 + idx as u64);
        let w = rand_tensor(vec![f, g.col_rows()], 400 + idx as u64);
        let dout = rand_tensor(vec![n, f, g.oh(), g.ow()], 500 + idx as u64);
        let (dx, dw, db) = conv2d_backward(&dout, &w, &x, g);
        let (_y, cols) = materialized_forward(&x, &w, None, g);
        let (dx_r, dw_r, db_r) = materialized_backward(&dout, &w, &cols, g);
        assert_bits_eq(dx.data(), dx_r.data(), &format!("geometry {idx} dx"));
        assert_bits_eq(dw.data(), dw_r.data(), &format!("geometry {idx} dw"));
        assert_bits_eq(&db, &db_r, &format!("geometry {idx} db"));
    }
}

#[test]
fn fused_conv_no_longer_allocates_the_column_matrix() {
    // c=16, k=3 → the column matrix is 9× the input plane. Over 8 samples
    // the old path retained n·(c·kh·kw)·(oh·ow) floats of cols — the
    // dominant allocation by far. The fused path's tracked allocations are
    // only the output, dx, and gradient tensors.
    let g = ConvGeom {
        c: 16,
        h: 32,
        w: 32,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
        dilation: 1,
    };
    let (n, f) = (8usize, 8usize);
    let cols_bytes = (n * g.col_rows() * g.col_cols() * 4) as u64; // ~4.7 MB
    let x = rand_tensor(vec![n, g.c, g.h, g.w], 61);
    let w = rand_tensor(vec![f, g.col_rows()], 62);

    // Fused path peak, relative to the live total at phase start.
    let live_before = alloc::live_bytes();
    alloc::reset_hwm();
    let y = conv2d_forward(&x, &w, None, g);
    let (dx, dw, _db) = conv2d_backward(&y, &w, &x, g);
    let fused_peak = alloc::hwm_bytes().saturating_sub(live_before);
    drop((y, dx, dw));

    // The same workload through the materialized lowering, cols retained
    // from forward to backward as the old ConvCache did.
    let live_before = alloc::live_bytes();
    alloc::reset_hwm();
    let (y, cols) = materialized_forward(&x, &w, None, g);
    let (dx, dw, _db) = materialized_backward(&y, &w, &cols, g);
    let materialized_peak = alloc::hwm_bytes().saturating_sub(live_before);
    drop((y, cols, dx, dw));

    // The fused peak must come in under the column matrix's own footprint
    // (generous slack: sibling tests in this binary allocate KBs, and even
    // one retained sample's cols would blow the bound).
    assert!(
        fused_peak < cols_bytes * 3 / 4,
        "fused conv peaked at {fused_peak} bytes — the ~{cols_bytes}-byte \
         column matrix appears to still be materialized"
    );
    assert!(
        fused_peak + cols_bytes / 4 < materialized_peak,
        "fused peak {fused_peak} not clearly below materialized peak \
         {materialized_peak} (cols ≈ {cols_bytes})"
    );
}
