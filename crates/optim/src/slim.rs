//! Network slimming (Liu et al. 2017) — the train-prune-retrain baseline.
//!
//! Training phase: SGD plus an L1 subgradient penalty on every batch-norm
//! scale (γ). Pruning phase: the lowest-|γ| fraction of channels is masked
//! (γ and β forced to zero). Fine-tuning phase: SGD continues with the
//! masked channels pinned at zero. This reproduces the *effect* of
//! structural channel removal without rebuilding tensors (DESIGN.md notes
//! the substitution); compression is reported over the masked channels'
//! incident weights.

use crate::Optimizer;
use dropback_nn::{ParamRange, ParamStore};

/// Which phase the slimming schedule is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// SGD + L1-on-γ.
    Sparsify,
    /// After pruning: SGD with masked channels pinned to zero.
    FineTune,
}

/// The network-slimming training rule.
///
/// Construct with the γ ranges of every batch-norm in the model (see
/// [`dropback_nn::BatchNorm::gamma_range`]), train, then call
/// [`NetworkSlimming::prune`] at the configured epoch (or drive it via
/// [`Optimizer::end_epoch`] with [`NetworkSlimming::prune_at_epoch`]).
#[derive(Debug, Clone)]
pub struct NetworkSlimming {
    gamma_ranges: Vec<ParamRange>,
    l1: f32,
    prune_fraction: f32,
    prune_at_epoch: Option<usize>,
    masked: Vec<usize>,
    phase: Phase,
}

impl NetworkSlimming {
    /// Creates the rule with L1 strength `l1` and channel `prune_fraction`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < prune_fraction < 1` and `l1 >= 0`.
    pub fn new(gamma_ranges: Vec<ParamRange>, l1: f32, prune_fraction: f32) -> Self {
        assert!(
            prune_fraction > 0.0 && prune_fraction < 1.0,
            "prune fraction must be in (0, 1)"
        );
        assert!(l1 >= 0.0, "l1 strength must be non-negative");
        Self {
            gamma_ranges,
            l1,
            prune_fraction,
            prune_at_epoch: None,
            masked: Vec::new(),
            phase: Phase::Sparsify,
        }
    }

    /// Schedules the prune for the end of epoch `epoch` (0-indexed).
    pub fn prune_at_epoch(mut self, epoch: usize) -> Self {
        self.prune_at_epoch = Some(epoch);
        self
    }

    /// Whether the prune has happened.
    pub fn is_pruned(&self) -> bool {
        self.phase == Phase::FineTune
    }

    /// Global parameter indices of masked γ entries.
    pub fn masked_channels(&self) -> &[usize] {
        &self.masked
    }

    /// Masks the lowest-|γ| `prune_fraction` of channels across all BN
    /// layers (global threshold, as in the original paper) and enters the
    /// fine-tune phase.
    pub fn prune(&mut self, ps: &mut ParamStore) {
        let mut gammas: Vec<(usize, f32)> = Vec::new();
        for r in &self.gamma_ranges {
            for i in r.start()..r.end() {
                gammas.push((i, ps.params()[i].abs()));
            }
        }
        gammas.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let cut = ((self.prune_fraction * gammas.len() as f32).round() as usize)
            .min(gammas.len().saturating_sub(1));
        self.masked = gammas[..cut].iter().map(|&(i, _)| i).collect();
        for &i in &self.masked {
            ps.params_mut()[i] = 0.0;
        }
        self.phase = Phase::FineTune;
    }

    /// Fraction of BN channels masked so far.
    pub fn channel_sparsity(&self) -> f32 {
        let total: usize = self.gamma_ranges.iter().map(|r| r.len()).sum();
        if total == 0 {
            0.0
        } else {
            self.masked.len() as f32 / total as f32
        }
    }
}

impl Optimizer for NetworkSlimming {
    fn step(&mut self, ps: &mut ParamStore, lr: f32) {
        if self.phase == Phase::Sparsify && self.l1 > 0.0 {
            // L1 subgradient on γ.
            for r in &self.gamma_ranges {
                let (params, _) = ps.params_and_grads_mut(r);
                let signs: Vec<f32> = params.iter().map(|&g| g.signum()).collect();
                let scaled: Vec<f32> = signs.iter().map(|s| s * self.l1).collect();
                ps.accumulate_grad(r, &scaled);
            }
        }
        let (params, grads) = ps.update_view();
        for (p, &g) in params.iter_mut().zip(grads) {
            *p -= lr * g;
        }
        if self.phase == Phase::FineTune {
            // Pinned channels stay dead during fine-tuning.
            let params = ps.params_mut();
            for &i in &self.masked {
                params[i] = 0.0;
            }
        }
    }

    fn end_epoch(&mut self, epoch: usize, ps: &mut ParamStore) {
        if self.phase == Phase::Sparsify {
            if let Some(pe) = self.prune_at_epoch {
                if epoch + 1 >= pe {
                    self.prune(ps);
                }
            }
        }
    }

    fn name(&self) -> &str {
        "network-slimming"
    }

    /// Structural-compression estimate: removing a fraction `f` of channels
    /// removes roughly the same fraction of incident conv weights, so the
    /// stored count is `total × (1 − channel_sparsity)`. (The original
    /// paper rebuilds smaller tensors; our masked substitute keeps the
    /// dense layout but the *shippable* model is the compacted one.)
    fn stored_weights(&self, ps: &ParamStore) -> usize {
        let keep = 1.0 - self.channel_sparsity();
        ((ps.len() as f32 * keep).round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_nn::InitScheme;

    fn store_with_bn() -> (ParamStore, Vec<ParamRange>) {
        let mut ps = ParamStore::new(1);
        ps.register("conv.weight", 8, InitScheme::lecun_normal(4));
        let g1 = ps.register("bn1.gamma", 4, InitScheme::Constant(1.0));
        ps.register("bn1.beta", 4, InitScheme::Constant(0.0));
        let g2 = ps.register("bn2.gamma", 4, InitScheme::Constant(1.0));
        (ps, vec![g1, g2])
    }

    #[test]
    fn l1_shrinks_gammas() {
        let (mut ps, gammas) = store_with_bn();
        let mut slim = NetworkSlimming::new(gammas.clone(), 0.1, 0.5);
        for _ in 0..10 {
            ps.zero_grads();
            slim.step(&mut ps, 0.1);
        }
        for r in &gammas {
            for &g in ps.slice(r) {
                assert!(g < 1.0, "γ should shrink under L1, got {g}");
            }
        }
    }

    #[test]
    fn prune_masks_lowest_gammas() {
        let (mut ps, gammas) = store_with_bn();
        // Handcraft γ values: bn1 = [0.9, 0.01, 0.8, 0.02], bn2 = [1,1,1,0.03]
        let r1 = gammas[0].clone();
        let r2 = gammas[1].clone();
        ps.params_mut()[r1.start()..r1.end()].copy_from_slice(&[0.9, 0.01, 0.8, 0.02]);
        ps.params_mut()[r2.start()..r2.end()].copy_from_slice(&[1.0, 1.0, 1.0, 0.03]);
        let mut slim = NetworkSlimming::new(gammas, 0.0, 0.375); // 3 of 8
        slim.prune(&mut ps);
        assert!(slim.is_pruned());
        assert_eq!(slim.masked_channels().len(), 3);
        assert_eq!(ps.params()[r1.start() + 1], 0.0);
        assert_eq!(ps.params()[r1.start() + 3], 0.0);
        assert_eq!(ps.params()[r2.start() + 3], 0.0);
        assert!((slim.channel_sparsity() - 0.375).abs() < 1e-6);
    }

    #[test]
    fn finetune_keeps_masked_channels_dead() {
        let (mut ps, gammas) = store_with_bn();
        let r1 = gammas[0].clone();
        let mut slim = NetworkSlimming::new(gammas, 0.0, 0.5);
        slim.prune(&mut ps);
        // Big gradient on a masked γ must not revive it.
        ps.zero_grads();
        ps.accumulate_grad(&r1, &[5.0, 5.0, 5.0, 5.0]);
        slim.step(&mut ps, 0.5);
        for &i in slim.masked_channels() {
            assert_eq!(ps.params()[i], 0.0);
        }
    }

    #[test]
    fn end_epoch_triggers_prune() {
        let (mut ps, gammas) = store_with_bn();
        let mut slim = NetworkSlimming::new(gammas, 0.01, 0.25).prune_at_epoch(2);
        slim.end_epoch(0, &mut ps);
        assert!(!slim.is_pruned());
        slim.end_epoch(1, &mut ps);
        assert!(slim.is_pruned());
    }
}
