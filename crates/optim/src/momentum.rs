//! Stateful optimizers (momentum SGD, Adam) with training-memory
//! accounting.
//!
//! The paper trains everything with *momentum-free* SGD because "all other
//! optimization strategies cost significant extra memory" (§3): momentum
//! stores one extra f32 per weight, Adam two. These implementations exist
//! to quantify that claim — [`Optimizer::stored_weights`] here counts the
//! optimizer state against the weight budget, and the
//! `repro_ablation_optimizers` binary compares the budget-equalized
//! accuracy of each rule.

use crate::{OptState, Optimizer, StateError, StateField};
use dropback_nn::ParamStore;

/// SGD with classical momentum: `v ← µ·v + g; w ← w − lr·v`.
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    momentum: f32,
    velocity: Vec<f32>,
}

impl SgdMomentum {
    /// Creates the rule with momentum coefficient `momentum`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= momentum < 1`.
    pub fn new(momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            momentum,
            velocity: Vec::new(),
        }
    }

    /// The momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Extra f32 state per weight (1 for momentum).
    pub const STATE_PER_WEIGHT: usize = 1;
}

impl Optimizer for SgdMomentum {
    fn step(&mut self, ps: &mut ParamStore, lr: f32) {
        if self.velocity.len() != ps.len() {
            self.velocity = vec![0.0; ps.len()];
        }
        let (params, grads) = ps.update_view();
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *p -= lr * *v;
        }
    }

    fn name(&self) -> &str {
        "sgd-momentum"
    }

    fn stored_weights(&self, ps: &ParamStore) -> usize {
        // Weights + one velocity word per weight.
        ps.len() * (1 + Self::STATE_PER_WEIGHT)
    }

    fn snapshot_state(&self) -> OptState {
        OptState::new(self.name())
            .with(
                "momentum_bits",
                StateField::U64(self.momentum.to_bits() as u64),
            )
            .with("velocity", StateField::F32s(self.velocity.clone()))
    }

    fn restore_state(&mut self, state: &OptState) -> Result<(), StateError> {
        state.expect_name(self.name())?;
        state.expect_u64("momentum_bits", self.momentum.to_bits() as u64)?;
        self.velocity = state.f32s("velocity")?.to_vec();
        Ok(())
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates Adam with the standard `(0.9, 0.999, 1e-8)` hyperparameters.
    pub fn new() -> Self {
        Self::with_betas(0.9, 0.999)
    }

    /// Creates Adam with explicit betas.
    ///
    /// # Panics
    ///
    /// Panics unless both betas are in `[0, 1)`.
    pub fn with_betas(beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        Self {
            beta1,
            beta2,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Extra f32 state per weight (first and second moments).
    pub const STATE_PER_WEIGHT: usize = 2;
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Adam {
    fn step(&mut self, ps: &mut ParamStore, lr: f32) {
        if self.m.len() != ps.len() {
            self.m = vec![0.0; ps.len()];
            self.v = vec![0.0; ps.len()];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (params, grads) = ps.update_view();
        for (((p, &g), m), v) in params
            .iter_mut()
            .zip(grads)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *p -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn name(&self) -> &str {
        "adam"
    }

    fn stored_weights(&self, ps: &ParamStore) -> usize {
        ps.len() * (1 + Self::STATE_PER_WEIGHT)
    }

    fn snapshot_state(&self) -> OptState {
        OptState::new(self.name())
            .with("beta1_bits", StateField::U64(self.beta1.to_bits() as u64))
            .with("beta2_bits", StateField::U64(self.beta2.to_bits() as u64))
            .with("t", StateField::U64(self.t))
            .with("m", StateField::F32s(self.m.clone()))
            .with("v", StateField::F32s(self.v.clone()))
    }

    fn restore_state(&mut self, state: &OptState) -> Result<(), StateError> {
        state.expect_name(self.name())?;
        state.expect_u64("beta1_bits", self.beta1.to_bits() as u64)?;
        state.expect_u64("beta2_bits", self.beta2.to_bits() as u64)?;
        self.t = state.u64("t")?;
        self.m = state.f32s("m")?.to_vec();
        self.v = state.f32s("v")?.to_vec();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_nn::InitScheme;

    fn quadratic_store() -> ParamStore {
        let mut ps = ParamStore::new(1);
        ps.register("w", 4, InitScheme::Constant(2.0));
        ps
    }

    /// One gradient step on f(w) = 0.5 w² (grad = w).
    fn grad_step(ps: &mut ParamStore, opt: &mut impl Optimizer, lr: f32) {
        ps.zero_grads();
        let g: Vec<f32> = ps.params().to_vec();
        let r = ps.ranges()[0].clone();
        ps.accumulate_grad(&r, &g);
        opt.step(ps, lr);
    }

    #[test]
    fn momentum_accelerates_on_a_quadratic() {
        let mut plain = quadratic_store();
        let mut with_mom = quadratic_store();
        let mut sgd = crate::Sgd::new();
        let mut mom = SgdMomentum::new(0.9);
        for _ in 0..10 {
            grad_step(&mut plain, &mut sgd, 0.05);
            grad_step(&mut with_mom, &mut mom, 0.05);
        }
        // Momentum should have moved farther toward 0.
        assert!(with_mom.params()[0].abs() < plain.params()[0].abs());
    }

    #[test]
    fn momentum_memory_cost_is_double() {
        let mut ps = quadratic_store();
        let mut mom = SgdMomentum::new(0.9);
        grad_step(&mut ps, &mut mom, 0.1);
        assert_eq!(mom.stored_weights(&ps), 8); // 4 weights + 4 velocities
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        let mut ps = quadratic_store();
        let mut adam = Adam::new();
        for _ in 0..300 {
            grad_step(&mut ps, &mut adam, 0.05);
        }
        assert!(ps.params()[0].abs() < 0.05, "{}", ps.params()[0]);
    }

    #[test]
    fn adam_memory_cost_is_triple() {
        let mut ps = quadratic_store();
        let mut adam = Adam::new();
        grad_step(&mut ps, &mut adam, 0.1);
        assert_eq!(adam.stored_weights(&ps), 12);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ~lr regardless of
        // gradient scale.
        let mut ps = quadratic_store();
        let mut adam = Adam::new();
        grad_step(&mut ps, &mut adam, 0.1);
        let moved = 2.0 - ps.params()[0];
        assert!((moved - 0.1).abs() < 1e-3, "moved {moved}");
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn bad_momentum_panics() {
        SgdMomentum::new(1.0);
    }

    #[test]
    fn momentum_state_round_trips_bit_exactly() {
        let mut ps_a = quadratic_store();
        let mut ps_b = quadratic_store();
        let mut a = SgdMomentum::new(0.9);
        let mut b = SgdMomentum::new(0.9);
        for _ in 0..5 {
            grad_step(&mut ps_a, &mut a, 0.05);
            grad_step(&mut ps_b, &mut b, 0.05);
        }
        let mut b2 = SgdMomentum::new(0.9);
        b2.restore_state(&b.snapshot_state()).unwrap();
        for _ in 0..5 {
            grad_step(&mut ps_a, &mut a, 0.05);
            grad_step(&mut ps_b, &mut b2, 0.05);
        }
        assert_eq!(ps_a.params(), ps_b.params());
        // A different momentum coefficient refuses the snapshot.
        assert!(SgdMomentum::new(0.8)
            .restore_state(&a.snapshot_state())
            .is_err());
    }

    #[test]
    fn adam_state_round_trips_bit_exactly() {
        let mut ps_a = quadratic_store();
        let mut ps_b = quadratic_store();
        let mut a = Adam::new();
        let mut b = Adam::new();
        for _ in 0..7 {
            grad_step(&mut ps_a, &mut a, 0.05);
            grad_step(&mut ps_b, &mut b, 0.05);
        }
        let mut b2 = Adam::new();
        b2.restore_state(&b.snapshot_state()).unwrap();
        for _ in 0..7 {
            grad_step(&mut ps_a, &mut a, 0.05);
            grad_step(&mut ps_b, &mut b2, 0.05);
        }
        assert_eq!(ps_a.params(), ps_b.params());
        assert!(Adam::with_betas(0.5, 0.999)
            .restore_state(&a.snapshot_state())
            .is_err());
    }
}
