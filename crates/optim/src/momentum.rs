//! Stateful optimizers (momentum SGD, Adam) with training-memory
//! accounting.
//!
//! The paper trains everything with *momentum-free* SGD because "all other
//! optimization strategies cost significant extra memory" (§3): momentum
//! stores one extra f32 per weight, Adam two. These implementations exist
//! to quantify that claim — [`Optimizer::stored_weights`] here counts the
//! optimizer state against the weight budget, and the
//! `repro_ablation_optimizers` binary compares the budget-equalized
//! accuracy of each rule.

use crate::Optimizer;
use dropback_nn::ParamStore;

/// SGD with classical momentum: `v ← µ·v + g; w ← w − lr·v`.
#[derive(Debug, Clone)]
pub struct SgdMomentum {
    momentum: f32,
    velocity: Vec<f32>,
}

impl SgdMomentum {
    /// Creates the rule with momentum coefficient `momentum`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= momentum < 1`.
    pub fn new(momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            momentum,
            velocity: Vec::new(),
        }
    }

    /// The momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Extra f32 state per weight (1 for momentum).
    pub const STATE_PER_WEIGHT: usize = 1;
}

impl Optimizer for SgdMomentum {
    fn step(&mut self, ps: &mut ParamStore, lr: f32) {
        if self.velocity.len() != ps.len() {
            self.velocity = vec![0.0; ps.len()];
        }
        let (params, grads) = ps.update_view();
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *p -= lr * *v;
        }
    }

    fn name(&self) -> &str {
        "sgd-momentum"
    }

    fn stored_weights(&self, ps: &ParamStore) -> usize {
        // Weights + one velocity word per weight.
        ps.len() * (1 + Self::STATE_PER_WEIGHT)
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates Adam with the standard `(0.9, 0.999, 1e-8)` hyperparameters.
    pub fn new() -> Self {
        Self::with_betas(0.9, 0.999)
    }

    /// Creates Adam with explicit betas.
    ///
    /// # Panics
    ///
    /// Panics unless both betas are in `[0, 1)`.
    pub fn with_betas(beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        Self {
            beta1,
            beta2,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Extra f32 state per weight (first and second moments).
    pub const STATE_PER_WEIGHT: usize = 2;
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Adam {
    fn step(&mut self, ps: &mut ParamStore, lr: f32) {
        if self.m.len() != ps.len() {
            self.m = vec![0.0; ps.len()];
            self.v = vec![0.0; ps.len()];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (params, grads) = ps.update_view();
        for (((p, &g), m), v) in params
            .iter_mut()
            .zip(grads)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *p -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn name(&self) -> &str {
        "adam"
    }

    fn stored_weights(&self, ps: &ParamStore) -> usize {
        ps.len() * (1 + Self::STATE_PER_WEIGHT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_nn::InitScheme;

    fn quadratic_store() -> ParamStore {
        let mut ps = ParamStore::new(1);
        ps.register("w", 4, InitScheme::Constant(2.0));
        ps
    }

    /// One gradient step on f(w) = 0.5 w² (grad = w).
    fn grad_step(ps: &mut ParamStore, opt: &mut impl Optimizer, lr: f32) {
        ps.zero_grads();
        let g: Vec<f32> = ps.params().to_vec();
        let r = ps.ranges()[0].clone();
        ps.accumulate_grad(&r, &g);
        opt.step(ps, lr);
    }

    #[test]
    fn momentum_accelerates_on_a_quadratic() {
        let mut plain = quadratic_store();
        let mut with_mom = quadratic_store();
        let mut sgd = crate::Sgd::new();
        let mut mom = SgdMomentum::new(0.9);
        for _ in 0..10 {
            grad_step(&mut plain, &mut sgd, 0.05);
            grad_step(&mut with_mom, &mut mom, 0.05);
        }
        // Momentum should have moved farther toward 0.
        assert!(with_mom.params()[0].abs() < plain.params()[0].abs());
    }

    #[test]
    fn momentum_memory_cost_is_double() {
        let mut ps = quadratic_store();
        let mut mom = SgdMomentum::new(0.9);
        grad_step(&mut ps, &mut mom, 0.1);
        assert_eq!(mom.stored_weights(&ps), 8); // 4 weights + 4 velocities
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        let mut ps = quadratic_store();
        let mut adam = Adam::new();
        for _ in 0..300 {
            grad_step(&mut ps, &mut adam, 0.05);
        }
        assert!(ps.params()[0].abs() < 0.05, "{}", ps.params()[0]);
    }

    #[test]
    fn adam_memory_cost_is_triple() {
        let mut ps = quadratic_store();
        let mut adam = Adam::new();
        grad_step(&mut ps, &mut adam, 0.1);
        assert_eq!(adam.stored_weights(&ps), 12);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ~lr regardless of
        // gradient scale.
        let mut ps = quadratic_store();
        let mut adam = Adam::new();
        grad_step(&mut ps, &mut adam, 0.1);
        let moved = 2.0 - ps.params()[0];
        assert!((moved - 0.1).abs() < 1e-3, "moved {moved}");
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn bad_momentum_panics() {
        SgdMomentum::new(1.0);
    }
}
