//! Serializable optimizer state for crash-safe training.
//!
//! A resumable checkpoint must round-trip the *optimizer's* accumulators —
//! the tracked map, momentum velocities, step counters — bit-for-bit, or a
//! resumed run diverges from an uninterrupted one on the first step after
//! restore. [`OptState`] is the neutral carrier: an ordered list of named
//! fields, each one of a small set of shapes ([`StateField`]), captured by
//! [`crate::Optimizer::snapshot_state`] and re-applied by
//! [`crate::Optimizer::restore_state`].
//!
//! The field list is a `Vec`, not a map, so snapshot order is exactly the
//! order the optimizer pushed — serialization downstream is deterministic
//! without any sorting step, and the `dropback-lint` `hash-iteration` rule
//! stays happy by construction.

use std::fmt;

/// One named piece of optimizer state.
///
/// Floats are always round-tripped through their IEEE-754 bits, never
/// through text, so a snapshot/restore cycle is exact.
#[derive(Debug, Clone, PartialEq)]
pub enum StateField {
    /// A scalar counter, flag, or f32-as-bits configuration value.
    U64(u64),
    /// A dense per-weight vector (momentum velocity, Adam moments, ...).
    F32s(Vec<f32>),
    /// A sparse index → value map in ascending index order (the tracked
    /// set of [`crate::SparseDropBack`]).
    Pairs(Vec<(u64, f32)>),
    /// A dense boolean mask (the tracked mask of [`crate::DropBack`]).
    Bools(Vec<bool>),
}

impl StateField {
    /// Short shape name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            StateField::U64(_) => "u64",
            StateField::F32s(_) => "f32s",
            StateField::Pairs(_) => "pairs",
            StateField::Bools(_) => "bools",
        }
    }
}

/// Why a [`crate::Optimizer::restore_state`] call was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum StateError {
    /// Snapshot was taken from a different optimizer.
    NameMismatch {
        /// The optimizer asked to restore.
        expected: String,
        /// The optimizer named in the snapshot.
        found: String,
    },
    /// A field the optimizer needs is absent from the snapshot.
    Missing(&'static str),
    /// A field exists but with the wrong [`StateField`] shape.
    WrongType {
        /// Field name.
        field: &'static str,
        /// Shape the optimizer expected.
        expected: &'static str,
        /// Shape found in the snapshot.
        found: &'static str,
    },
    /// A configuration value baked into the snapshot (budget `k`, freeze
    /// epoch, momentum coefficient) disagrees with the constructed
    /// optimizer — resuming would silently train a different rule.
    ConfigMismatch {
        /// Field name.
        field: &'static str,
        /// Value of the constructed optimizer.
        expected: u64,
        /// Value in the snapshot.
        found: u64,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::NameMismatch { expected, found } => write!(
                f,
                "optimizer state is for {found:?}, cannot restore into {expected:?}"
            ),
            StateError::Missing(field) => write!(f, "optimizer state field {field:?} is missing"),
            StateError::WrongType {
                field,
                expected,
                found,
            } => write!(
                f,
                "optimizer state field {field:?} has shape {found}, expected {expected}"
            ),
            StateError::ConfigMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "optimizer config {field:?} mismatch: snapshot has {found}, \
                 constructed optimizer has {expected}; resume with the original settings"
            ),
        }
    }
}

impl std::error::Error for StateError {}

/// A snapshot of one optimizer's mutable state (plus the configuration
/// values needed to validate a restore).
#[derive(Debug, Clone, PartialEq)]
pub struct OptState {
    name: String,
    fields: Vec<(String, StateField)>,
}

impl OptState {
    /// Creates an empty snapshot tagged with the optimizer's name.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// The optimizer name this snapshot was captured from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fields in capture order.
    pub fn fields(&self) -> &[(String, StateField)] {
        &self.fields
    }

    /// Appends a field (capture order is serialization order).
    pub fn push(&mut self, name: &str, field: StateField) {
        self.fields.push((name.to_string(), field));
    }

    /// Builder-style [`OptState::push`].
    pub fn with(mut self, name: &str, field: StateField) -> Self {
        self.push(name, field);
        self
    }

    fn lookup(&self, name: &'static str) -> Result<&StateField, StateError> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f)
            .ok_or(StateError::Missing(name))
    }

    /// Reads a scalar field.
    pub fn u64(&self, name: &'static str) -> Result<u64, StateError> {
        match self.lookup(name)? {
            StateField::U64(v) => Ok(*v),
            other => Err(StateError::WrongType {
                field: name,
                expected: "u64",
                found: other.kind(),
            }),
        }
    }

    /// Reads a dense float vector field.
    pub fn f32s(&self, name: &'static str) -> Result<&[f32], StateError> {
        match self.lookup(name)? {
            StateField::F32s(v) => Ok(v),
            other => Err(StateError::WrongType {
                field: name,
                expected: "f32s",
                found: other.kind(),
            }),
        }
    }

    /// Reads a sparse index/value field.
    pub fn pairs(&self, name: &'static str) -> Result<&[(u64, f32)], StateError> {
        match self.lookup(name)? {
            StateField::Pairs(v) => Ok(v),
            other => Err(StateError::WrongType {
                field: name,
                expected: "pairs",
                found: other.kind(),
            }),
        }
    }

    /// Reads a boolean mask field.
    pub fn bools(&self, name: &'static str) -> Result<&[bool], StateError> {
        match self.lookup(name)? {
            StateField::Bools(v) => Ok(v),
            other => Err(StateError::WrongType {
                field: name,
                expected: "bools",
                found: other.kind(),
            }),
        }
    }

    /// Rejects a snapshot captured from a different optimizer.
    pub fn expect_name(&self, expected: &str) -> Result<(), StateError> {
        if self.name == expected {
            Ok(())
        } else {
            Err(StateError::NameMismatch {
                expected: expected.to_string(),
                found: self.name.clone(),
            })
        }
    }

    /// Validates that a configuration scalar in the snapshot matches the
    /// constructed optimizer's value.
    pub fn expect_u64(&self, name: &'static str, expected: u64) -> Result<(), StateError> {
        let found = self.u64(name)?;
        if found == expected {
            Ok(())
        } else {
            Err(StateError::ConfigMismatch {
                field: name,
                expected,
                found,
            })
        }
    }

    /// The largest index referenced by any sparse field, for bounds
    /// validation against a parameter store before the indices are used.
    pub fn max_pair_index(&self) -> Option<u64> {
        self.fields
            .iter()
            .filter_map(|(_, f)| match f {
                StateField::Pairs(v) => v.iter().map(|&(i, _)| i).max(),
                _ => None,
            })
            .max()
    }
}

/// Encodes an optional epoch (e.g. `freeze_after`) as a u64 scalar;
/// `None` becomes `u64::MAX`, which no realistic epoch budget reaches.
pub(crate) fn encode_opt_epoch(v: Option<usize>) -> u64 {
    match v {
        Some(e) => e as u64,
        None => u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_getters_round_trip() {
        let s = OptState::new("x")
            .with("a", StateField::U64(7))
            .with("b", StateField::F32s(vec![1.5, -2.0]))
            .with("c", StateField::Pairs(vec![(3, 0.5)]))
            .with("d", StateField::Bools(vec![true, false]));
        assert_eq!(s.u64("a").unwrap(), 7);
        assert_eq!(s.f32s("b").unwrap(), &[1.5, -2.0]);
        assert_eq!(s.pairs("c").unwrap(), &[(3, 0.5)]);
        assert_eq!(s.bools("d").unwrap(), &[true, false]);
        assert_eq!(s.max_pair_index(), Some(3));
    }

    #[test]
    fn missing_and_wrong_type_are_reported() {
        let s = OptState::new("x").with("a", StateField::U64(7));
        assert_eq!(s.u64("nope"), Err(StateError::Missing("nope")));
        assert!(matches!(
            s.f32s("a"),
            Err(StateError::WrongType {
                field: "a",
                expected: "f32s",
                found: "u64",
            })
        ));
    }

    #[test]
    fn name_and_config_validation() {
        let s = OptState::new("sgd").with("k", StateField::U64(10));
        assert!(s.expect_name("sgd").is_ok());
        assert!(matches!(
            s.expect_name("adam"),
            Err(StateError::NameMismatch { .. })
        ));
        assert!(s.expect_u64("k", 10).is_ok());
        assert!(matches!(
            s.expect_u64("k", 11),
            Err(StateError::ConfigMismatch {
                field: "k",
                expected: 11,
                found: 10,
            })
        ));
    }

    #[test]
    fn opt_epoch_encoding() {
        assert_eq!(encode_opt_epoch(None), u64::MAX);
        assert_eq!(encode_opt_epoch(Some(3)), 3);
    }

    #[test]
    fn errors_render_actionable_messages() {
        let e = StateError::ConfigMismatch {
            field: "k",
            expected: 5,
            found: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains("snapshot has 9"));
        assert!(msg.contains("resume with the original settings"));
    }
}
