//! Plain stochastic gradient descent.

use crate::{OptState, Optimizer, StateError};
use dropback_nn::ParamStore;

/// Momentum-free SGD — the paper's baseline training rule ("all other
/// optimization strategies cost significant extra memory").
#[derive(Debug, Clone, Copy, Default)]
pub struct Sgd;

impl Sgd {
    /// Creates the optimizer.
    pub fn new() -> Self {
        Self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, ps: &mut ParamStore, lr: f32) {
        let (params, grads) = ps.update_view();
        for (p, &g) in params.iter_mut().zip(grads) {
            *p -= lr * g;
        }
    }

    fn name(&self) -> &str {
        "sgd"
    }

    // SGD is stateless: the snapshot carries only the name tag, and a
    // restore merely validates that the snapshot really is an SGD one.
    fn snapshot_state(&self) -> OptState {
        OptState::new(self.name())
    }

    fn restore_state(&mut self, state: &OptState) -> Result<(), StateError> {
        state.expect_name(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_nn::InitScheme;

    #[test]
    fn step_applies_update() {
        let mut ps = ParamStore::new(1);
        let r = ps.register("w", 3, InitScheme::Constant(1.0));
        ps.accumulate_grad(&r, &[1.0, -2.0, 0.0]);
        Sgd::new().step(&mut ps, 0.1);
        let p = ps.slice(&r);
        assert!((p[0] - 0.9).abs() < 1e-6);
        assert!((p[1] - 1.2).abs() < 1e-6);
        assert!((p[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stores_all_weights() {
        let mut ps = ParamStore::new(1);
        ps.register("w", 10, InitScheme::Constant(0.0));
        assert_eq!(Sgd::new().stored_weights(&ps), 10);
    }

    #[test]
    fn state_round_trip_is_empty_and_validated() {
        let sgd = Sgd::new();
        let state = sgd.snapshot_state();
        assert_eq!(state.name(), "sgd");
        assert!(state.fields().is_empty());
        assert!(Sgd::new().restore_state(&state).is_ok());
        // A foreign snapshot is rejected, not silently ignored.
        let foreign = crate::OptState::new("adam");
        assert!(Sgd::new().restore_state(&foreign).is_err());
    }
}
