//! KL annealing for variational-dropout training.

/// Linear KL warm-up: the KL weight ramps from 0 to `max_scale` over
/// `warmup_epochs`, the standard trick that lets variational dropout first
/// fit the data and then sparsify.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KlAnneal {
    warmup_epochs: usize,
    max_scale: f32,
}

impl KlAnneal {
    /// Creates a schedule reaching `max_scale` after `warmup_epochs`.
    ///
    /// # Panics
    ///
    /// Panics if `max_scale < 0`.
    pub fn new(warmup_epochs: usize, max_scale: f32) -> Self {
        assert!(max_scale >= 0.0, "negative KL scale");
        Self {
            warmup_epochs,
            max_scale,
        }
    }

    /// KL weight at `epoch` (0-indexed).
    pub fn at(&self, epoch: usize) -> f32 {
        if self.warmup_epochs == 0 {
            return self.max_scale;
        }
        let t = ((epoch + 1) as f32 / self.warmup_epochs as f32).min(1.0);
        t * self.max_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramps_linearly() {
        let a = KlAnneal::new(10, 1.0);
        assert!((a.at(0) - 0.1).abs() < 1e-6);
        assert!((a.at(4) - 0.5).abs() < 1e-6);
        assert_eq!(a.at(9), 1.0);
        assert_eq!(a.at(50), 1.0);
    }

    #[test]
    fn zero_warmup_is_constant() {
        let a = KlAnneal::new(0, 0.3);
        assert_eq!(a.at(0), 0.3);
    }
}
