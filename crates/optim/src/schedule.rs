//! Learning-rate schedules.

/// A learning-rate schedule evaluated per epoch.
///
/// The paper uses an initial rate of 0.4 decayed by 0.5× — four times over
/// 100 epochs on MNIST, and every 25 epochs on CIFAR-10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant(
        /// The rate.
        f32,
    ),
    /// `initial * factor^(epoch / every)` (integer division).
    StepDecay {
        /// Rate at epoch 0.
        initial: f32,
        /// Multiplicative decay factor (e.g. 0.5).
        factor: f32,
        /// Epochs between decays (e.g. 25).
        every: usize,
    },
}

impl LrSchedule {
    /// The paper's MNIST schedule: 0.4, halved four times over `epochs`.
    pub fn paper_mnist(epochs: usize) -> Self {
        LrSchedule::StepDecay {
            initial: 0.4,
            factor: 0.5,
            every: (epochs / 5).max(1),
        }
    }

    /// The paper's CIFAR schedule: 0.4 decayed 0.5× every 25 epochs.
    pub fn paper_cifar() -> Self {
        LrSchedule::StepDecay {
            initial: 0.4,
            factor: 0.5,
            every: 25,
        }
    }

    /// Learning rate for `epoch` (0-indexed).
    pub fn at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay {
                initial,
                factor,
                every,
            } => initial * factor.powi((epoch / every.max(1)) as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.1);
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(99), 0.1);
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay {
            initial: 0.4,
            factor: 0.5,
            every: 25,
        };
        assert_eq!(s.at(0), 0.4);
        assert_eq!(s.at(24), 0.4);
        assert_eq!(s.at(25), 0.2);
        assert_eq!(s.at(75), 0.05);
    }

    #[test]
    fn paper_mnist_decays_four_times() {
        let s = LrSchedule::paper_mnist(100);
        assert_eq!(s.at(0), 0.4);
        assert!((s.at(99) - 0.4 * 0.5f32.powi(4)).abs() < 1e-6);
    }
}
