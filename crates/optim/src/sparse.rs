//! Explicitly-sparse DropBack: the storage-footprint demonstration.
//!
//! [`crate::DropBack`] keeps the whole dense parameter vector around (the
//! layers read it), but the algorithm only ever *needs* the `k` tracked
//! values — everything else is `init(i)`, recomputable from the seed. This
//! module makes that claim concrete: [`SparseDropBack`] holds the tracked
//! weights in a `BTreeMap<usize, f32>` of size ≤ `k`, and *reconstructs* the
//! dense vector each step from the map plus regeneration. Tests assert the
//! reconstruction is bit-identical to the dense implementation, which is
//! the paper's "only needs enough weight memory to store the unpruned
//! weights" in executable form.
//!
//! The tracked map is a `BTreeMap` — not a `HashMap` — on purpose: its
//! iteration order is the index order, so every walk over the tracked set
//! (frozen updates, checkpoint capture, metrics) is reproducible across
//! runs and the `regen(seed, index)` replay contract stays bit-exact. The
//! `dropback-lint` `hash-iteration` rule enforces this mechanically.

use crate::state::encode_opt_epoch;
use crate::topk::top_k_mask_sharded;
use crate::{OptState, Optimizer, StateError, StateField};
use dropback_nn::ParamStore;
use dropback_telemetry::Span;
use dropback_tensor::pool;
use std::collections::BTreeMap;

/// Elements per parallel chunk for the score and reconstruction sweeps
/// (fixed, thread-count-independent — same contract as the dense rule).
const CHUNK: usize = 1 << 14;

/// DropBack with the tracked set held in an actual sparse map.
#[derive(Debug, Clone)]
pub struct SparseDropBack {
    k: usize,
    freeze_after: Option<usize>,
    frozen: bool,
    /// The only persistent weight storage: tracked index → current value.
    tracked: BTreeMap<usize, f32>,
    epoch_swaps: usize,
    last_epoch_churn: usize,
    steps: u64,
}

impl SparseDropBack {
    /// Creates a sparse DropBack rule with budget `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "must track at least one weight");
        Self {
            k,
            freeze_after: None,
            frozen: false,
            tracked: BTreeMap::new(),
            epoch_swaps: 0,
            last_epoch_churn: 0,
            steps: 0,
        }
    }

    /// Freezes the tracked set at the end of epoch `epoch` (0-indexed).
    pub fn freeze_after(mut self, epoch: usize) -> Self {
        self.freeze_after = Some(epoch);
        self
    }

    /// Bytes of weight storage actually used (`8 + 4` per entry for a
    /// index+value pair, ignoring map overhead) — the quantity the paper's
    /// compression columns measure.
    pub fn storage_entries(&self) -> usize {
        self.tracked.len()
    }

    /// The tracked map (index → value), iterating in index order.
    pub fn tracked(&self) -> &BTreeMap<usize, f32> {
        &self.tracked
    }

    /// Total swaps over the most recently finished epoch (updated by
    /// [`Optimizer::end_epoch`]).
    pub fn epoch_churn(&self) -> usize {
        self.last_epoch_churn
    }
}

impl Optimizer for SparseDropBack {
    fn step(&mut self, ps: &mut ParamStore, lr: f32) {
        let n = ps.len();
        let seed = ps.seed();
        let ranges: Vec<_> = ps.ranges().to_vec();
        if self.frozen {
            // Only tracked entries update; dense vector rebuilt below.
            let grads = ps.grads().to_vec();
            for (&i, w) in self.tracked.iter_mut() {
                *w -= lr * grads[i];
            }
        } else {
            let mask = {
                let _rank_span = Span::enter("topk-rank");
                // Scores: tracked displacement vs untracked current gradient.
                // Walking range-by-range keeps the per-index init scheme in
                // hand without a per-index range search.
                let mut scores = vec![0.0f32; n];
                let tracked = &self.tracked;
                let grads = ps.grads();
                for r in &ranges {
                    let scheme = r.scheme();
                    let start = r.start();
                    pool::for_each_chunk_mut(&mut scores[start..r.end()], CHUNK, |ci, chunk| {
                        let base = start + ci * CHUNK;
                        for (j, s) in chunk.iter_mut().enumerate() {
                            let i = base + j;
                            *s = match tracked.get(&i) {
                                Some(&w) => (w - scheme.value(seed, i as u64)).abs(),
                                None => (lr * grads[i]).abs(),
                            };
                        }
                    });
                }
                top_k_mask_sharded(&scores, self.k)
            };
            let grads = ps.grads().to_vec();
            let mut next: BTreeMap<usize, f32> = BTreeMap::new();
            for r in &ranges {
                let scheme = r.scheme();
                for i in r.start()..r.end() {
                    if mask[i] {
                        if !self.tracked.contains_key(&i) {
                            self.epoch_swaps += 1;
                        }
                        let w = self
                            .tracked
                            .get(&i)
                            .copied()
                            .unwrap_or_else(|| scheme.value(seed, i as u64));
                        next.insert(i, w - lr * grads[i]);
                    }
                }
            }
            self.tracked = next;
        }
        // Reconstruct the dense view for the next forward pass: tracked
        // values from the map, everything else regenerated.
        {
            let _regen_span = Span::enter("regen");
            let tracked = &self.tracked;
            for r in &ranges {
                let scheme = r.scheme();
                let start = r.start();
                let params = ps.params_mut();
                pool::for_each_chunk_mut(&mut params[start..r.end()], CHUNK, |ci, chunk| {
                    let base = start + ci * CHUNK;
                    for (j, p) in chunk.iter_mut().enumerate() {
                        let i = base + j;
                        *p = match tracked.get(&i) {
                            Some(&w) => w,
                            None => scheme.value(seed, i as u64),
                        };
                    }
                });
            }
        }
        self.steps += 1;
    }

    fn end_epoch(&mut self, epoch: usize, _ps: &mut ParamStore) {
        self.last_epoch_churn = self.epoch_swaps;
        self.epoch_swaps = 0;
        if let Some(fe) = self.freeze_after {
            if epoch + 1 >= fe {
                self.frozen = true;
            }
        }
    }

    fn name(&self) -> &str {
        "dropback-sparse"
    }

    fn stored_weights(&self, ps: &ParamStore) -> usize {
        self.k.min(ps.len())
    }

    fn metrics(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("tracked_k", self.tracked.len() as f64),
            ("churn", self.last_epoch_churn as f64),
            ("frozen", if self.frozen { 1.0 } else { 0.0 }),
        ]
    }

    fn snapshot_state(&self) -> OptState {
        // BTreeMap iteration is index-ascending, so the pairs field is
        // canonical without sorting — the same property the checkpoint
        // serializer relies on.
        let tracked: Vec<(u64, f32)> = self.tracked.iter().map(|(&i, &w)| (i as u64, w)).collect();
        OptState::new(self.name())
            .with("k", StateField::U64(self.k as u64))
            .with(
                "freeze_after",
                StateField::U64(encode_opt_epoch(self.freeze_after)),
            )
            .with("frozen", StateField::U64(u64::from(self.frozen)))
            .with("steps", StateField::U64(self.steps))
            .with("epoch_swaps", StateField::U64(self.epoch_swaps as u64))
            .with(
                "last_epoch_churn",
                StateField::U64(self.last_epoch_churn as u64),
            )
            .with("tracked", StateField::Pairs(tracked))
    }

    fn restore_state(&mut self, state: &OptState) -> Result<(), StateError> {
        state.expect_name(self.name())?;
        state.expect_u64("k", self.k as u64)?;
        state.expect_u64("freeze_after", encode_opt_epoch(self.freeze_after))?;
        self.frozen = state.u64("frozen")? != 0;
        self.steps = state.u64("steps")?;
        self.epoch_swaps = state.u64("epoch_swaps")? as usize;
        self.last_epoch_churn = state.u64("last_epoch_churn")? as usize;
        self.tracked = state
            .pairs("tracked")?
            .iter()
            .map(|&(i, w)| (i as usize, w))
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DropBack;
    use dropback_nn::InitScheme;
    use dropback_prng::Xorshift64;

    /// Drives dense and sparse DropBack through identical random gradient
    /// sequences and asserts bit-identical parameter trajectories.
    #[test]
    fn sparse_matches_dense_bit_exactly() {
        let make_store = || {
            let mut ps = ParamStore::new(11);
            ps.register("a", 40, InitScheme::lecun_normal(8));
            ps.register("bn", 8, InitScheme::Constant(1.0));
            ps
        };
        let mut dense_ps = make_store();
        let mut sparse_ps = make_store();
        let mut dense = DropBack::new(12).freeze_after(3);
        let mut sparse = SparseDropBack::new(12).freeze_after(3);
        let mut rng = Xorshift64::new(5);
        for epoch in 0..5 {
            for _ in 0..10 {
                let grads: Vec<f32> = (0..48).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
                for (ps, opt) in [
                    (&mut dense_ps, &mut dense as &mut dyn Optimizer),
                    (&mut sparse_ps, &mut sparse as &mut dyn Optimizer),
                ] {
                    ps.zero_grads();
                    let r0 = ps.ranges()[0].clone();
                    let r1 = ps.ranges()[1].clone();
                    ps.accumulate_grad(&r0, &grads[..40]);
                    ps.accumulate_grad(&r1, &grads[40..]);
                    opt.step(ps, 0.1);
                }
                assert_eq!(
                    dense_ps.params(),
                    sparse_ps.params(),
                    "divergence at epoch {epoch}"
                );
            }
            dense.end_epoch(epoch, &mut dense_ps);
            sparse.end_epoch(epoch, &mut sparse_ps);
        }
        assert!(dense.is_frozen());
        assert!(sparse.storage_entries() <= 12);
    }

    #[test]
    fn storage_never_exceeds_budget() {
        let mut ps = ParamStore::new(3);
        let r = ps.register("w", 100, InitScheme::lecun_normal(10));
        let mut opt = SparseDropBack::new(7);
        let mut rng = Xorshift64::new(9);
        for _ in 0..20 {
            ps.zero_grads();
            let grads: Vec<f32> = (0..100).map(|_| rng.next_f32() - 0.5).collect();
            ps.accumulate_grad(&r, &grads);
            opt.step(&mut ps, 0.3);
            assert!(opt.storage_entries() <= 7);
        }
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let mut ps_a = ParamStore::new(13);
        ps_a.register("w", 30, InitScheme::lecun_normal(6));
        let mut ps_b = ps_a.clone();
        let mut a = SparseDropBack::new(6).freeze_after(2);
        let mut b = SparseDropBack::new(6).freeze_after(2);
        let mut rng = Xorshift64::new(21);
        let mut grads = Vec::new();
        for _ in 0..8 {
            grads.push((0..30).map(|_| rng.next_f32() - 0.5).collect::<Vec<f32>>());
        }
        let feed = |ps: &mut ParamStore, g: &[f32]| {
            ps.zero_grads();
            let r = ps.ranges()[0].clone();
            ps.accumulate_grad(&r, g);
        };
        for (t, g) in grads.iter().take(4).enumerate() {
            feed(&mut ps_a, g);
            a.step(&mut ps_a, 0.1);
            feed(&mut ps_b, g);
            b.step(&mut ps_b, 0.1);
            if t == 1 {
                a.end_epoch(0, &mut ps_a);
                b.end_epoch(0, &mut ps_b);
            }
        }
        let snap = b.snapshot_state();
        let mut b2 = SparseDropBack::new(6).freeze_after(2);
        b2.restore_state(&snap).unwrap();
        assert_eq!(b2.tracked(), b.tracked());
        for g in grads.iter().skip(4) {
            feed(&mut ps_a, g);
            a.step(&mut ps_a, 0.1);
            feed(&mut ps_b, g);
            b2.step(&mut ps_b, 0.1);
        }
        assert_eq!(ps_a.params(), ps_b.params());
        assert_eq!(a.tracked(), b2.tracked());
    }

    #[test]
    fn restore_rejects_foreign_or_misconfigured_snapshots() {
        let snap = SparseDropBack::new(4).snapshot_state();
        assert!(SparseDropBack::new(4).restore_state(&snap).is_ok());
        assert!(SparseDropBack::new(5).restore_state(&snap).is_err());
        assert!(DropBack::new(4).restore_state(&snap).is_err());
    }

    #[test]
    fn dense_view_untracked_equals_regen() {
        let mut ps = ParamStore::new(3);
        let r = ps.register("w", 50, InitScheme::lecun_normal(10));
        let mut opt = SparseDropBack::new(5);
        ps.accumulate_grad(&r, &[0.5; 50]);
        opt.step(&mut ps, 0.1);
        for i in 0..50 {
            if !opt.tracked().contains_key(&i) {
                assert_eq!(ps.params()[i], ps.init_value(i));
            }
        }
    }
}
