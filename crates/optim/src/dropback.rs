//! The DropBack training rule (Algorithm 1 of the paper).

use crate::state::encode_opt_epoch;
use crate::topk::top_k_mask_sharded;
use crate::{OptState, Optimizer, StateError, StateField};
use dropback_nn::ParamStore;
use dropback_telemetry::Span;
use dropback_tensor::pool;

/// Elements per parallel chunk for the score/update/regen sweeps. Fixed
/// (never derived from the thread count), so the per-element work
/// assignment is identical at any `DROPBACK_THREADS` value.
const CHUNK: usize = 1 << 14;

/// DropBack: continuous pruning during training.
///
/// Following Algorithm 1, each step ranks every weight by an
/// *accumulated-gradient* score and keeps only the top `k` updated:
///
/// * a **tracked** weight's score is `|w − w₀|` — its total accumulated
///   update, recomputed from `W(t−1) − W(0)`, which is why the tracked
///   set "requires no storage" beyond the weights themselves;
/// * an **untracked** weight competes with its current `|lr · g|` (the
///   displacement it would have after entering).
///
/// The top-`k` scores become the new tracked set (`λ = S_k`,
/// `mask = 1(S > λ)`, ties broken by index). Tracked weights take the SGD
/// update `w -= lr · g`; untracked weights are **regenerated to their
/// initialization values** — the invariant `untracked ⇒ w[i] == init(i)`
/// holds after every step, so only `k` weights ever need storing (see
/// [`crate::SparseDropBack`] for the explicitly-sparse demonstration).
///
/// After [`DropBack::freeze_after`] epochs the tracked set is fixed and
/// untracked gradients stop participating (§2.1: "Freeze the set of tracked
/// weights after a few epochs").
#[derive(Debug, Clone)]
pub struct DropBack {
    k: usize,
    freeze_after: Option<usize>,
    frozen: bool,
    zero_untracked: bool,
    mask: Vec<bool>,
    scores: Vec<f32>,
    last_swaps: usize,
    epoch_swaps: usize,
    last_epoch_churn: usize,
    steps: u64,
}

impl DropBack {
    /// Creates a DropBack rule tracking at most `k` weights, never frozen.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "must track at least one weight");
        Self {
            k,
            freeze_after: None,
            frozen: false,
            zero_untracked: false,
            mask: Vec::new(),
            scores: Vec::new(),
            last_swaps: 0,
            epoch_swaps: 0,
            last_epoch_churn: 0,
            steps: 0,
        }
    }

    /// **Ablation switch** (§2.1): set untracked weights to zero instead of
    /// regenerating their initialization values. The paper reports this
    /// destroys the "scaffolding" — compression drops from 60× to 2× on
    /// MNIST — and `repro_ablation_zeroed` reproduces the effect.
    pub fn with_zeroed_untracked(mut self) -> Self {
        self.zero_untracked = true;
        self
    }

    /// Freezes the tracked set once `epoch + 1 >= freeze_epoch` at an
    /// epoch boundary, as the paper's "Freeze Epoch" column configures.
    pub fn freeze_after(mut self, epoch: usize) -> Self {
        self.freeze_after = Some(epoch);
        self
    }

    /// The tracked-weight budget `k`.
    pub fn budget(&self) -> usize {
        self.k
    }

    /// Whether the tracked set is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Number of weights that entered the tracked set on the latest step —
    /// the churn quantity of the paper's Figure 2.
    pub fn last_swaps(&self) -> usize {
        self.last_swaps
    }

    /// Total swaps over the most recently finished epoch (updated by
    /// [`Optimizer::end_epoch`]) — the per-epoch churn telemetry reports.
    pub fn epoch_churn(&self) -> usize {
        self.last_epoch_churn
    }

    /// The current tracked mask (empty before the first step).
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Number of currently tracked weights.
    pub fn tracked_count(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }

    /// Tracked-weight count per registered parameter range as
    /// `(name, tracked, total)` — the per-layer breakdown of Table 2.
    pub fn tracked_per_range(&self, ps: &ParamStore) -> Vec<(String, usize, usize)> {
        ps.ranges()
            .iter()
            .map(|r| {
                let tracked = (r.start()..r.end())
                    .filter(|&i| self.mask.get(i).copied().unwrap_or(false))
                    .count();
                (r.name().to_string(), tracked, r.len())
            })
            .collect()
    }

    /// Weight-compression ratio `total params / k` (what the paper's tables
    /// report, e.g. "DropBack 20k → 13.33×" on a 267k model).
    pub fn compression(&self, ps: &ParamStore) -> f32 {
        ps.len() as f32 / self.k.min(ps.len()) as f32
    }

    fn ensure_state(&mut self, n: usize) {
        if self.mask.len() != n {
            self.mask = vec![false; n];
            self.scores = vec![0.0; n];
        }
    }
}

impl Optimizer for DropBack {
    fn step(&mut self, ps: &mut ParamStore, lr: f32) {
        let n = ps.len();
        self.ensure_state(n);
        let seed = ps.seed();
        let ranges: Vec<_> = ps.ranges().to_vec();
        let new_mask = if self.frozen {
            std::mem::take(&mut self.mask)
        } else {
            let _rank_span = Span::enter("topk-rank");
            // Score: tracked -> |w - w0| (recomputed, Algorithm 1's T);
            //        untracked -> |lr·g| (Algorithm 1's U).
            // Each score depends only on its own index, so the sweep is
            // chunked over the pool per range.
            let mask = &self.mask;
            let zero_untracked = self.zero_untracked;
            let (params, grads) = (ps.params(), ps.grads());
            for r in &ranges {
                let scheme = r.scheme();
                let start = r.start();
                pool::for_each_chunk_mut(&mut self.scores[start..r.end()], CHUNK, |ci, chunk| {
                    let base = start + ci * CHUNK;
                    for (j, s) in chunk.iter_mut().enumerate() {
                        let i = base + j;
                        *s = if mask[i] {
                            let origin = if zero_untracked {
                                0.0
                            } else {
                                scheme.value(seed, i as u64)
                            };
                            (params[i] - origin).abs()
                        } else {
                            (lr * grads[i]).abs()
                        };
                    }
                });
            }
            top_k_mask_sharded(&self.scores, self.k)
        };
        self.last_swaps = if self.frozen {
            0
        } else if self.steps == 0 {
            new_mask.iter().filter(|&&m| m).count()
        } else {
            new_mask
                .iter()
                .zip(&self.mask)
                .filter(|&(&new, &old)| new && !old)
                .count()
        };
        self.epoch_swaps += self.last_swaps;
        // Update tracked, regenerate untracked. Regeneration is idempotent
        // for weights that were already untracked, so no old-mask check is
        // needed to preserve the invariant untracked ⇒ w == init.
        {
            let (params, grads) = ps.update_view();
            pool::for_each_chunk_mut(params, CHUNK, |ci, chunk| {
                let base = ci * CHUNK;
                for (j, p) in chunk.iter_mut().enumerate() {
                    if new_mask[base + j] {
                        *p -= lr * grads[base + j];
                    }
                }
            });
        }
        {
            // Regeneration is O(1) per index (`scheme.value(seed, i)`), so
            // untracked shards regenerate embarrassingly parallel.
            let _regen_span = Span::enter("regen");
            let zero_untracked = self.zero_untracked;
            for r in &ranges {
                let scheme = r.scheme();
                let start = r.start();
                let params = ps.params_mut();
                pool::for_each_chunk_mut(&mut params[start..r.end()], CHUNK, |ci, chunk| {
                    let base = start + ci * CHUNK;
                    for (j, p) in chunk.iter_mut().enumerate() {
                        let i = base + j;
                        if !new_mask[i] {
                            *p = if zero_untracked {
                                0.0
                            } else {
                                scheme.value(seed, i as u64)
                            };
                        }
                    }
                });
            }
        }
        self.mask = new_mask;
        self.steps += 1;
    }

    fn end_epoch(&mut self, epoch: usize, _ps: &mut ParamStore) {
        self.last_epoch_churn = self.epoch_swaps;
        self.epoch_swaps = 0;
        if let Some(fe) = self.freeze_after {
            if epoch + 1 >= fe {
                self.frozen = true;
            }
        }
    }

    fn name(&self) -> &str {
        if self.zero_untracked {
            "dropback-zeroed"
        } else {
            "dropback"
        }
    }

    fn stored_weights(&self, ps: &ParamStore) -> usize {
        self.k.min(ps.len())
    }

    fn metrics(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("tracked_k", self.tracked_count() as f64),
            ("churn", self.last_epoch_churn as f64),
            ("frozen", if self.frozen { 1.0 } else { 0.0 }),
        ]
    }

    fn snapshot_state(&self) -> OptState {
        OptState::new(self.name())
            // Configuration, captured so a restore can refuse to resume a
            // run trained under different settings.
            .with("k", StateField::U64(self.k as u64))
            .with(
                "freeze_after",
                StateField::U64(encode_opt_epoch(self.freeze_after)),
            )
            .with(
                "zero_untracked",
                StateField::U64(u64::from(self.zero_untracked)),
            )
            // Mutable state: everything the next step/end_epoch reads.
            // `scores` is excluded on purpose — it is fully overwritten
            // before every use, so it carries no cross-step information.
            .with("frozen", StateField::U64(u64::from(self.frozen)))
            .with("steps", StateField::U64(self.steps))
            .with("last_swaps", StateField::U64(self.last_swaps as u64))
            .with("epoch_swaps", StateField::U64(self.epoch_swaps as u64))
            .with(
                "last_epoch_churn",
                StateField::U64(self.last_epoch_churn as u64),
            )
            .with("mask", StateField::Bools(self.mask.clone()))
    }

    fn restore_state(&mut self, state: &OptState) -> Result<(), StateError> {
        state.expect_name(self.name())?;
        state.expect_u64("k", self.k as u64)?;
        state.expect_u64("freeze_after", encode_opt_epoch(self.freeze_after))?;
        state.expect_u64("zero_untracked", u64::from(self.zero_untracked))?;
        self.frozen = state.u64("frozen")? != 0;
        self.steps = state.u64("steps")?;
        self.last_swaps = state.u64("last_swaps")? as usize;
        self.epoch_swaps = state.u64("epoch_swaps")? as usize;
        self.last_epoch_churn = state.u64("last_epoch_churn")? as usize;
        self.mask = state.bools("mask")?.to_vec();
        // Keep the scratch buffer in lockstep with the mask so
        // `ensure_state` does not wipe the restored mask on the next step.
        self.scores = vec![0.0; self.mask.len()];
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_nn::InitScheme;

    fn store_with_grads(n: usize, grads: &[f32]) -> ParamStore {
        let mut ps = ParamStore::new(7);
        let r = ps.register("w", n, InitScheme::lecun_normal(4));
        ps.accumulate_grad(&r, grads);
        ps
    }

    fn regrad(ps: &mut ParamStore, grads: &[f32]) {
        ps.zero_grads();
        let r = ps.ranges()[0].clone();
        ps.accumulate_grad(&r, grads);
    }

    #[test]
    fn untracked_weights_equal_init() {
        let grads = [0.0, 5.0, 0.1, 4.0, 0.0, 3.0];
        let mut ps = store_with_grads(6, &grads);
        let mut db = DropBack::new(2);
        db.step(&mut ps, 0.1);
        for i in 0..6 {
            if !db.mask()[i] {
                assert_eq!(ps.params()[i], ps.init_value(i), "untracked {i}");
            }
        }
        // Highest |lr·g| are indices 1 and 3.
        assert!(db.mask()[1] && db.mask()[3]);
        assert_eq!(db.tracked_count(), 2);
    }

    #[test]
    fn tracked_weights_take_sgd_update() {
        let grads = [0.0, 5.0, 0.0, 4.0];
        let mut ps = store_with_grads(4, &grads);
        let w1_init = ps.params()[1];
        let mut db = DropBack::new(2);
        db.step(&mut ps, 0.1);
        assert!((ps.params()[1] - (w1_init - 0.5)).abs() < 1e-6);
    }

    #[test]
    fn k_at_least_n_equals_sgd() {
        let grads: Vec<f32> = (0..8).map(|i| i as f32 * 0.3 - 1.0).collect();
        let mut ps_db = store_with_grads(8, &grads);
        let mut ps_sgd = ps_db.clone();
        DropBack::new(100).step(&mut ps_db, 0.2);
        crate::Sgd::new().step(&mut ps_sgd, 0.2);
        assert_eq!(ps_db.params(), ps_sgd.params());
    }

    #[test]
    fn tracked_score_is_displacement() {
        // A tracked weight with a big accumulated displacement survives a
        // one-shot larger gradient elsewhere only if its displacement wins.
        let mut ps = store_with_grads(3, &[10.0, 0.0, 0.0]);
        let mut db = DropBack::new(1);
        db.step(&mut ps, 0.1); // index 0 tracked, displacement 1.0
                               // Current gradient 5.0 at index 1 -> candidate score 0.5 < 1.0.
        regrad(&mut ps, &[0.0, 5.0, 0.0]);
        db.step(&mut ps, 0.1);
        assert!(db.mask()[0], "displacement 1.0 should beat candidate 0.5");
        // Current gradient 30 at index 1 -> candidate score 3.0 > 1.0.
        regrad(&mut ps, &[0.0, 30.0, 0.0]);
        db.step(&mut ps, 0.1);
        assert!(db.mask()[1], "candidate 3.0 should evict displacement 1.0");
        assert!(!db.mask()[0]);
        assert_eq!(ps.params()[0], ps.init_value(0), "evicted weight reverts");
    }

    #[test]
    fn freezing_fixes_the_tracked_set() {
        let mut ps = store_with_grads(4, &[5.0, 0.0, 0.0, 0.0]);
        let mut db = DropBack::new(1).freeze_after(1);
        db.step(&mut ps, 0.1);
        db.end_epoch(0, &mut ps); // epoch 0 ends -> frozen (freeze_after=1)
        assert!(db.is_frozen());
        let mask_before = db.mask().to_vec();
        // Large gradient elsewhere must NOT change the set.
        for _ in 0..5 {
            regrad(&mut ps, &[0.0, 100.0, 0.0, 0.0]);
            db.step(&mut ps, 0.1);
        }
        assert_eq!(db.mask(), &mask_before[..]);
        assert_eq!(db.last_swaps(), 0);
    }

    #[test]
    fn swaps_counted() {
        let mut ps = store_with_grads(4, &[5.0, 0.0, 0.0, 0.0]);
        let mut db = DropBack::new(1);
        db.step(&mut ps, 0.1);
        assert_eq!(db.last_swaps(), 1); // first step: everything is new
        regrad(&mut ps, &[0.0, 0.0, 0.0, 100.0]);
        db.step(&mut ps, 0.1);
        assert_eq!(db.last_swaps(), 1); // index 3 replaced index 0
        assert!(db.mask()[3]);
    }

    #[test]
    fn epoch_churn_accumulates_and_resets() {
        let mut ps = store_with_grads(4, &[5.0, 0.0, 0.0, 0.0]);
        let mut db = DropBack::new(1);
        db.step(&mut ps, 0.1); // 1 swap (initial fill)
        regrad(&mut ps, &[0.0, 0.0, 0.0, 100.0]);
        db.step(&mut ps, 0.1); // 1 swap (index 3 evicts index 0)
        assert_eq!(db.epoch_churn(), 0, "no epoch has finished yet");
        db.end_epoch(0, &mut ps);
        assert_eq!(db.epoch_churn(), 2);
        let metrics = db.metrics();
        assert!(metrics.contains(&("tracked_k", 1.0)));
        assert!(metrics.contains(&("churn", 2.0)));
        assert!(metrics.contains(&("frozen", 0.0)));
        db.end_epoch(1, &mut ps);
        assert_eq!(db.epoch_churn(), 0, "stepless epoch has no churn");
    }

    #[test]
    fn per_range_breakdown_sums_to_k() {
        let mut ps = ParamStore::new(3);
        let a = ps.register("a", 6, InitScheme::lecun_normal(2));
        let b = ps.register("b", 6, InitScheme::lecun_normal(2));
        ps.accumulate_grad(&a, &[9.0, 8.0, 0.0, 0.0, 0.0, 0.0]);
        ps.accumulate_grad(&b, &[7.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let mut db = DropBack::new(3);
        db.step(&mut ps, 0.1);
        let per = db.tracked_per_range(&ps);
        let total: usize = per.iter().map(|(_, t, _)| t).sum();
        assert_eq!(total, 3);
        assert_eq!(per[0].1, 2);
        assert_eq!(per[1].1, 1);
    }

    #[test]
    fn compression_matches_paper_arithmetic() {
        let mut ps = ParamStore::new(1);
        ps.register("w", 266_610, InitScheme::Constant(0.0));
        let db = DropBack::new(20_000);
        assert!((db.compression(&ps) - 13.33).abs() < 0.01);
    }

    #[test]
    fn stored_weights_is_k() {
        let mut ps = ParamStore::new(1);
        ps.register("w", 100, InitScheme::Constant(0.0));
        assert_eq!(DropBack::new(10).stored_weights(&ps), 10);
        assert_eq!(DropBack::new(500).stored_weights(&ps), 100);
    }

    #[test]
    fn zeroed_ablation_zeroes_untracked() {
        let grads = [0.0, 5.0, 0.1, 4.0];
        let mut ps = store_with_grads(4, &grads);
        let mut db = DropBack::new(2).with_zeroed_untracked();
        db.step(&mut ps, 0.1);
        assert_eq!(ps.params()[0], 0.0);
        assert_eq!(ps.params()[2], 0.0);
        assert_ne!(ps.params()[1], 0.0);
        assert_eq!(db.name(), "dropback-zeroed");
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        // Two optimizers stepped through the same gradient stream: one
        // straight through, one snapshot/restored midway into a fresh
        // instance. Their masks and parameter trajectories must agree
        // bit-for-bit afterwards.
        let grads = |t: usize| -> Vec<f32> { (0..6).map(|i| ((i + t) % 5) as f32 - 1.5).collect() };
        let mut ps_a = store_with_grads(6, &grads(0));
        let mut ps_b = ps_a.clone();
        let mut a = DropBack::new(2).freeze_after(4);
        let mut b = DropBack::new(2).freeze_after(4);
        for t in 0..3 {
            regrad(&mut ps_a, &grads(t));
            a.step(&mut ps_a, 0.1);
            regrad(&mut ps_b, &grads(t));
            b.step(&mut ps_b, 0.1);
        }
        a.end_epoch(0, &mut ps_a);
        b.end_epoch(0, &mut ps_b);
        // Kill b; bring up a fresh instance from its snapshot.
        let snap = b.snapshot_state();
        let mut b2 = DropBack::new(2).freeze_after(4);
        b2.restore_state(&snap).unwrap();
        for t in 3..8 {
            regrad(&mut ps_a, &grads(t));
            a.step(&mut ps_a, 0.1);
            regrad(&mut ps_b, &grads(t));
            b2.step(&mut ps_b, 0.1);
        }
        assert_eq!(a.mask(), b2.mask());
        assert_eq!(ps_a.params(), ps_b.params());
        assert_eq!(a.last_swaps(), b2.last_swaps());
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let snap = DropBack::new(2).snapshot_state();
        assert!(matches!(
            DropBack::new(3).restore_state(&snap),
            Err(StateError::ConfigMismatch { field: "k", .. })
        ));
        assert!(matches!(
            DropBack::new(2).freeze_after(1).restore_state(&snap),
            Err(StateError::ConfigMismatch {
                field: "freeze_after",
                ..
            })
        ));
        assert!(matches!(
            DropBack::new(2)
                .with_zeroed_untracked()
                .restore_state(&snap),
            Err(StateError::NameMismatch { .. })
        ));
    }

    #[test]
    fn constant_init_params_regenerate_to_constants() {
        // BN-style parameters (constant init) are prunable: untracked ones
        // sit at their constant, not at zero.
        let mut ps = ParamStore::new(5);
        let g = ps.register("bn.gamma", 4, InitScheme::Constant(1.0));
        ps.accumulate_grad(&g, &[5.0, 0.0, 0.0, 0.0]);
        let mut db = DropBack::new(1);
        db.step(&mut ps, 0.1);
        assert!((ps.params()[0] - 0.5).abs() < 1e-6); // tracked, updated
        assert_eq!(&ps.params()[1..], &[1.0, 1.0, 1.0]); // regenerated γ=1
    }
}
