//! Weight quantization, composable with any training rule.
//!
//! The paper's related-work section notes that "quantization is orthogonal
//! to DropBack, and the two techniques can be combined". This module makes
//! the combination concrete: [`Quantizer`] fake-quantizes stored weights to
//! a `bits`-wide uniform grid after every update, and [`Quantized`] wraps
//! any [`Optimizer`] with that post-step. `repro_ablation_quant` sweeps the
//! bit width over a DropBack run.

use crate::Optimizer;
use dropback_nn::ParamStore;

/// Uniform symmetric fake-quantizer for weight vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    bits: u32,
}

impl Quantizer {
    /// Creates a quantizer with `bits` of precision (2..=16).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 16`.
    pub fn new(bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        Self { bits }
    }

    /// The configured bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of representable levels.
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Quantizes one value onto the symmetric grid `[-scale, scale]`.
    #[inline]
    pub fn quantize(&self, v: f32, scale: f32) -> f32 {
        if scale <= 0.0 {
            return 0.0;
        }
        let half = (self.levels() / 2) as f32;
        let q = (v / scale * half).round().clamp(-half, half - 1.0);
        if q == 0.0 {
            0.0 // normalize away -0.0 so the grid has exactly 2^bits points
        } else {
            q / half * scale
        }
    }

    /// Fake-quantizes a whole slice in place, using its max-|v| as scale.
    /// Returns the scale used.
    pub fn quantize_slice(&self, values: &mut [f32]) -> f32 {
        let scale = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if scale > 0.0 {
            for v in values.iter_mut() {
                *v = self.quantize(*v, scale);
            }
        }
        scale
    }
}

/// Wraps any optimizer with post-step weight quantization.
///
/// The inner rule runs unchanged (full-precision gradients), then every
/// stored weight is snapped to the quantization grid — the "quantize while
/// training" regime of Gupta et al. 2015 / Courbariaux et al. 2014 the
/// paper cites as combinable with DropBack.
#[derive(Debug, Clone)]
pub struct Quantized<O> {
    inner: O,
    quantizer: Quantizer,
    name: String,
}

impl<O: Optimizer> Quantized<O> {
    /// Wraps `inner`, quantizing to `bits` after each step.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 16`.
    pub fn new(inner: O, bits: u32) -> Self {
        let name = format!("{}+q{bits}", inner.name());
        Self {
            inner,
            quantizer: Quantizer::new(bits),
            name,
        }
    }

    /// The wrapped optimizer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The quantizer in use.
    pub fn quantizer(&self) -> Quantizer {
        self.quantizer
    }
}

impl<O: Optimizer> Optimizer for Quantized<O> {
    fn step(&mut self, ps: &mut ParamStore, lr: f32) {
        self.inner.step(ps, lr);
        // Quantize per registered range so each layer gets its own scale.
        let ranges: Vec<_> = ps.ranges().to_vec();
        for r in &ranges {
            let slice = &mut ps.params_mut()[r.start()..r.end()];
            self.quantizer.quantize_slice(slice);
        }
    }

    fn end_epoch(&mut self, epoch: usize, ps: &mut ParamStore) {
        self.inner.end_epoch(epoch, ps);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn stored_weights(&self, ps: &ParamStore) -> usize {
        self.inner.stored_weights(ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sgd;
    use dropback_nn::InitScheme;

    #[test]
    fn quantize_snaps_to_grid() {
        let q = Quantizer::new(2); // 4 levels: -1, -0.5, 0, 0.5 (x scale)
        assert_eq!(q.levels(), 4);
        assert_eq!(q.quantize(0.9, 1.0), 0.5); // clamped to half-1 level
        assert_eq!(q.quantize(-1.2, 1.0), -1.0);
        assert_eq!(q.quantize(0.1, 1.0), 0.0);
    }

    #[test]
    fn quantize_slice_bounds_error() {
        let q = Quantizer::new(8);
        let mut values: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin()).collect();
        let orig = values.clone();
        let scale = q.quantize_slice(&mut values);
        assert!(scale > 0.0);
        let max_err = scale / 128.0; // half a level step
        for (v, o) in values.iter().zip(&orig) {
            assert!((v - o).abs() <= max_err + 1e-6, "{v} vs {o}");
        }
    }

    #[test]
    fn zero_slice_stays_zero() {
        let q = Quantizer::new(4);
        let mut z = vec![0.0f32; 8];
        assert_eq!(q.quantize_slice(&mut z), 0.0);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn one_bit_panics() {
        Quantizer::new(1);
    }

    #[test]
    fn quantized_sgd_steps_and_quantizes() {
        let mut ps = ParamStore::new(1);
        let r = ps.register("w", 4, InitScheme::Constant(0.0));
        ps.accumulate_grad(&r, &[1.0, 0.5, -1.0, 0.25]);
        let mut opt = Quantized::new(Sgd::new(), 2);
        opt.step(&mut ps, 1.0);
        // Post-SGD values [-1, -0.5, 1, -0.25] -> scale 1.0, grid 0.5.
        assert_eq!(ps.params(), &[-1.0, -0.5, 0.5, -0.5]);
        assert_eq!(opt.name(), "sgd+q2");
    }

    #[test]
    fn quantized_dropback_preserves_budget_accounting() {
        let mut ps = ParamStore::new(1);
        ps.register("w", 100, InitScheme::lecun_normal(10));
        let opt = Quantized::new(crate::DropBack::new(10), 8);
        assert_eq!(opt.stored_weights(&ps), 10);
    }
}
