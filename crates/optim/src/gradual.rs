//! Gradual magnitude pruning (Zhu & Gupta 2017) — a related-work baseline.
//!
//! The paper's related work (§5) cites Zhu & Gupta's "to prune, or not to
//! prune": sparsity is introduced *gradually* during training on a
//! polynomial schedule `s(t) = s_f · (1 − (1 − t/T)³)`, masking the
//! lowest-|w| weights at each pruning step. Unlike DropBack it still needs
//! full dense weight storage during training (the masked set changes and
//! masked weights restart from zero, not from a regenerable value) — which
//! is exactly the contrast the paper draws.

use crate::topk::top_k_mask;
use crate::Optimizer;
use dropback_nn::ParamStore;

/// Gradual magnitude pruning on a cubic sparsity ramp.
#[derive(Debug, Clone)]
pub struct GradualMagnitudePruning {
    final_sparsity: f32,
    ramp_steps: u64,
    prune_every: u64,
    step: u64,
    mask: Vec<bool>,
}

impl GradualMagnitudePruning {
    /// Creates the rule: sparsity ramps from 0 to `final_sparsity` over
    /// `ramp_steps` optimizer steps, re-thresholding every `prune_every`
    /// steps.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < final_sparsity < 1`, `ramp_steps > 0`, and
    /// `prune_every > 0`.
    pub fn new(final_sparsity: f32, ramp_steps: u64, prune_every: u64) -> Self {
        assert!(
            final_sparsity > 0.0 && final_sparsity < 1.0,
            "final sparsity must be in (0, 1)"
        );
        assert!(ramp_steps > 0, "ramp must be positive");
        assert!(prune_every > 0, "prune interval must be positive");
        Self {
            final_sparsity,
            ramp_steps,
            prune_every,
            step: 0,
            mask: Vec::new(),
        }
    }

    /// Target sparsity at optimizer step `t` (cubic ramp).
    pub fn sparsity_at(&self, t: u64) -> f32 {
        let progress = (t as f32 / self.ramp_steps as f32).min(1.0);
        self.final_sparsity * (1.0 - (1.0 - progress).powi(3))
    }

    /// The current fraction of masked weights.
    pub fn current_sparsity(&self) -> f32 {
        if self.mask.is_empty() {
            0.0
        } else {
            self.mask.iter().filter(|&&m| !m).count() as f32 / self.mask.len() as f32
        }
    }
}

impl Optimizer for GradualMagnitudePruning {
    fn step(&mut self, ps: &mut ParamStore, lr: f32) {
        let n = ps.len();
        if self.mask.len() != n {
            self.mask = vec![true; n];
        }
        // Dense SGD update (gradients flow to every weight, pruned weights
        // stay pinned at zero below).
        {
            let (params, grads) = ps.update_view();
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= lr * g;
            }
        }
        // Re-threshold on schedule.
        if self.step.is_multiple_of(self.prune_every) {
            let sparsity = self.sparsity_at(self.step);
            let keep = ((1.0 - sparsity) * n as f32).round().max(1.0) as usize;
            let magnitudes: Vec<f32> = ps.params().iter().map(|w| w.abs()).collect();
            self.mask = top_k_mask(&magnitudes, keep);
        }
        // Apply the mask.
        let params = ps.params_mut();
        for (p, &m) in params.iter_mut().zip(&self.mask) {
            if !m {
                *p = 0.0;
            }
        }
        self.step += 1;
    }

    fn name(&self) -> &str {
        "gradual-magnitude"
    }

    fn stored_weights(&self, ps: &ParamStore) -> usize {
        // Final-model storage; training remains fully dense (the contrast
        // with DropBack the paper draws).
        (((1.0 - self.final_sparsity) * ps.len() as f32).round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_nn::InitScheme;

    fn store(n: usize) -> ParamStore {
        let mut ps = ParamStore::new(3);
        ps.register("w", n, InitScheme::lecun_normal(8));
        ps
    }

    fn random_grads(ps: &mut ParamStore, seed: u64) {
        ps.zero_grads();
        let r = ps.ranges()[0].clone();
        let g: Vec<f32> = (0..r.len())
            .map(|i| (((i as u64 + seed) * 2654435761 % 1000) as f32 / 500.0) - 1.0)
            .collect();
        ps.accumulate_grad(&r, &g);
    }

    #[test]
    fn sparsity_ramp_is_cubic() {
        let g = GradualMagnitudePruning::new(0.8, 100, 10);
        assert_eq!(g.sparsity_at(0), 0.0);
        assert!((g.sparsity_at(100) - 0.8).abs() < 1e-6);
        assert!((g.sparsity_at(1000) - 0.8).abs() < 1e-6);
        // Halfway: 0.8 * (1 - 0.125) = 0.7.
        assert!((g.sparsity_at(50) - 0.7).abs() < 1e-5);
        // Monotone.
        for t in 0..99 {
            assert!(g.sparsity_at(t + 1) >= g.sparsity_at(t));
        }
    }

    #[test]
    fn sparsity_grows_during_training() {
        let mut ps = store(200);
        let mut opt = GradualMagnitudePruning::new(0.75, 50, 5);
        let mut seen = Vec::new();
        for s in 0..60 {
            random_grads(&mut ps, s);
            opt.step(&mut ps, 0.05);
            seen.push(opt.current_sparsity());
        }
        assert!(seen[0] < 0.05, "starts dense, got {}", seen[0]);
        let last = *seen.last().unwrap();
        assert!((last - 0.75).abs() < 0.02, "ends at target, got {last}");
        // Never decreases by much (re-thresholding jitter only).
        for w in seen.windows(2) {
            assert!(w[1] >= w[0] - 0.02);
        }
    }

    #[test]
    fn pruned_weights_are_zero() {
        let mut ps = store(100);
        let mut opt = GradualMagnitudePruning::new(0.5, 10, 1);
        for s in 0..20 {
            random_grads(&mut ps, s);
            opt.step(&mut ps, 0.05);
        }
        let zeros = ps.params().iter().filter(|&&w| w == 0.0).count();
        assert!((zeros as f32 / 100.0 - 0.5).abs() < 0.05, "{zeros} zeros");
    }

    #[test]
    fn stored_weights_reports_final_model() {
        let ps = store(1000);
        let opt = GradualMagnitudePruning::new(0.9, 10, 1);
        assert_eq!(opt.stored_weights(&ps), 100);
    }

    #[test]
    #[should_panic(expected = "final sparsity")]
    fn bad_sparsity_panics() {
        GradualMagnitudePruning::new(1.0, 10, 1);
    }
}
