//! Magnitude-based pruning during training (baseline (a) in §3).

use crate::topk::top_k_mask;
use crate::Optimizer;
use dropback_nn::ParamStore;

/// "A straightforward magnitude-based pruning implementation where only the
/// highest weights are kept after each iteration": every step applies SGD,
/// then zeroes all but the largest-|w| fraction.
///
/// Configured by the *pruned* fraction, matching the paper's labels
/// ("Mag Pruning .75" prunes 75% → 4× compression).
#[derive(Debug, Clone)]
pub struct MagnitudePruning {
    prune_fraction: f32,
    keep: Option<usize>,
}

impl MagnitudePruning {
    /// Creates the rule pruning `prune_fraction` of weights each step.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < prune_fraction < 1`.
    pub fn new(prune_fraction: f32) -> Self {
        assert!(
            prune_fraction > 0.0 && prune_fraction < 1.0,
            "prune fraction must be in (0, 1)"
        );
        Self {
            prune_fraction,
            keep: None,
        }
    }

    /// The configured pruned fraction.
    pub fn prune_fraction(&self) -> f32 {
        self.prune_fraction
    }

    /// Compression ratio implied by the pruned fraction (e.g. 0.75 → 4×).
    pub fn compression(&self) -> f32 {
        1.0 / (1.0 - self.prune_fraction)
    }

    fn keep_count(&mut self, n: usize) -> usize {
        *self.keep.get_or_insert_with(|| {
            (((1.0 - self.prune_fraction) * n as f32).round() as usize).max(1)
        })
    }
}

impl Optimizer for MagnitudePruning {
    fn step(&mut self, ps: &mut ParamStore, lr: f32) {
        let n = ps.len();
        let keep = self.keep_count(n);
        {
            let (params, grads) = ps.update_view();
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= lr * g;
            }
        }
        let magnitudes: Vec<f32> = ps.params().iter().map(|w| w.abs()).collect();
        let mask = top_k_mask(&magnitudes, keep);
        let params = ps.params_mut();
        for (p, &m) in params.iter_mut().zip(&mask) {
            if !m {
                *p = 0.0;
            }
        }
    }

    fn name(&self) -> &str {
        "magnitude-pruning"
    }

    fn stored_weights(&self, ps: &ParamStore) -> usize {
        (((1.0 - self.prune_fraction) * ps.len() as f32).round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_nn::InitScheme;

    #[test]
    fn prunes_smallest_weights_to_zero() {
        let mut ps = ParamStore::new(1);
        let r = ps.register("w", 4, InitScheme::Constant(0.0));
        ps.params_mut().copy_from_slice(&[0.1, -5.0, 0.2, 3.0]);
        ps.accumulate_grad(&r, &[0.0; 4]);
        let mut mp = MagnitudePruning::new(0.5);
        mp.step(&mut ps, 0.1);
        assert_eq!(ps.params(), &[0.0, -5.0, 0.0, 3.0]);
    }

    #[test]
    fn sgd_applied_before_pruning() {
        let mut ps = ParamStore::new(1);
        let r = ps.register("w", 2, InitScheme::Constant(1.0));
        ps.accumulate_grad(&r, &[10.0, 0.0]);
        let mut mp = MagnitudePruning::new(0.5);
        mp.step(&mut ps, 0.1);
        // w0: 1 - 1 = 0 (pruned), w1: 1 (kept).
        assert_eq!(ps.params(), &[0.0, 1.0]);
    }

    #[test]
    fn compression_arithmetic() {
        assert!((MagnitudePruning::new(0.75).compression() - 4.0).abs() < 1e-6);
        assert!((MagnitudePruning::new(0.8).compression() - 5.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "prune fraction")]
    fn bad_fraction_panics() {
        MagnitudePruning::new(1.0);
    }

    #[test]
    fn zeroed_weights_destroy_init_scaffolding() {
        // The property the paper highlights: magnitude pruning zeroes the
        // untracked weights, so the weight vector jumps far from init
        // immediately (Figure 5's large initial L2 distance).
        let mut ps = ParamStore::new(9);
        let r = ps.register("w", 1000, InitScheme::lecun_normal(100));
        let init = ps.params().to_vec();
        ps.accumulate_grad(&r, &vec![0.0; 1000]);
        MagnitudePruning::new(0.75).step(&mut ps, 0.1);
        let dist: f32 = ps
            .params()
            .iter()
            .zip(&init)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        let init_norm: f32 = init.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(dist > 0.5 * init_norm, "dist {dist} vs norm {init_norm}");
    }
}
