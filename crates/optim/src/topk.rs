//! Deterministic top-k selection used by DropBack's tracked-set update.

/// Returns a boolean mask selecting exactly `min(k, n)` elements with the
/// largest `scores`, breaking ties by preferring lower indices
/// (deterministic, so the tracked set is reproducible across runs).
///
/// Runs in O(n) average time via quickselect on a copy of the scores.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn top_k_mask(scores: &[f32], k: usize) -> Vec<bool> {
    assert!(k > 0, "top-k of zero elements is meaningless");
    let n = scores.len();
    if k >= n {
        return vec![true; n];
    }
    let threshold = kth_largest(scores, k);
    let mut mask = vec![false; n];
    let mut taken = 0usize;
    // First pass: everything strictly above the threshold.
    for (i, &s) in scores.iter().enumerate() {
        if s > threshold {
            mask[i] = true;
            taken += 1;
        }
    }
    // Second pass: fill remaining slots with threshold-equal elements,
    // lowest index first.
    for (i, &s) in scores.iter().enumerate() {
        if taken == k {
            break;
        }
        if !mask[i] && s == threshold {
            mask[i] = true;
            taken += 1;
        }
    }
    debug_assert_eq!(taken, k);
    mask
}

/// The `k`-th largest value (1-indexed: `k = 1` is the maximum).
fn kth_largest(scores: &[f32], k: usize) -> f32 {
    let mut buf: Vec<f32> = scores.to_vec();
    let idx = k - 1;
    // `select_nth_unstable_by` with descending order puts the k-th largest
    // at position idx.
    let (_, nth, _) = buf.select_nth_unstable_by(idx, |a, b| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
    });
    *nth
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selected(mask: &[bool]) -> Vec<usize> {
        mask.iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(i))
            .collect()
    }

    #[test]
    fn selects_exactly_k() {
        let scores = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        for k in 1..=8 {
            let mask = top_k_mask(&scores, k);
            assert_eq!(mask.iter().filter(|&&m| m).count(), k, "k={k}");
        }
    }

    #[test]
    fn matches_sort_reference() {
        let scores = [0.3, -1.0, 0.7, 0.7, 2.0, -0.5, 0.0, 0.7, 1.5];
        let mask = top_k_mask(&scores, 4);
        // Sorted descending: 2.0(4), 1.5(8), 0.7(2), 0.7(3) — ties by index.
        assert_eq!(selected(&mask), vec![2, 3, 4, 8]);
    }

    #[test]
    fn k_larger_than_n_selects_all() {
        let mask = top_k_mask(&[1.0, 2.0], 10);
        assert_eq!(mask, vec![true, true]);
    }

    #[test]
    fn all_equal_breaks_ties_by_index() {
        let mask = top_k_mask(&[5.0; 6], 3);
        assert_eq!(selected(&mask), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn zero_k_panics() {
        top_k_mask(&[1.0], 0);
    }

    #[test]
    fn reference_equivalence_random() {
        // Property-style check against a full-sort reference.
        let mut state = 0x12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        };
        for trial in 0..20 {
            let n = 50 + trial * 13;
            let scores: Vec<f32> = (0..n).map(|_| next()).collect();
            let k = 1 + trial * 2;
            let mask = top_k_mask(&scores, k.min(n));
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
            let expect: std::collections::BTreeSet<usize> =
                order[..k.min(n)].iter().copied().collect();
            let got: std::collections::BTreeSet<usize> = selected(&mask).into_iter().collect();
            assert_eq!(expect, got, "trial {trial}");
        }
    }
}
