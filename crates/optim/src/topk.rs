//! Deterministic top-k selection used by DropBack's tracked-set update.
//!
//! Two implementations produce the exact same mask: the serial
//! [`top_k_mask`] reference, and [`top_k_mask_sharded`], which ranks fixed
//! `SHARD`-sized score shards in parallel on the `dropback-tensor` worker
//! pool and merges per-shard candidates. The sharded selection is
//! bit-identical to the serial one (same threshold, same lowest-index
//! tie-break) at any thread count — see `docs/PERFORMANCE.md` for the
//! argument and `tests/thread_invariance.rs` for the end-to-end pin.

/// Returns a boolean mask selecting exactly `min(k, n)` elements with the
/// largest `scores`, breaking ties by preferring lower indices
/// (deterministic, so the tracked set is reproducible across runs).
///
/// Runs in O(n) average time via quickselect on a copy of the scores.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn top_k_mask(scores: &[f32], k: usize) -> Vec<bool> {
    assert!(k > 0, "top-k of zero elements is meaningless");
    let n = scores.len();
    if k >= n {
        return vec![true; n];
    }
    let threshold = kth_largest(scores, k);
    let mut mask = vec![false; n];
    let mut taken = 0usize;
    // First pass: everything strictly above the threshold.
    for (i, &s) in scores.iter().enumerate() {
        if s > threshold {
            mask[i] = true;
            taken += 1;
        }
    }
    // Second pass: fill remaining slots with threshold-equal elements,
    // lowest index first.
    for (i, &s) in scores.iter().enumerate() {
        if taken == k {
            break;
        }
        if !mask[i] && s == threshold {
            mask[i] = true;
            taken += 1;
        }
    }
    debug_assert_eq!(taken, k);
    mask
}

/// The `k`-th largest value (1-indexed: `k = 1` is the maximum).
fn kth_largest(scores: &[f32], k: usize) -> f32 {
    let mut buf: Vec<f32> = scores.to_vec();
    let idx = k - 1;
    // `select_nth_unstable_by` with descending order puts the k-th largest
    // at position idx.
    let (_, nth, _) = buf.select_nth_unstable_by(idx, |a, b| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
    });
    *nth
}

/// Scores per shard for [`top_k_mask_sharded`]. Fixed (never derived from
/// the thread count) so the shard boundaries — and the merged candidate
/// pool — are identical at any `DROPBACK_THREADS` value.
const SHARD: usize = 1 << 15;

/// Sharded [`top_k_mask`]: bit-identical result, parallel selection.
///
/// Each fixed-size shard contributes its top `min(k, shard_len)` values to
/// a candidate pool. Every element of the global top-k is in the pool:
/// a value `x` among the `k` largest overall has fewer than `k` elements
/// `≥ x` globally, hence fewer than `k` within its shard, so `x` survives
/// its shard's selection. The pool is also a sub-multiset of `scores`, so
/// its `k`-th largest equals the global `k`-th largest, and the final
/// strict-greater / lowest-index-tie-fill passes reproduce the serial mask
/// exactly.
///
/// Falls back to the serial reference when the input is small or `k` is a
/// large fraction of `n` (the candidate pool would approach `n` anyway) —
/// both paths return the same mask, so the cutover is invisible.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn top_k_mask_sharded(scores: &[f32], k: usize) -> Vec<bool> {
    assert!(k > 0, "top-k of zero elements is meaningless");
    let n = scores.len();
    if k >= n {
        return vec![true; n];
    }
    let shards = n.div_ceil(SHARD);
    if shards < 2 || k.saturating_mul(4) >= n {
        return top_k_mask(scores, k);
    }
    let candidates = dropback_tensor::pool::map_indexed(shards, |s| {
        let lo = s * SHARD;
        let hi = (lo + SHARD).min(n);
        let mut buf: Vec<f32> = scores[lo..hi].to_vec();
        let kk = k.min(buf.len());
        let (top, nth, _) = buf.select_nth_unstable_by(kk - 1, |a, b| {
            b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut v = top.to_vec();
        v.push(*nth);
        v
    });
    let merged: Vec<f32> = candidates.into_iter().flatten().collect();
    let threshold = kth_largest(&merged, k);
    let mut mask = vec![false; n];
    // Strict-greater pass, parallel over the same fixed shards (each mask
    // element depends only on its own score).
    dropback_tensor::pool::for_each_chunk_mut(&mut mask, SHARD, |ci, chunk| {
        let base = ci * SHARD;
        for (j, m) in chunk.iter_mut().enumerate() {
            *m = scores[base + j] > threshold;
        }
    });
    let mut taken = mask.iter().filter(|&&m| m).count();
    // Serial tie-fill, lowest index first — identical to the reference.
    for (i, &s) in scores.iter().enumerate() {
        if taken == k {
            break;
        }
        if !mask[i] && s == threshold {
            mask[i] = true;
            taken += 1;
        }
    }
    debug_assert_eq!(taken, k);
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selected(mask: &[bool]) -> Vec<usize> {
        mask.iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(i))
            .collect()
    }

    #[test]
    fn selects_exactly_k() {
        let scores = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        for k in 1..=8 {
            let mask = top_k_mask(&scores, k);
            assert_eq!(mask.iter().filter(|&&m| m).count(), k, "k={k}");
        }
    }

    #[test]
    fn matches_sort_reference() {
        let scores = [0.3, -1.0, 0.7, 0.7, 2.0, -0.5, 0.0, 0.7, 1.5];
        let mask = top_k_mask(&scores, 4);
        // Sorted descending: 2.0(4), 1.5(8), 0.7(2), 0.7(3) — ties by index.
        assert_eq!(selected(&mask), vec![2, 3, 4, 8]);
    }

    #[test]
    fn k_larger_than_n_selects_all() {
        let mask = top_k_mask(&[1.0, 2.0], 10);
        assert_eq!(mask, vec![true, true]);
    }

    #[test]
    fn all_equal_breaks_ties_by_index() {
        let mask = top_k_mask(&[5.0; 6], 3);
        assert_eq!(selected(&mask), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn zero_k_panics() {
        top_k_mask(&[1.0], 0);
    }

    #[test]
    fn reference_equivalence_random() {
        // Property-style check against a full-sort reference; the sharded
        // implementation must agree with both.
        let mut state = 0x12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        };
        for trial in 0..20 {
            let n = 50 + trial * 13;
            let scores: Vec<f32> = (0..n).map(|_| next()).collect();
            let k = 1 + trial * 2;
            let mask = top_k_mask(&scores, k.min(n));
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
            let expect: std::collections::BTreeSet<usize> =
                order[..k.min(n)].iter().copied().collect();
            let got: std::collections::BTreeSet<usize> = selected(&mask).into_iter().collect();
            assert_eq!(expect, got, "trial {trial}");
            assert_eq!(
                mask,
                top_k_mask_sharded(&scores, k.min(n)),
                "sharded diverged on trial {trial}"
            );
        }
    }

    /// Deterministic xorshift stream for the sharded property tests.
    fn rand_scores(n: usize, seed: u64, quantize: Option<f32>) -> Vec<f32> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let v = ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5;
                match quantize {
                    // Coarse grid => plenty of exact ties across shards.
                    Some(q) => (v * q).round() / q,
                    None => v,
                }
            })
            .collect()
    }

    #[test]
    fn sharded_matches_serial_on_random_vectors() {
        // Large enough to cross multiple shard boundaries.
        for (trial, &n) in [SHARD * 2 + 17, SHARD * 3, SHARD * 4 - 1]
            .iter()
            .enumerate()
        {
            let scores = rand_scores(n, 0xBEEF + trial as u64, None);
            for k in [1usize, 7, 100, n / 8] {
                assert_eq!(
                    top_k_mask(&scores, k),
                    top_k_mask_sharded(&scores, k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn sharded_matches_serial_with_heavy_ties() {
        // Quantized scores force threshold ties that span shards, which is
        // exactly where the lowest-index tie-break must agree.
        let n = SHARD * 3 + 5;
        let scores = rand_scores(n, 0xD00D, Some(8.0));
        for k in [3usize, 64, n / 16, n / 5] {
            assert_eq!(
                top_k_mask(&scores, k),
                top_k_mask_sharded(&scores, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn sharded_k_at_least_n_selects_all() {
        let scores = rand_scores(1000, 42, None);
        for k in [1000usize, 1001, 5000] {
            assert_eq!(top_k_mask_sharded(&scores, k), vec![true; 1000]);
        }
    }

    #[test]
    fn sharded_all_equal_breaks_ties_by_index() {
        let n = SHARD * 2 + 3;
        let scores = vec![1.25f32; n];
        let k = 77;
        let mask = top_k_mask_sharded(&scores, k);
        assert_eq!(mask, top_k_mask(&scores, k));
        assert_eq!(selected(&mask), (0..k).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn sharded_zero_k_panics() {
        top_k_mask_sharded(&[1.0], 0);
    }
}
