//! Optimizers for the DropBack reproduction: the paper's contribution
//! ([`DropBack`]) and the baselines it is evaluated against.
//!
//! * [`Sgd`] — plain stochastic gradient descent without momentum (the
//!   paper's baseline; "all other optimization strategies cost significant
//!   extra memory").
//! * [`DropBack`] — continuous pruning during training: only the `k`
//!   weights with the highest *accumulated* gradients are stored and
//!   updated; every other weight is regenerated to its initialization value
//!   on access. After a freeze epoch the tracked set is fixed.
//! * [`SparseDropBack`] — the same rule with the tracked weights held in an
//!   actual sparse map, demonstrating the paper's claim that `k` entries of
//!   storage suffice during training (tested bit-equal to the dense
//!   implementation).
//! * [`MagnitudePruning`] — keep-highest-|w| pruning applied every
//!   iteration (the paper's "straightforward magnitude-based pruning").
//! * [`NetworkSlimming`] — L1 on batch-norm scales, channel thresholding,
//!   and masked fine-tuning (Liu et al. 2017), the train-prune-retrain
//!   baseline.
//! * Variational dropout is layer-level (see
//!   [`dropback_nn::VarDropLinear`]); [`KlAnneal`] here provides the KL
//!   annealing schedule its training loop uses.
//! * [`LrSchedule`] — the paper's exponentially-decaying learning rates.

#![deny(missing_docs)]

mod dropback;
mod gradual;
mod magnitude;
mod momentum;
mod quant;
mod schedule;
mod sgd;
mod slim;
mod sparse;
mod state;
mod topk;
mod vd;

pub use dropback::DropBack;
pub use gradual::GradualMagnitudePruning;
pub use magnitude::MagnitudePruning;
pub use momentum::{Adam, SgdMomentum};
pub use quant::{Quantized, Quantizer};
pub use schedule::LrSchedule;
pub use sgd::Sgd;
pub use slim::NetworkSlimming;
pub use sparse::SparseDropBack;
pub use state::{OptState, StateError, StateField};
pub use topk::{top_k_mask, top_k_mask_sharded};
pub use vd::KlAnneal;

use dropback_nn::ParamStore;

/// A training-rule: consumes the gradients accumulated in a [`ParamStore`]
/// and updates its parameters.
pub trait Optimizer {
    /// Applies one update step with learning rate `lr`.
    fn step(&mut self, ps: &mut ParamStore, lr: f32);

    /// Hook called at the end of each epoch (freezing, pruning phases, ...).
    fn end_epoch(&mut self, _epoch: usize, _ps: &mut ParamStore) {}

    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Number of weights this rule actually needs to store
    /// (`None` = all of them).
    fn stored_weights(&self, ps: &ParamStore) -> usize {
        ps.len()
    }

    /// Per-epoch scalar metrics for telemetry, as `(name, value)` pairs.
    /// Read by the trainer after [`Optimizer::end_epoch`]; the default
    /// reports nothing. DropBack rules report `tracked_k`, `churn` (weights
    /// that entered the tracked set during the finished epoch), and
    /// `frozen`.
    fn metrics(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }

    /// Captures the optimizer's mutable state (accumulators, counters,
    /// tracked sets) for a resumable checkpoint. The default snapshot is
    /// empty — correct for stateless rules like [`Sgd`]. Stateful rules
    /// must capture *everything* their next [`Optimizer::step`] reads, or
    /// a resumed run diverges from an uninterrupted one.
    fn snapshot_state(&self) -> OptState {
        OptState::new(self.name())
    }

    /// Restores state captured by [`Optimizer::snapshot_state`] into a
    /// freshly-constructed optimizer with identical configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] if the snapshot came from a different
    /// optimizer, a required field is missing or mis-shaped, or a
    /// configuration value (budget, freeze epoch, momentum) disagrees with
    /// the constructed optimizer.
    fn restore_state(&mut self, state: &OptState) -> Result<(), StateError> {
        state.expect_name(self.name())
    }
}
