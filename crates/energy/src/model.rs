//! Per-operation energy constants (45 nm, after Han et al. 2016).

/// Energy cost model for a 45 nm process.
///
/// Defaults use the paper's constants: 640 pJ per 32-bit DRAM access,
/// 0.9 pJ per 32-bit floating-point op, 0.1 pJ per 32-bit integer ALU op
/// (so one xorshift regeneration = 6 int ops + 1 flop ≈ 1.5 pJ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// pJ per 32-bit off-chip DRAM access.
    pub dram_access_pj: f64,
    /// pJ per 32-bit floating-point operation.
    pub flop_pj: f64,
    /// pJ per 32-bit integer ALU operation.
    pub int_op_pj: f64,
    /// pJ per 32-bit on-chip SRAM/register access.
    pub sram_access_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_45nm()
    }
}

impl EnergyModel {
    /// The paper's 45 nm constants.
    pub fn paper_45nm() -> Self {
        Self {
            dram_access_pj: 640.0,
            flop_pj: 0.9,
            int_op_pj: 0.1,
            sram_access_pj: 5.0,
        }
    }

    /// Energy to regenerate one initialization value with the hardware
    /// xorshift unit (6 integer ops + 1 float op ≈ 1.5 pJ).
    pub fn regen_pj(&self) -> f64 {
        dropback_prng::REGEN_FAST_INT_OPS as f64 * self.int_op_pj
            + dropback_prng::REGEN_FAST_FLOPS as f64 * self.flop_pj
    }

    /// Energy to regenerate one value with the exact software Box–Muller
    /// path (more flops; still far below a DRAM access).
    pub fn regen_exact_pj(&self) -> f64 {
        dropback_prng::REGEN_INT_OPS as f64 * self.int_op_pj
            + dropback_prng::REGEN_FLOPS as f64 * self.flop_pj
    }

    /// The paper's headline ratio: DRAM access vs regeneration (~427×).
    pub fn regen_advantage(&self) -> f64 {
        self.dram_access_pj / self.regen_pj()
    }

    /// DRAM access vs floating-point op (~700×, §1).
    pub fn dram_vs_flop(&self) -> f64 {
        self.dram_access_pj / self.flop_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regen_costs_about_1_5_pj() {
        let m = EnergyModel::paper_45nm();
        assert!((m.regen_pj() - 1.5).abs() < 0.01, "{}", m.regen_pj());
    }

    #[test]
    fn regen_advantage_matches_paper_427() {
        let m = EnergyModel::paper_45nm();
        let adv = m.regen_advantage();
        assert!((adv - 427.0).abs() < 2.0, "advantage {adv}");
    }

    #[test]
    fn dram_vs_flop_matches_paper_700() {
        let m = EnergyModel::paper_45nm();
        let r = m.dram_vs_flop();
        assert!((r - 711.0).abs() < 2.0, "ratio {r}");
    }

    #[test]
    fn exact_regen_still_beats_dram_by_far() {
        let m = EnergyModel::paper_45nm();
        assert!(m.dram_access_pj / m.regen_exact_pj() > 90.0);
    }
}
