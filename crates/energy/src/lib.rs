//! 45 nm energy and memory-traffic model for DNN training schemes.
//!
//! The paper's motivation is quantitative: in a 45 nm process a 32-bit DRAM
//! access costs ~640 pJ while a 32-bit floating-point operation costs
//! ~0.9 pJ (Han et al. 2016), a >700× gap, and regenerating an
//! initialization value with xorshift (six 32-bit integer ops + one float
//! op) costs ~1.5 pJ — "427× less energy than a single off-chip memory
//! access". This crate turns those constants into an auditable model:
//!
//! * [`EnergyModel`] — the per-operation energy constants with the paper's
//!   headline ratios as derived quantities (tested against the quoted
//!   427× / 700× figures).
//! * [`TrainingTraffic`] — per-step weight-memory traffic for each training
//!   scheme (baseline SGD vs DropBack dense/frozen), and the resulting
//!   energy; reproduces the "reduce memory accesses during training" claim
//!   as a table.

#![deny(missing_docs)]

mod accelerator;
mod model;
mod traffic;

pub use accelerator::{
    lenet_300_100_layers, mnist_100_100_layers, Accelerator, LayerShape, StepEnergy,
};
pub use model::EnergyModel;
pub use traffic::{SchemeTraffic, TrainingTraffic};
