//! Weight-memory traffic per training step, per scheme.

use crate::EnergyModel;

/// Weight-memory traffic of one training step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchemeTraffic {
    /// 32-bit off-chip reads of stored weights.
    pub dram_reads: u64,
    /// 32-bit off-chip writes of stored weights.
    pub dram_writes: u64,
    /// Initialization values regenerated on the fly (xorshift unit).
    pub regens: u64,
}

impl SchemeTraffic {
    /// Total energy of this step's weight traffic under `model`.
    pub fn energy_pj(&self, model: &EnergyModel) -> f64 {
        (self.dram_reads + self.dram_writes) as f64 * model.dram_access_pj
            + self.regens as f64 * model.regen_pj()
    }

    /// Total 32-bit weight values touched.
    pub fn total_accesses(&self) -> u64 {
        self.dram_reads + self.dram_writes + self.regens
    }
}

/// Per-step weight-traffic generator for the training schemes the paper
/// compares. Counts cover *weight* traffic only (activations are identical
/// across schemes and cancel in the comparison).
///
/// Access pattern per SGD step on an `n`-weight model:
///
/// * forward pass reads every weight once;
/// * backward pass reads every weight once more (input-gradient GEMMs);
/// * the update reads and writes every *stored* weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingTraffic {
    /// Total model parameters.
    pub params: u64,
    /// Stored (tracked) parameters; `== params` for the baseline.
    pub stored: u64,
}

impl TrainingTraffic {
    /// Baseline dense SGD: every weight stored off-chip.
    ///
    /// # Panics
    ///
    /// Panics if `params == 0`.
    pub fn baseline(params: u64) -> Self {
        assert!(params > 0, "empty model");
        Self {
            params,
            stored: params,
        }
    }

    /// DropBack with budget `k`: only `k` weights stored, the rest
    /// regenerated at every access.
    ///
    /// # Panics
    ///
    /// Panics if `params == 0` or `k == 0`.
    pub fn dropback(params: u64, k: u64) -> Self {
        assert!(params > 0 && k > 0, "empty model or budget");
        Self {
            params,
            stored: k.min(params),
        }
    }

    /// Traffic of one training step.
    pub fn step(&self) -> SchemeTraffic {
        let untracked = self.params - self.stored;
        SchemeTraffic {
            // Forward + backward weight reads, plus the update's
            // read-modify-write of stored weights.
            dram_reads: 2 * self.stored + self.stored,
            dram_writes: self.stored,
            // Untracked weights regenerated in both passes.
            regens: 2 * untracked,
        }
    }

    /// Traffic of one *inference* (forward-only) pass.
    pub fn inference(&self) -> SchemeTraffic {
        SchemeTraffic {
            dram_reads: self.stored,
            dram_writes: 0,
            regens: self.params - self.stored,
        }
    }

    /// Energy ratio of `self` vs `other` for one training step (how many
    /// times cheaper `self` is).
    pub fn advantage_over(&self, other: &TrainingTraffic, model: &EnergyModel) -> f64 {
        other.step().energy_pj(model) / self.step().energy_pj(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_step_touches_4n() {
        let t = TrainingTraffic::baseline(1000).step();
        assert_eq!(t.dram_reads, 3000);
        assert_eq!(t.dram_writes, 1000);
        assert_eq!(t.regens, 0);
    }

    #[test]
    fn dropback_step_splits_traffic() {
        let t = TrainingTraffic::dropback(1000, 100).step();
        assert_eq!(t.dram_reads, 300);
        assert_eq!(t.dram_writes, 100);
        assert_eq!(t.regens, 1800);
    }

    #[test]
    fn dropback_energy_win_grows_with_compression() {
        let m = EnergyModel::paper_45nm();
        let base = TrainingTraffic::baseline(1_000_000);
        let db10 = TrainingTraffic::dropback(1_000_000, 100_000); // 10x
        let db100 = TrainingTraffic::dropback(1_000_000, 10_000); // 100x
        let a10 = db10.advantage_over(&base, &m);
        let a100 = db100.advantage_over(&base, &m);
        assert!(a10 > 5.0, "10x compression should win >5x, got {a10}");
        assert!(a100 > a10, "more compression, more win");
    }

    #[test]
    fn inference_traffic_matches_deployment_story() {
        let t = TrainingTraffic::dropback(89_610, 1_500).inference();
        assert_eq!(t.dram_reads, 1_500);
        assert_eq!(t.regens, 88_110);
        // Even regenerating 98% of weights, inference energy is far below
        // reading them all from DRAM.
        let m = EnergyModel::paper_45nm();
        let dense = TrainingTraffic::baseline(89_610).inference();
        assert!(dense.energy_pj(&m) / t.energy_pj(&m) > 25.0);
    }

    #[test]
    fn budget_larger_than_model_clamps() {
        let t = TrainingTraffic::dropback(100, 1000);
        assert_eq!(t.stored, 100);
        assert_eq!(t.step().regens, 0);
    }

    #[test]
    #[should_panic(expected = "empty model")]
    fn zero_params_panics() {
        TrainingTraffic::baseline(0);
    }
}
