//! An edge-accelerator weight-memory model with an SRAM hierarchy.
//!
//! The paper's deployment argument (§1, §6): an on-device accelerator has
//! an order of magnitude less memory and two orders less bandwidth than a
//! datacentre GPU, and training is "fundamentally limited by off-chip
//! memory accesses". DropBack shrinks the *resident* weight set to `k`, so
//! a tracked set that fits in on-chip SRAM turns per-access DRAM traffic
//! into SRAM traffic plus regeneration — and lets the device "train
//! networks 5×–10× larger than currently possible".
//!
//! [`Accelerator`] models exactly that decision: per training step, stored
//! weights are served from SRAM when the whole stored set fits, otherwise
//! streamed from DRAM; untracked weights come from the xorshift
//! regeneration unit. [`Accelerator::max_trainable_weights`] inverts the
//! model to reproduce the "how much larger can I train" headline.

use crate::{EnergyModel, SchemeTraffic};

/// One layer's weight/compute footprint (enough for energy accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerShape {
    /// Layer name.
    pub name: String,
    /// Weight count.
    pub weights: u64,
    /// Multiply-accumulates per example in a forward pass.
    pub macs: u64,
}

impl LayerShape {
    /// A fully-connected layer `in → out`.
    pub fn linear(name: &str, in_dim: u64, out_dim: u64) -> Self {
        Self {
            name: name.to_string(),
            weights: in_dim * out_dim + out_dim,
            macs: in_dim * out_dim,
        }
    }

    /// A square convolution `c → f`, `k×k`, over an `oh×ow` output map.
    pub fn conv(name: &str, c: u64, f: u64, k: u64, oh: u64, ow: u64) -> Self {
        Self {
            name: name.to_string(),
            weights: f * c * k * k,
            macs: f * c * k * k * oh * ow,
        }
    }
}

/// The layer list of LeNet-300-100 (784 → 300 → 100 → 10).
pub fn lenet_300_100_layers() -> Vec<LayerShape> {
    vec![
        LayerShape::linear("fc1", 784, 300),
        LayerShape::linear("fc2", 300, 100),
        LayerShape::linear("fc3", 100, 10),
    ]
}

/// The layer list of MNIST-100-100 (784 → 100 → 100 → 10).
pub fn mnist_100_100_layers() -> Vec<LayerShape> {
    vec![
        LayerShape::linear("fc1", 784, 100),
        LayerShape::linear("fc2", 100, 100),
        LayerShape::linear("fc3", 100, 10),
    ]
}

/// Energy breakdown of one training step (weights + compute), in pJ.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepEnergy {
    /// Off-chip weight traffic energy.
    pub dram_pj: f64,
    /// On-chip (SRAM) weight traffic energy.
    pub sram_pj: f64,
    /// Regeneration-unit energy.
    pub regen_pj: f64,
    /// MAC/update compute energy.
    pub compute_pj: f64,
}

impl StepEnergy {
    /// Total energy.
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.sram_pj + self.regen_pj + self.compute_pj
    }
}

/// An edge accelerator with a fixed on-chip weight buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accelerator {
    /// On-chip weight SRAM capacity in bytes.
    pub sram_bytes: u64,
    /// Bytes per weight word (4 for f32).
    pub word_bytes: u64,
    /// Per-operation energy constants.
    pub model: EnergyModel,
    /// Whether the chip has the xorshift regeneration unit. Without it,
    /// every weight must be stored (DropBack degenerates to dense).
    pub regen_unit: bool,
}

impl Accelerator {
    /// A small edge device: 256 KiB of weight SRAM, f32 words, with the
    /// regeneration unit.
    pub fn edge_256k() -> Self {
        Self {
            sram_bytes: 256 * 1024,
            word_bytes: 4,
            model: EnergyModel::paper_45nm(),
            regen_unit: true,
        }
    }

    /// Number of weight words the SRAM can hold.
    pub fn sram_words(&self) -> u64 {
        self.sram_bytes / self.word_bytes
    }

    /// Whether a stored set of `stored` weights is SRAM-resident.
    pub fn fits_on_chip(&self, stored: u64) -> bool {
        stored <= self.sram_words()
    }

    /// Energy of one training step (forward + backward + update) over
    /// `layers` with `stored` weights tracked out of the model total.
    ///
    /// Weight access counts follow [`crate::TrainingTraffic`]: 3 reads +
    /// 1 write per stored weight per step, 2 regenerations per untracked
    /// weight. Compute: 2 passes of MACs (forward + input-gradient) plus
    /// one weight-gradient pass and the update, at 2 flops per MAC.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn training_step(&self, layers: &[LayerShape], stored: u64, batch: u64) -> StepEnergy {
        assert!(!layers.is_empty(), "no layers to model");
        let total: u64 = layers.iter().map(|l| l.weights).sum();
        let stored = stored.min(total);
        let untracked = total - stored;
        if !self.regen_unit {
            // No regeneration hardware: all weights must be stored.
            return self.training_step_dense(layers, batch);
        }
        let traffic = SchemeTraffic {
            dram_reads: 0,
            dram_writes: 0,
            regens: 2 * untracked,
        };
        let (dram_pj, sram_pj) = if self.fits_on_chip(stored) {
            // Resident: weight accesses hit SRAM. Amortized DRAM refresh of
            // the tracked set (e.g. checkpointing once per 1000 steps) is
            // negligible and ignored.
            (0.0, (4 * stored) as f64 * self.model.sram_access_pj)
        } else {
            // Spills: weight accesses stream from DRAM.
            ((4 * stored) as f64 * self.model.dram_access_pj, 0.0)
        };
        let macs: u64 = layers.iter().map(|l| l.macs).sum();
        // fwd + dX + dW passes = 3 MAC sweeps per example, 2 flops each;
        // update = 2 flops per stored weight.
        let compute_pj = (3 * 2 * macs * batch) as f64 * self.model.flop_pj
            + (2 * stored) as f64 * self.model.flop_pj;
        StepEnergy {
            dram_pj,
            sram_pj,
            regen_pj: traffic.regens as f64 * self.model.regen_pj(),
            compute_pj,
        }
    }

    fn training_step_dense(&self, layers: &[LayerShape], batch: u64) -> StepEnergy {
        let total: u64 = layers.iter().map(|l| l.weights).sum();
        let (dram_pj, sram_pj) = if self.fits_on_chip(total) {
            (0.0, (4 * total) as f64 * self.model.sram_access_pj)
        } else {
            ((4 * total) as f64 * self.model.dram_access_pj, 0.0)
        };
        let macs: u64 = layers.iter().map(|l| l.macs).sum();
        let compute_pj = (3 * 2 * macs * batch) as f64 * self.model.flop_pj
            + (2 * total) as f64 * self.model.flop_pj;
        StepEnergy {
            dram_pj,
            sram_pj,
            regen_pj: 0.0,
            compute_pj,
        }
    }

    /// The largest model (total weights) trainable with the whole tracked
    /// set SRAM-resident at a given compression ratio — the paper's
    /// "networks 5×–10× larger than currently possible" claim: at 10×
    /// compression a device that could hold a 1M-weight model can train a
    /// 10M-weight one.
    ///
    /// # Panics
    ///
    /// Panics if `compression < 1`.
    pub fn max_trainable_weights(&self, compression: f64) -> u64 {
        assert!(compression >= 1.0, "compression must be >= 1");
        (self.sram_words() as f64 * compression) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_shape_arithmetic() {
        let l = LayerShape::linear("fc", 784, 300);
        assert_eq!(l.weights, 784 * 300 + 300);
        assert_eq!(l.macs, 784 * 300);
        let c = LayerShape::conv("c", 3, 16, 3, 16, 16);
        assert_eq!(c.weights, 16 * 27);
        assert_eq!(c.macs, 16 * 27 * 256);
    }

    #[test]
    fn lenet_layer_total_matches_model() {
        let total: u64 = lenet_300_100_layers().iter().map(|l| l.weights).sum();
        assert_eq!(total, 266_610);
        let total2: u64 = mnist_100_100_layers().iter().map(|l| l.weights).sum();
        assert_eq!(total2, 89_610);
    }

    #[test]
    fn resident_tracked_set_avoids_dram() {
        let acc = Accelerator::edge_256k(); // 65,536 words
        let layers = lenet_300_100_layers();
        // 20k tracked fits on chip; dense 266k does not.
        let db = acc.training_step(&layers, 20_000, 1);
        assert_eq!(db.dram_pj, 0.0);
        assert!(db.sram_pj > 0.0);
        assert!(db.regen_pj > 0.0);
        let dense = acc.training_step(&layers, 266_610, 1);
        assert!(dense.dram_pj > 0.0);
        assert_eq!(dense.sram_pj, 0.0);
    }

    #[test]
    fn dropback_wins_when_dense_spills() {
        let acc = Accelerator::edge_256k();
        let layers = lenet_300_100_layers();
        let db = acc.training_step(&layers, 20_000, 1).total_pj();
        let dense = acc.training_step(&layers, 266_610, 1).total_pj();
        assert!(
            dense / db > 3.0,
            "expected a large win, got {:.1}x",
            dense / db
        );
    }

    #[test]
    fn no_regen_unit_means_dense_cost() {
        let mut acc = Accelerator::edge_256k();
        acc.regen_unit = false;
        let layers = lenet_300_100_layers();
        let a = acc.training_step(&layers, 20_000, 1);
        let b = acc.training_step(&layers, 266_610, 1);
        assert_eq!(a, b, "without regeneration every weight is stored");
    }

    #[test]
    fn max_trainable_scales_with_compression() {
        let acc = Accelerator::edge_256k();
        let dense_max = acc.max_trainable_weights(1.0);
        assert_eq!(dense_max, 65_536);
        assert_eq!(acc.max_trainable_weights(10.0), 655_360);
    }

    #[test]
    fn compute_energy_scales_with_batch() {
        let acc = Accelerator::edge_256k();
        let layers = mnist_100_100_layers();
        let b1 = acc.training_step(&layers, 10_000, 1);
        let b64 = acc.training_step(&layers, 10_000, 64);
        assert!(b64.compute_pj > 60.0 * b1.compute_pj);
        // Weight traffic is batch-independent (weights read once per step).
        assert_eq!(b1.sram_pj, b64.sram_pj);
    }
}
