//! The linter eating its own dog food: `cargo test` fails if the real
//! workspace picks up an unsuppressed violation, and the CLI's exit-code
//! contract (0 clean / 1 findings / 2 usage) is pinned with the seeded
//! fixture workspace.

use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let report = dropback_lint::check_workspace_with_default_allow(workspace_root())
        .expect("workspace walk succeeds");
    assert!(
        !report.has_failures(),
        "the workspace has unsuppressed lint findings — run \
         `cargo run -p dropback-lint -- --check` for details:\n{}",
        report.render_human()
    );
    assert!(
        report.unused_allows.is_empty(),
        "lint.allow has stale entries suppressing nothing:\n{}",
        report.render_human()
    );
    // Sanity: the walk actually covered the workspace.
    assert!(
        report.files_scanned > 50,
        "only {} files",
        report.files_scanned
    );
}

fn run_lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dropback-lint"))
        .args(args)
        .current_dir(workspace_root())
        .output()
        .expect("dropback-lint binary runs")
}

#[test]
fn cli_exits_zero_on_clean_tree() {
    let out = run_lint(&["--check"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cli_exits_one_on_seeded_violations() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let out = run_lint(&["--check", "--root", fixture.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Diagnostics carry file:line:col and the rule id.
    assert!(
        stdout.contains("crates/optim/src/bad_hash.rs:") && stdout.contains("[hash-iteration]"),
        "diagnostics missing file/rule: {stdout}"
    );
}

#[test]
fn cli_json_report_is_emitted_on_request() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let out = run_lint(&[
        "--check",
        "--json",
        "--root",
        fixture.to_str().expect("utf8 path"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "json: {stdout}");
    assert!(
        stdout.contains("\"rule\":\"hash-iteration\""),
        "json: {stdout}"
    );
}

#[test]
fn cli_exits_two_on_usage_errors() {
    // Missing --check is a usage error, not a silent no-op pass.
    assert_eq!(run_lint(&[]).status.code(), Some(2));
    assert_eq!(run_lint(&["--frobnicate"]).status.code(), Some(2));
    // Unreadable root is an I/O error.
    assert_eq!(
        run_lint(&["--check", "--root", "/nonexistent-dropback-path"])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn cli_rejects_allowlist_without_justification() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let dir = std::env::temp_dir().join("dropback-lint-selfcheck");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let allow = dir.join("bad.allow");
    std::fs::write(&allow, "no-print crates/nn/src/lib.rs\n").expect("write allow");
    let out = run_lint(&[
        "--check",
        "--root",
        fixture.to_str().expect("utf8 path"),
        "--allow",
        allow.to_str().expect("utf8 path"),
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "malformed allowlist is an error"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("justification"), "stderr: {stderr}");
    let _ = std::fs::remove_file(&allow);
}
