//! Fixture: raw thread creation outside the worker pool.
//!
//! Both call sites below must be flagged by `raw-thread`; the decoys in
//! the string, the comment, and the test module must not.

/// A kernel that spawns its own helper thread instead of using the pool.
pub fn rogue_spawn() {
    let handle = std::thread::spawn(|| 41 + 1);
    let _ = handle.join();
}

/// A kernel that opens a scoped region instead of submitting pool tasks.
pub fn rogue_scope(data: &mut [u64]) {
    std::thread::scope(|s| {
        for chunk in data.chunks_mut(2) {
            s.spawn(move || {
                for v in chunk.iter_mut() {
                    *v += 1;
                }
            });
        }
    });
}

/// Decoy: the words "thread::spawn" in a string are not a call.
pub fn describe() -> &'static str {
    // A comment mentioning thread::scope is also fine.
    "never call thread::spawn directly"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_spawn() {
        let h = std::thread::spawn(|| 7u8);
        assert_eq!(h.join().ok(), Some(7));
    }
}
