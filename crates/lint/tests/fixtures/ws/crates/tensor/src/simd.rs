//! Fixture: the sanctioned unsafe home. `unsafe-audit` confines unsafe
//! to this path, so documented unsafe here must stay clean without any
//! `lint.allow` entry — mirroring the planned `crates/tensor/src/simd.rs`.

pub fn lane_sum(p: *const f32, n: usize) -> f32 {
    let mut acc = 0.0;
    for i in 0..n {
        // SAFETY: callers guarantee `p` is valid for `n` reads.
        acc += unsafe { *p.add(i) };
    }
    acc
}

/// Sums `n` lanes without the wrapper's bounds contract.
///
/// # Safety
///
/// `p` must be valid for `n` consecutive `f32` reads.
pub unsafe fn lane_sum_unchecked(p: *const f32, n: usize) -> f32 {
    let mut acc = 0.0;
    for i in 0..n {
        // SAFETY: this fn's own contract guarantees the reads.
        acc += unsafe { *p.add(i) };
    }
    acc
}

/// Whether the AVX2 microkernel is eligible on this machine — runtime
/// feature detection is legal only in this file (`feature-detect` rule).
pub fn avx2_eligible() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
}

/// Eight-lane fused multiply-add over packed panels.
///
/// # Safety
///
/// Caller must have verified [`avx2_eligible`] and pass slices of length
/// at least 8.
pub unsafe fn fma_lane(a: &[f32], b: &[f32], c: &mut [f32]) {
    // SAFETY: the fn contract guarantees 8 in-bounds lanes per slice, and
    // the `u` load/store variants need no alignment.
    unsafe {
        let va = core::arch::x86_64::_mm256_loadu_ps(a.as_ptr());
        let vb = core::arch::x86_64::_mm256_loadu_ps(b.as_ptr());
        let vc = core::arch::x86_64::_mm256_loadu_ps(c.as_ptr());
        let r = core::arch::x86_64::_mm256_fmadd_ps(va, vb, vc);
        core::arch::x86_64::_mm256_storeu_ps(c.as_mut_ptr(), r);
    }
}
