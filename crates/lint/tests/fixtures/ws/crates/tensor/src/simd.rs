//! Fixture: the sanctioned unsafe home. `unsafe-audit` confines unsafe
//! to this path, so documented unsafe here must stay clean without any
//! `lint.allow` entry — mirroring the planned `crates/tensor/src/simd.rs`.

pub fn lane_sum(p: *const f32, n: usize) -> f32 {
    let mut acc = 0.0;
    for i in 0..n {
        // SAFETY: callers guarantee `p` is valid for `n` reads.
        acc += unsafe { *p.add(i) };
    }
    acc
}

/// Sums `n` lanes without the wrapper's bounds contract.
///
/// # Safety
///
/// `p` must be valid for `n` consecutive `f32` reads.
pub unsafe fn lane_sum_unchecked(p: *const f32, n: usize) -> f32 {
    let mut acc = 0.0;
    for i in 0..n {
        // SAFETY: this fn's own contract guarantees the reads.
        acc += unsafe { *p.add(i) };
    }
    acc
}
