//! Fixture: the sanctioned thread owner. `raw-thread` allowlists this
//! path, so the spawn below must stay clean without any `lint.allow`
//! entry — mirroring the real `crates/tensor/src/pool.rs`.

/// Spawns the worker set; only this module may create threads.
pub fn start_workers(n: usize) -> Vec<std::thread::JoinHandle<()>> {
    (1..n)
        .map(|_| std::thread::spawn(|| {}))
        .collect()
}
