//! Fixture: runtime CPU-feature detection outside simd.rs — kernel
//! selection leaking into ordinary code, which `feature-detect` flags.

pub fn pick_kernel() -> bool {
    is_x86_feature_detected!("avx2")
}
