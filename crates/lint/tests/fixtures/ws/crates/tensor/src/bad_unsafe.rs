//! Fixture: unsafe outside the sanctioned modules and without a SAFETY
//! comment — both `unsafe-audit` failure modes in one function.

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

/// Fixture: an intrinsics block with no justification — the shape
/// `unsafe-audit` must catch if microkernel code leaks out of simd.rs
/// (missing SAFETY comment AND unconfined, two findings).
pub fn unjustified_intrinsics(a: &[f32]) -> f32 {
    unsafe {
        let v = core::arch::x86_64::_mm256_loadu_ps(a.as_ptr());
        core::arch::x86_64::_mm256_cvtss_f32(v)
    }
}
