//! Fixture: unsafe outside the sanctioned modules and without a SAFETY
//! comment — both `unsafe-audit` failure modes in one function.

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}
