//! Fixture: panics on the request/decode path — `panic-path` territory.
//! These must surface as panic-path findings (not no-unwrap: that rule
//! hands library panic-path files over to this one).

pub fn decode(buf: &[u8]) -> u32 {
    let first = buf.first().unwrap();
    if *first > 100 {
        panic!("bad frame byte {first}");
    }
    u32::from(*first)
}

pub fn lookup(map: &std::collections::BTreeMap<u32, u32>, k: u32) -> u32 {
    *map.get(&k).expect("key must exist")
}
