//! Seeded fixture: a clock read in the serve crate but *outside* its
//! clock-owning module (clock.rs). The wall-clock allowlist is per-file,
//! not per-crate, so this must still be flagged — the serving path takes
//! deadlines from clock.rs, it does not read instants directly.

use std::time::Instant;

/// A request handler timing itself behind the telemetry layer's back.
pub fn sneaky_latency() -> u128 {
    Instant::now().elapsed().as_nanos()
}
