//! Fixture: the same decode written with error propagation — the clean
//! side of `panic-path`. The test-module unwrap must also stay clean.

pub fn decode(buf: &[u8]) -> Result<u32, String> {
    let first = buf.first().ok_or("empty frame")?;
    if *first > 100 {
        return Err(format!("bad frame byte {first}"));
    }
    Ok(u32::from(*first))
}

#[cfg(test)]
mod tests {
    #[test]
    fn decodes_a_small_byte() {
        assert_eq!(super::decode(&[7]).unwrap(), 7);
    }
}
