//! Seeded fixture: serve's sanctioned deadline module. `Instant` here is
//! the sanctioned read — the wall-clock rule allowlists exactly this path
//! (alongside telemetry's span.rs/trace.rs), so this file must produce no
//! findings.

use std::time::Instant;

/// The one place the serving stack reads the monotonic clock.
pub fn deadline_anchor() -> Instant {
    Instant::now()
}
