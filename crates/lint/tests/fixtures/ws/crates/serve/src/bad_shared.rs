//! Fixture: ad-hoc synchronization outside the sanctioned concurrency
//! modules — `shared-state` territory. A lock, an atomic with its
//! `Ordering`, and a `static mut` must each be flagged here.

use std::sync::Mutex;

pub static mut LAST_SEEN: u32 = 0;

pub struct Cache {
    inner: Mutex<Vec<u32>>,
}

pub fn bump(n: &std::sync::atomic::AtomicUsize) -> usize {
    n.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}
