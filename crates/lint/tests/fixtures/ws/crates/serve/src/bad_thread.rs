//! Fixture: raw thread creation in the serve crate outside rt.rs.
//!
//! Both call sites below must be flagged by `raw-thread` — a handler
//! thread spawned here would detach from the shutdown latch and the
//! serve-thread naming scheme that rt.rs enforces.

/// A connection handler spawned outside the runtime module.
pub fn rogue_handler() {
    let handle = std::thread::spawn(|| 6 * 7);
    let _ = handle.join();
}

/// A batch drain using a scoped region instead of the rt worker.
pub fn rogue_drain(rows: &mut [u64]) {
    std::thread::scope(|s| {
        for row in rows.iter_mut() {
            s.spawn(move || {
                *row += 1;
            });
        }
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helpers_may_spawn() {
        let h = std::thread::spawn(|| 9u8);
        assert_eq!(h.join().ok(), Some(9));
    }
}
