//! Fixture: serve's sanctioned service-thread owner. `raw-thread`
//! allowlists this path, so the spawn below must stay clean without any
//! `lint.allow` entry — mirroring the real `crates/serve/src/rt.rs`.

/// Spawns a service thread; only this module (and the tensor pool) may
/// create threads.
pub fn start_service() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}

/// A lock inside the sanctioned module: `shared-state` allowlists this
/// path too, so this must stay clean without any `lint.allow` entry.
pub struct Latch {
    set: std::sync::Mutex<bool>,
}
