//! Seeded fixture: robustness and hygiene violations in a library crate.

pub fn noisy(x: f32) -> f32 {
    println!("debug: {x}");
    if x == 0.5 {
        return 0.0;
    }
    x
}

pub fn risky(v: &[f32]) -> f32 {
    // TODO: bounds-check instead of expecting
    *v.first().expect("non-empty")
}

pub fn raw_read(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn checked_read(p: *const u8) -> u8 {
    // SAFETY: callers guarantee `p` is valid for reads per this fn's docs.
    unsafe { *p }
}
