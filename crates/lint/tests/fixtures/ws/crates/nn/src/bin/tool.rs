//! Seeded fixture: a binary — printing here is its job, not a finding.

fn main() {
    println!("binaries may print");
    eprintln!("and write progress to stderr");
}
