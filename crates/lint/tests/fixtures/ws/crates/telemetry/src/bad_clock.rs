//! Seeded fixture: a clock read in the telemetry crate but *outside* the
//! clock-owning modules (span.rs / trace.rs). The wall-clock allowlist is
//! per-file, not per-crate, so this must still be flagged — otherwise any
//! telemetry helper could smuggle in an unguarded `Instant::now()` that
//! bypasses the enable flags and the trace epoch.

use std::time::Instant;

pub fn sneaky_timestamp() -> u128 {
    Instant::now().elapsed().as_nanos()
}
