//! Seeded fixture: the clock-owning span module. `Instant` here is the
//! sanctioned read — the wall-clock rule allowlists exactly this path
//! (and trace.rs), so this file must produce no findings.

use std::time::Instant;

pub fn sanctioned_timestamp() -> Instant {
    Instant::now()
}
