//! Seeded bad fixture for the chaos module's lint coverage: the fault
//! plan is on both the panic path (it wraps live request sockets) and
//! the determinism path (replayable plans must not depend on hash
//! order). Lib code here violates both; the test module stays exempt.

pub struct PlanTable {
    // hash-iteration: a replayable plan keyed by unordered hashing.
    actions: std::collections::HashMap<u64, u8>,
}

impl PlanTable {
    pub fn action(&self, conn: u64) -> u8 {
        // panic-path: a missing entry must be a typed error, not a crash.
        let a = self.actions.get(&conn).unwrap();
        match a {
            0..=4 => *a,
            // panic-path: attacker-shaped bytes can reach here.
            _ => unreachable!("plan actions are always 0..=4"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_only_unwrap_is_fine() {
        let table = PlanTable {
            actions: [(0u64, 1u8)].into_iter().collect(),
        };
        assert_eq!(table.actions.get(&0).copied().unwrap(), 1);
    }
}
