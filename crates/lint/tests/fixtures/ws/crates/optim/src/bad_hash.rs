//! Seeded fixture: determinism violations in an optimizer path.
//! Linted only by the dropback-lint integration tests — never by the
//! workspace self-check (the walker skips `fixtures/` directories).

use std::collections::HashMap;
use std::time::Instant;

pub struct BadTracked {
    tracked: HashMap<usize, f32>,
}

impl BadTracked {
    pub fn sum(&self) -> f32 {
        let start = Instant::now();
        let mut total = 0.0;
        for (_, v) in self.tracked.iter() {
            total += v;
        }
        let _ = start.elapsed();
        total
    }

    pub fn first(&self) -> f32 {
        *self.tracked.values().next().unwrap()
    }
}

// The strings and comments below mention HashMap::iter(), .unwrap() and
// Instant::now() — none of that text is code, so none of it may be flagged.
pub fn decoys() -> &'static str {
    // a comment naming HashMap and .unwrap() and println!("x")
    "HashMap iteration with .unwrap() and Instant::now() inside a string"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
