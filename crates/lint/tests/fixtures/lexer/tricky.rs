//! Lexer torture fixture: every construct here is designed to trip a
//! naive scanner. The integration tests assert none of the decoy text in
//! strings/comments is flagged and the real violation after them is.

pub const RAW: &str = r#"not code: foo.unwrap() and println!("x") and HashMap"#;
pub const RAW2: &str = r##"nested "# quote: SystemTime::now().unwrap()"##;
pub const PLAIN: &str = "escaped \" quote then .unwrap() text";
pub const BYTES: &[u8] = b"bytes with .expect(\"msg\") inside";

/* outer comment /* nested comment with .unwrap() and panic!("no") */
   still inside the outer comment: println!("hidden") */

pub fn chars() -> (char, char, char) {
    let quote = '"';
    let escape = '\'';
    let newline = '\n';
    (quote, escape, newline)
}

pub fn lifetimes<'a>(x: &'a str) -> &'a str {
    // 'a above must lex as a lifetime, not an unterminated char literal
    x
}

pub fn real_violation(v: Option<u32>) -> u32 {
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_unwrap() {
        Some(3u8).unwrap();
    }
}
