//! Fixture tests: the lexer torture file and the seeded bad workspace.
//!
//! `tests/fixtures/lexer/tricky.rs` packs raw strings, nested block
//! comments, char literals, and a `#[cfg(test)]` module around one real
//! violation; these tests pin down that nothing inside a string or
//! comment is ever flagged and nothing after one is ever missed.

use dropback_lint::lexer::{tokenize, TokenKind};
use dropback_lint::{analyze_source, check_workspace, Allowlist};
use std::path::Path;

const TRICKY: &str = include_str!("fixtures/lexer/tricky.rs");

#[test]
fn raw_strings_lex_as_single_tokens() {
    let tokens = tokenize(TRICKY);
    let raws: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::RawStr)
        .collect();
    assert_eq!(raws.len(), 2, "RAW and RAW2");
    assert!(raws[0].text.contains("foo.unwrap()"));
    assert!(raws[1].text.contains(r##"nested "# quote"##));
}

#[test]
fn nested_block_comment_is_one_token() {
    let tokens = tokenize(TRICKY);
    let nested = tokens
        .iter()
        .find(|t| t.kind == TokenKind::BlockComment && t.text.contains("nested comment"))
        .expect("nested block comment token");
    // The whole nested construct — including the inner close — is one
    // comment; the decoy macros inside never become idents.
    assert!(nested.text.contains(r#"println!("hidden")"#));
}

#[test]
fn char_literals_do_not_derail_string_tracking() {
    let tokens = tokenize(TRICKY);
    let chars: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .collect();
    // '"', '\'', '\n'
    assert_eq!(chars.len(), 3);
    // And lifetimes survive as lifetimes, not unterminated chars.
    assert!(tokens
        .iter()
        .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
}

#[test]
fn decoys_in_strings_and_comments_are_never_flagged() {
    let findings = analyze_source("crates/nn/src/tricky.rs", TRICKY);
    let errors: Vec<_> = findings
        .iter()
        .filter(|f| f.severity == dropback_lint::Severity::Error)
        .collect();
    // Exactly one real violation: `v.unwrap()` in `real_violation` —
    // none of the unwrap/println/SystemTime text in strings or comments,
    // and not the test-module unwrap.
    assert_eq!(
        errors.len(),
        1,
        "expected exactly the real_violation finding, got: {:?}",
        errors
    );
    assert_eq!(errors[0].rule, "no-unwrap");
    let unwrap_line = TRICKY
        .lines()
        .position(|l| l.contains("v.unwrap()"))
        .expect("fixture has the violation")
        + 1;
    assert_eq!(errors[0].line as usize, unwrap_line);
}

#[test]
fn cfg_test_modules_are_recognized_after_tricky_tokens() {
    // The #[cfg(test)] module sits after every raw string and comment in
    // the file; `test_only_unwrap` must still be seen as test code.
    let findings = analyze_source("crates/nn/src/tricky.rs", TRICKY);
    assert!(
        !findings.iter().any(|f| {
            f.line > 0
                && TRICKY
                    .lines()
                    .nth(f.line as usize - 1)
                    .unwrap_or("")
                    .contains("3u8")
        }),
        "test-module unwrap must not be flagged"
    );
}

#[test]
fn seeded_workspace_yields_expected_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let report = check_workspace(&root, &Allowlist::empty()).expect("fixture ws lints");
    assert!(report.has_failures());

    let hits = |rule: &str| {
        report
            .findings
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| f.path.clone())
            .collect::<Vec<_>>()
    };
    // bad_hash.rs: HashMap use + field type, both outside the test
    // module. core/chaos.rs: one HashMap field — the fault-plan file is
    // itself on the determinism path.
    assert_eq!(hits("hash-iteration").len(), 3);
    assert!(hits("hash-iteration")
        .iter()
        .all(|p| p == "crates/optim/src/bad_hash.rs" || p == "crates/core/src/chaos.rs"));
    assert!(hits("hash-iteration")
        .iter()
        .any(|p| p == "crates/core/src/chaos.rs"));
    // bad_hash.rs: Instant import + Instant::now(); the bad_clock.rs pair
    // proves the allowlist is per-file — Instant outside the sanctioned
    // modules is still flagged (import + now()) in both the telemetry and
    // serve crates, while the fixture span.rs and serve clock.rs (also
    // using Instant) stay clean.
    assert_eq!(hits("wall-clock").len(), 6);
    assert!(hits("wall-clock")
        .iter()
        .any(|p| p == "crates/telemetry/src/bad_clock.rs"));
    assert!(hits("wall-clock")
        .iter()
        .any(|p| p == "crates/serve/src/bad_clock.rs"));
    assert!(!hits("wall-clock")
        .iter()
        .any(|p| p == "crates/telemetry/src/span.rs"));
    assert!(!hits("wall-clock")
        .iter()
        .any(|p| p == "crates/serve/src/clock.rs"));
    // bad_hash.rs first() + nn lib.rs expect; the test-module unwrap and
    // every decoy in strings/comments stay clean. bad_panic.rs unwraps
    // are owned by panic-path, so they do NOT double-count here.
    assert_eq!(hits("no-unwrap").len(), 2);
    // nn lib.rs println!; the binary tool.rs may print freely.
    assert_eq!(hits("no-print"), vec!["crates/nn/src/lib.rs"]);
    assert_eq!(hits("float-eq"), vec!["crates/nn/src/lib.rs"]);
    // nn lib.rs: raw_read is missing its SAFETY comment AND unconfined;
    // checked_read is documented but still unconfined. bad_unsafe.rs:
    // two undocumented, unconfined blocks (a raw deref and an intrinsics
    // block) = four findings. The documented unsafe — including the
    // justified intrinsics in the sanctioned simd.rs fixture — stays
    // clean.
    assert_eq!(hits("unsafe-audit").len(), 7);
    assert_eq!(
        hits("unsafe-audit")
            .iter()
            .filter(|p| *p == "crates/nn/src/lib.rs")
            .count(),
        3
    );
    assert_eq!(
        hits("unsafe-audit")
            .iter()
            .filter(|p| *p == "crates/tensor/src/bad_unsafe.rs")
            .count(),
        4
    );
    assert!(!hits("unsafe-audit")
        .iter()
        .any(|p| p == "crates/tensor/src/simd.rs"));
    // bad_detect.rs probes the CPU outside simd.rs; the fixture simd.rs
    // (which also calls is_x86_feature_detected!) is the sanctioned home
    // and stays clean.
    assert_eq!(
        hits("feature-detect"),
        vec!["crates/tensor/src/bad_detect.rs"]
    );
    assert!(!hits("feature-detect")
        .iter()
        .any(|p| p == "crates/tensor/src/simd.rs"));
    // bad_panic.rs: unwrap + panic! + expect on the request path;
    // core/chaos.rs: unwrap + unreachable! — the fault-injection file
    // wraps live sockets, so it is on the panic path too. The
    // error-propagating good_panic.rs (including its test-module unwrap)
    // stays clean.
    assert_eq!(hits("panic-path").len(), 5);
    assert!(hits("panic-path")
        .iter()
        .all(|p| p == "crates/serve/src/bad_panic.rs" || p == "crates/core/src/chaos.rs"));
    assert_eq!(
        hits("panic-path")
            .iter()
            .filter(|p| *p == "crates/core/src/chaos.rs")
            .count(),
        2
    );
    // bad_shared.rs: static mut + two Mutex sites + an atomic type + its
    // Ordering::Relaxed site; the Mutex inside the sanctioned rt.rs
    // fixture stays clean.
    assert_eq!(hits("shared-state").len(), 5);
    assert!(hits("shared-state")
        .iter()
        .all(|p| p == "crates/serve/src/bad_shared.rs"));
    assert!(!hits("shared-state")
        .iter()
        .any(|p| p == "crates/serve/src/rt.rs"));
    // Each bad_thread.rs: one spawn + one scope outside the sanctioned
    // owners; the fixture pool.rs and serve rt.rs (sanctioned owners) and
    // the test-module spawns stay clean.
    assert_eq!(hits("raw-thread").len(), 4);
    assert!(hits("raw-thread")
        .iter()
        .all(|p| p == "crates/tensor/src/bad_thread.rs" || p == "crates/serve/src/bad_thread.rs"));
    assert!(hits("raw-thread")
        .iter()
        .any(|p| p == "crates/serve/src/bad_thread.rs"));
    assert!(!hits("raw-thread")
        .iter()
        .any(|p| p == "crates/serve/src/rt.rs"));
    // One TODO marker, informational.
    assert_eq!(report.todos.len(), 1);
}

#[test]
fn allowlist_suppresses_seeded_findings_with_justification() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let allow = Allowlist::parse(
        "hash-iteration crates/optim/src/bad_hash.rs -- fixture exercises suppression\n\
         wall-clock crates/optim/src/bad_hash.rs -- fixture exercises suppression\n\
         wall-clock crates/telemetry/src/bad_clock.rs -- fixture exercises suppression\n\
         wall-clock crates/serve/src/bad_clock.rs -- fixture exercises suppression\n\
         no-unwrap crates/ -- fixture exercises suppression\n\
         no-print crates/nn/src/lib.rs -- fixture exercises suppression\n\
         float-eq crates/nn/src/lib.rs -- fixture exercises suppression\n\
         unsafe-audit crates/nn/src/lib.rs -- fixture exercises suppression\n\
         unsafe-audit crates/tensor/src/bad_unsafe.rs -- fixture exercises suppression\n\
         feature-detect crates/tensor/src/bad_detect.rs -- fixture exercises suppression\n\
         panic-path crates/serve/src/bad_panic.rs -- fixture exercises suppression\n\
         panic-path crates/core/src/chaos.rs -- fixture exercises suppression\n\
         hash-iteration crates/core/src/chaos.rs -- fixture exercises suppression\n\
         shared-state crates/serve/src/bad_shared.rs -- fixture exercises suppression\n\
         raw-thread crates/tensor/src/bad_thread.rs -- fixture exercises suppression\n\
         raw-thread crates/serve/src/bad_thread.rs -- fixture exercises suppression\n",
    )
    .expect("well-formed allowlist");
    let report = check_workspace(&root, &allow).expect("fixture ws lints");
    assert!(!report.has_failures(), "all findings suppressed");
    assert_eq!(report.suppressed.len(), 35);
    assert!(report.unused_allows.is_empty());
}

#[test]
fn allowlist_entries_naming_unknown_rules_are_refused() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    // `unsafe-safety` was the pre-structural rule id; a stale entry for it
    // must be a hard error, not a silently-dead suppression.
    let allow = Allowlist::parse("unsafe-safety crates/nn/src/lib.rs -- renamed rule\n")
        .expect("well-formed allowlist");
    let err = check_workspace(&root, &allow).unwrap_err();
    assert!(err.contains("unknown rule id 'unsafe-safety'"), "{err}");
    assert!(err.contains("unsafe-audit"), "error lists known ids: {err}");
}

#[test]
fn stale_allow_entries_are_reported() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let allow = Allowlist::parse(
        "no-print crates/nn/src/lib.rs -- real suppression\n\
         wall-clock crates/data/src/ -- nothing there uses the clock\n",
    )
    .expect("well-formed allowlist");
    let report = check_workspace(&root, &allow).expect("fixture ws lints");
    assert_eq!(report.unused_allows.len(), 1);
    assert_eq!(report.unused_allows[0].path_prefix, "crates/data/src/");
}
