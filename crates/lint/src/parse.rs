//! The structural layer: a recursive-descent pass over the token stream
//! that builds a per-file item model — modules, fns, impl/trait blocks,
//! `unsafe` blocks, statics — with accurate token spans and ancestry.
//!
//! The flat token rules ([`crate::rules`]) answer "does this pattern
//! appear"; the item model answers "*where* does it appear": which fn an
//! `unwrap` sits in, whether an `unsafe` block is a block or an `unsafe
//! fn`, whether a `static` is `static mut`. It is not a Rust parser — it
//! tracks exactly the structure the rules need and deliberately shrugs at
//! everything else (expressions, types, generics are skipped by balanced
//! bracket matching). Macro bodies are walked as ordinary code: a fn
//! defined by a macro is still a fn worth auditing.
//!
//! The parser is single-pass and never backtracks more than a couple of
//! tokens of lookahead, so it adds O(tokens) to the per-file cost — the
//! lint-timing budget in `scripts/check.sh` pins that this stays cheap.

use crate::lexer::{Token, TokenKind};

/// What kind of item an [`Item`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { ... }` (or `mod name;`).
    Mod,
    /// `fn name(...)` — free, associated, or nested.
    Fn,
    /// `impl Type { ... }` / `impl Trait for Type { ... }`.
    Impl,
    /// `trait Name { ... }`.
    Trait,
    /// `struct Name ...`.
    Struct,
    /// `enum Name { ... }`.
    Enum,
    /// `union Name { ... }`.
    Union,
    /// `static NAME: T = ...;` (`is_mut_static` marks `static mut`).
    Static,
    /// `const NAME: T = ...;` — item or associated const.
    Const,
    /// `type Name = ...;` — alias or associated type.
    TypeAlias,
    /// `extern "ABI" { ... }` foreign block.
    ExternBlock,
}

impl ItemKind {
    /// The lowercase keyword-ish label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            ItemKind::Mod => "mod",
            ItemKind::Fn => "fn",
            ItemKind::Impl => "impl",
            ItemKind::Trait => "trait",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Union => "union",
            ItemKind::Static => "static",
            ItemKind::Const => "const",
            ItemKind::TypeAlias => "type",
            ItemKind::ExternBlock => "extern block",
        }
    }
}

/// One parsed item with its span and ancestry.
#[derive(Debug, Clone)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Its name (`submit`, `BatchQueue`); for impl blocks, the rendered
    /// header (`Drop for Pool`); empty when no name applies.
    pub name: String,
    /// Declared `unsafe` (`unsafe fn`, `unsafe impl`, `unsafe trait`,
    /// `unsafe extern`).
    pub is_unsafe: bool,
    /// `static mut` — mutable global state.
    pub is_mut_static: bool,
    /// The item's doc comments contain a `# Safety` section or a
    /// `SAFETY:` marker.
    pub has_safety_doc: bool,
    /// Index of the innermost enclosing item in [`ItemModel::items`].
    pub parent: Option<usize>,
    /// First token of the item (its leading modifier or keyword).
    pub first_tok: usize,
    /// Token range of the `{ ... }` body, braces inclusive; `None` for
    /// bodyless items (`fn f();`, `static X: T = 0;`, `mod m;`).
    pub body: Option<(usize, usize)>,
    /// Last token of the item (closing `}` or terminating `;`).
    pub end_tok: usize,
}

/// One `unsafe { ... }` expression block.
#[derive(Debug, Clone)]
pub struct UnsafeBlock {
    /// The `unsafe` keyword token.
    pub kw_tok: usize,
    /// The opening `{`.
    pub open: usize,
    /// The matching `}`.
    pub close: usize,
    /// Index of the enclosing fn in [`ItemModel::items`], if any.
    pub enclosing_fn: Option<usize>,
}

/// The per-file item model.
#[derive(Debug, Default)]
pub struct ItemModel {
    /// Every item, outer-before-inner (an item is pushed when its body
    /// opens, so parents always precede children).
    pub items: Vec<Item>,
    /// Every `unsafe { ... }` expression block, in source order.
    pub unsafe_blocks: Vec<UnsafeBlock>,
}

impl ItemModel {
    /// The innermost item whose span contains token index `tok`.
    pub fn enclosing_item(&self, tok: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|it| it.first_tok <= tok && tok <= it.end_tok)
            .max_by_key(|it| it.first_tok)
    }

    /// The innermost fn whose span contains token index `tok`.
    pub fn enclosing_fn(&self, tok: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|it| it.kind == ItemKind::Fn && it.first_tok <= tok && tok <= it.end_tok)
            .max_by_key(|it| it.first_tok)
    }

    /// A short human label for where token `tok` sits — `` in fn `submit` ``,
    /// `` in impl `Drop for Pool` ``, or `at module scope` — for use at the
    /// end of a diagnostic message.
    pub fn context_label(&self, tok: usize) -> String {
        match self.enclosing_fn(tok).or_else(|| self.enclosing_item(tok)) {
            Some(it) if !it.name.is_empty() => {
                format!("in {} `{}`", it.kind.label(), it.name)
            }
            Some(it) => format!("in {}", it.kind.label()),
            None => "at module scope".to_string(),
        }
    }
}

/// Whether a comment token adjacent to `line` (same line or up to three
/// lines above) carries a `SAFETY:` justification. Shared by the
/// unsafe-audit rule for both blocks and `unsafe fn` headers.
pub fn safety_comment_near(tokens: &[Token], line: u32) -> bool {
    tokens.iter().any(|c| {
        c.is_comment() && c.text.contains("SAFETY:") && c.line <= line && c.line + 3 >= line
    })
}

/// An item whose header has been seen but whose body `{` (or terminating
/// `;`) has not arrived yet.
struct PendingItem {
    kind: ItemKind,
    name: String,
    is_unsafe: bool,
    is_mut_static: bool,
    has_safety_doc: bool,
    first_tok: usize,
    kw_tok: usize,
    /// `(`/`[` nesting inside the header, so a `;` inside `[u8; 4]` or a
    /// `{` inside an array-length expression does not end it early.
    depth: usize,
    parent: Option<usize>,
}

/// One open `{` on the parse stack.
enum Frame {
    /// An item body; the index into `ItemModel::items`.
    Item(usize),
    /// An `unsafe { ... }` block; the index into `ItemModel::unsafe_blocks`.
    Unsafe(usize),
    /// Any other brace pair — expression block, match body, struct
    /// literal, macro body.
    Block,
}

/// Builds the item model for a token stream.
pub fn parse(tokens: &[Token]) -> ItemModel {
    let mut model = ItemModel::default();
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending: Option<PendingItem> = None;
    // Modifiers buffered for the next item or unsafe block: the index of
    // the first one (item span start), a seen `unsafe` keyword, and a
    // seen `extern` (so `extern "C" {` opens a foreign block, not an
    // expression block).
    let mut mod_start: Option<usize> = None;
    let mut saw_unsafe: Option<usize> = None;
    let mut saw_extern = false;
    // Comment tokens accumulated since the last statement boundary —
    // doc comments here belong to the next item.
    let mut doc_run: Vec<usize> = Vec::new();

    fn innermost_item(stack: &[Frame]) -> Option<usize> {
        stack.iter().rev().find_map(|f| match f {
            Frame::Item(i) => Some(*i),
            _ => None,
        })
    }

    fn innermost_fn(stack: &[Frame], items: &[Item]) -> Option<usize> {
        stack.iter().rev().find_map(|f| match f {
            Frame::Item(i) if items[*i].kind == ItemKind::Fn => Some(*i),
            _ => None,
        })
    }

    // The next non-comment token at or after `from`.
    fn next_sig(tokens: &[Token], from: usize) -> Option<(usize, &Token)> {
        tokens
            .iter()
            .enumerate()
            .skip(from)
            .find(|(_, t)| !t.is_comment())
    }

    let safety_doc = |run: &[usize]| {
        run.iter().any(|&c| {
            let text = &tokens[c].text;
            (text.starts_with("///") || text.starts_with("/**") || text.starts_with("//!"))
                && (text.contains("# Safety") || text.contains("SAFETY:"))
        })
    };

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() {
            doc_run.push(i);
            i += 1;
            continue;
        }

        // Inside an item header: skip to its body `{` or terminating `;`.
        if let Some(mut p) = pending.take() {
            if t.is_punct(";") && p.depth == 0 {
                model.items.push(finish(p, tokens, None, i));
            } else if t.is_punct("{") && p.depth == 0 {
                let idx = model.items.len();
                model.items.push(finish(p, tokens, Some((i, i)), i));
                stack.push(Frame::Item(idx));
            } else {
                if t.is_punct("(") || t.is_punct("[") {
                    p.depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    p.depth = p.depth.saturating_sub(1);
                }
                pending = Some(p);
            }
            i += 1;
            continue;
        }

        // Attributes `#[...]` / `#![...]`: skip whole, keep the doc run
        // (docs legitimately precede attributes).
        if t.is_punct("#") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|n| n.is_punct("!")) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|n| n.is_punct("[")) {
                i = skip_balanced(tokens, j, "[", "]");
                continue;
            }
        }

        // Modifier keywords buffer up for the item (or unsafe block) that
        // follows; anything else is a statement boundary that clears them.
        if t.is_ident("pub") {
            mod_start.get_or_insert(i);
            // `pub(crate)` / `pub(in path)`: the restriction parens are
            // part of the modifier, not an expression.
            if let Some((j, n)) = next_sig(tokens, i + 1) {
                if n.is_punct("(") {
                    i = skip_balanced(tokens, j, "(", ")");
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("async") {
            mod_start.get_or_insert(i);
            i += 1;
            continue;
        }
        if t.is_ident("unsafe") {
            mod_start.get_or_insert(i);
            saw_unsafe = Some(i);
            i += 1;
            continue;
        }
        if t.is_ident("extern") {
            // `extern "C" fn` (modifier), `extern "C" { ... }` (foreign
            // block); `extern crate x;` falls through to the boundary arm.
            mod_start.get_or_insert(i);
            saw_extern = true;
            if let Some((j, n)) = next_sig(tokens, i + 1) {
                if matches!(n.kind, TokenKind::Str | TokenKind::RawStr) {
                    i = j + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }

        // Item keywords.
        let item_start = |kw: usize| mod_start.unwrap_or(kw);
        let named_item = |kind: ItemKind, kw: usize| -> Option<PendingItem> {
            let (_, name) = next_sig(tokens, kw + 1)?;
            if name.kind != TokenKind::Ident {
                return None;
            }
            Some(PendingItem {
                kind,
                name: name.text.clone(),
                is_unsafe: saw_unsafe.is_some(),
                is_mut_static: false,
                has_safety_doc: safety_doc(&doc_run),
                first_tok: item_start(kw),
                kw_tok: kw,
                depth: 0,
                parent: innermost_item(&stack),
            })
        };

        let mut started = None;
        if t.is_ident("mod") || t.is_ident("struct") || t.is_ident("enum") || t.is_ident("trait") {
            let kind = match t.text.as_str() {
                "mod" => ItemKind::Mod,
                "struct" => ItemKind::Struct,
                "enum" => ItemKind::Enum,
                _ => ItemKind::Trait,
            };
            started = named_item(kind, i);
        } else if t.is_ident("fn") || t.is_ident("union") {
            // `fn` without a following name is a fn-pointer type; `union`
            // without one is the odd fn named union being called.
            let kind = if t.text == "fn" {
                ItemKind::Fn
            } else {
                ItemKind::Union
            };
            started = named_item(kind, i);
        } else if t.is_ident("type") {
            started = named_item(ItemKind::TypeAlias, i);
        } else if t.is_ident("static") {
            let mut p = None;
            if let Some((j, n)) = next_sig(tokens, i + 1) {
                let (name_at, is_mut) = if n.is_ident("mut") {
                    (j + 1, true)
                } else {
                    (j, false)
                };
                if let Some((_, name)) = next_sig(tokens, name_at) {
                    if name.kind == TokenKind::Ident {
                        p = Some(PendingItem {
                            kind: ItemKind::Static,
                            name: name.text.clone(),
                            is_unsafe: saw_unsafe.is_some(),
                            is_mut_static: is_mut,
                            has_safety_doc: safety_doc(&doc_run),
                            first_tok: item_start(i),
                            kw_tok: i,
                            depth: 0,
                            parent: innermost_item(&stack),
                        });
                    }
                }
            }
            started = p;
        } else if t.is_ident("const") {
            // `const NAME: T` is an item; `const fn` is a modifier;
            // `*const T` and `const { ... }` are neither.
            if let Some((j, n)) = next_sig(tokens, i + 1) {
                if n.is_ident("fn") {
                    mod_start.get_or_insert(i);
                    i += 1;
                    continue;
                }
                if n.kind == TokenKind::Ident
                    && next_sig(tokens, j + 1).is_some_and(|(_, c)| c.is_punct(":"))
                {
                    started = named_item(ItemKind::Const, i);
                }
            }
        } else if t.is_ident("impl") {
            started = Some(PendingItem {
                kind: ItemKind::Impl,
                name: String::new(),
                is_unsafe: saw_unsafe.is_some(),
                is_mut_static: false,
                has_safety_doc: safety_doc(&doc_run),
                first_tok: item_start(i),
                kw_tok: i,
                depth: 0,
                parent: innermost_item(&stack),
            });
        }

        if let Some(p) = started {
            pending = Some(p);
            mod_start = None;
            saw_unsafe = None;
            saw_extern = false;
            doc_run.clear();
            i += 1;
            continue;
        }

        if t.is_punct("{") {
            if saw_extern {
                // `extern "C" { ... }` (possibly `unsafe extern`).
                let idx = model.items.len();
                model.items.push(Item {
                    kind: ItemKind::ExternBlock,
                    name: String::new(),
                    is_unsafe: saw_unsafe.is_some(),
                    is_mut_static: false,
                    has_safety_doc: safety_doc(&doc_run),
                    parent: innermost_item(&stack),
                    first_tok: mod_start.unwrap_or(i),
                    body: Some((i, i)),
                    end_tok: i,
                });
                stack.push(Frame::Item(idx));
            } else if let Some(kw) = saw_unsafe {
                let idx = model.unsafe_blocks.len();
                model.unsafe_blocks.push(UnsafeBlock {
                    kw_tok: kw,
                    open: i,
                    close: i,
                    enclosing_fn: innermost_fn(&stack, &model.items),
                });
                stack.push(Frame::Unsafe(idx));
            } else {
                stack.push(Frame::Block);
            }
        } else if t.is_punct("}") {
            match stack.pop() {
                Some(Frame::Item(idx)) => {
                    let it = &mut model.items[idx];
                    if let Some(b) = it.body.as_mut() {
                        b.1 = i;
                    }
                    it.end_tok = i;
                }
                Some(Frame::Unsafe(idx)) => model.unsafe_blocks[idx].close = i,
                Some(Frame::Block) | None => {}
            }
        }

        // Statement boundary: this token starts no item, so any buffered
        // modifiers and docs belonged to plain code.
        mod_start = None;
        saw_unsafe = None;
        saw_extern = false;
        doc_run.clear();
        i += 1;
    }

    // Unterminated frames (unbalanced braces from macro-heavy code): the
    // file's end bounds every still-open span.
    let last = tokens.len().saturating_sub(1);
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Item(idx) => {
                let it = &mut model.items[idx];
                if let Some(b) = it.body.as_mut() {
                    b.1 = last;
                }
                it.end_tok = last;
            }
            Frame::Unsafe(idx) => model.unsafe_blocks[idx].close = last,
            Frame::Block => {}
        }
    }
    if let Some(p) = pending.take() {
        model.items.push(finish(p, tokens, None, last));
    }
    model
}

/// Converts a finished header into an [`Item`], rendering impl-block
/// names from the header tokens.
fn finish(p: PendingItem, tokens: &[Token], body: Option<(usize, usize)>, end: usize) -> Item {
    let name = if p.kind == ItemKind::Impl {
        render_impl_header(tokens, p.kw_tok, body.map_or(end, |(open, _)| open))
    } else {
        p.name
    };
    Item {
        kind: p.kind,
        name,
        is_unsafe: p.is_unsafe,
        is_mut_static: p.is_mut_static,
        has_safety_doc: p.has_safety_doc,
        parent: p.parent,
        first_tok: p.first_tok,
        body,
        end_tok: end,
    }
}

/// Renders an impl-block header (`Drop for Pool`) from the tokens between
/// the `impl` keyword and its body, skipping generics and where clauses
/// and capping the length so diagnostics stay one-line.
fn render_impl_header(tokens: &[Token], kw: usize, open: usize) -> String {
    let mut out = String::new();
    let mut angle = 0usize;
    let mut words = 0usize;
    for t in tokens.iter().take(open).skip(kw + 1) {
        if t.is_comment() {
            continue;
        }
        if t.is_punct("<") {
            angle += 1;
            continue;
        }
        if t.is_punct(">") {
            angle = angle.saturating_sub(1);
            continue;
        }
        if angle > 0 {
            continue;
        }
        if t.is_ident("where") {
            break;
        }
        if t.kind == TokenKind::Ident {
            if words >= 6 {
                out.push('…');
                break;
            }
            if !out.is_empty() && !out.ends_with("::") {
                out.push(' ');
            }
            words += 1;
        }
        out.push_str(&t.text);
        if out.len() > 60 {
            out.push('…');
            break;
        }
    }
    out
}

/// From the index of an opening delimiter, the index just past its
/// balanced closer (comment tokens do not participate).
fn skip_balanced(tokens: &[Token], open: usize, l: &str, r: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct(l) {
            depth += 1;
        } else if t.is_punct(r) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn model_of(src: &str) -> (Vec<Token>, ItemModel) {
        let tokens = tokenize(src);
        let model = parse(&tokens);
        (tokens, model)
    }

    fn item<'m>(m: &'m ItemModel, name: &str) -> &'m Item {
        m.items
            .iter()
            .find(|i| i.name == name)
            .unwrap_or_else(|| panic!("no item named {name}: {:?}", m.items))
    }

    #[test]
    fn nested_items_carry_parents_and_spans() {
        let src =
            "mod outer {\n    struct S { x: u32 }\n    fn f() {\n        fn inner() {}\n    }\n}";
        let (tokens, m) = model_of(src);
        let outer = item(&m, "outer");
        let f = item(&m, "f");
        let inner = item(&m, "inner");
        assert_eq!(outer.kind, ItemKind::Mod);
        assert_eq!(item(&m, "S").kind, ItemKind::Struct);
        assert_eq!(f.kind, ItemKind::Fn);
        assert!(inner.first_tok > f.first_tok && inner.end_tok < f.end_tok);
        assert_eq!(outer.parent, None);
        assert_eq!(m.items[inner.parent.unwrap()].name, "f");
        // The mod's span covers the whole file body.
        assert_eq!(outer.end_tok, tokens.len() - 1);
    }

    #[test]
    fn unsafe_block_knows_its_enclosing_fn() {
        let src = "fn outer() {\n    let x = unsafe { read(p) };\n    unsafe { write(p) }\n}";
        let (_, m) = model_of(src);
        assert_eq!(m.unsafe_blocks.len(), 2);
        for b in &m.unsafe_blocks {
            assert_eq!(m.items[b.enclosing_fn.unwrap()].name, "outer");
            assert!(b.open < b.close);
        }
        assert!(m.context_label(m.unsafe_blocks[0].kw_tok).contains("outer"));
    }

    #[test]
    fn unsafe_fn_and_impl_are_marked() {
        let src =
            "pub unsafe fn raw() {}\nunsafe impl Send for X {}\nunsafe trait T {}\nfn safe() {}";
        let (_, m) = model_of(src);
        assert!(item(&m, "raw").is_unsafe);
        assert!(item(&m, "T").is_unsafe);
        assert!(!item(&m, "safe").is_unsafe);
        let im = m
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Impl)
            .expect("impl parsed");
        assert!(im.is_unsafe);
        assert_eq!(im.name, "Send for X");
        assert!(m.unsafe_blocks.is_empty(), "declarations are not blocks");
    }

    #[test]
    fn safety_doc_sections_are_detected() {
        let src = "/// Reads raw.\n///\n/// # Safety\n///\n/// `p` must be valid.\npub unsafe fn raw(p: *const u8) {}\n/// No section.\npub unsafe fn bare() {}";
        let (_, m) = model_of(src);
        assert!(item(&m, "raw").has_safety_doc);
        assert!(!item(&m, "bare").has_safety_doc);
    }

    #[test]
    fn static_mut_is_distinguished() {
        let src = "static OK: u32 = 0;\nstatic mut BAD: u32 = 0;";
        let (_, m) = model_of(src);
        assert!(!item(&m, "OK").is_mut_static);
        assert!(item(&m, "BAD").is_mut_static);
        assert_eq!(item(&m, "BAD").kind, ItemKind::Static);
    }

    #[test]
    fn fn_pointer_types_and_impl_trait_returns_are_not_items() {
        let src = "fn real(cb: fn(u32) -> u32) -> impl Iterator<Item = u32> { body() }";
        let (_, m) = model_of(src);
        let fns: Vec<_> = m.items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert_eq!(fns.len(), 1, "{:?}", m.items);
        assert_eq!(fns[0].name, "real");
        assert!(
            !m.items.iter().any(|i| i.kind == ItemKind::Impl),
            "-> impl Trait is not an impl block"
        );
    }

    #[test]
    fn const_forms_disambiguate() {
        let src = "const K: usize = 4;\nconst fn cf() {}\nfn f(p: *const u8) -> [u8; 2] { q(p) }";
        let (_, m) = model_of(src);
        assert_eq!(item(&m, "K").kind, ItemKind::Const);
        assert_eq!(item(&m, "cf").kind, ItemKind::Fn);
        // `*const u8` starts no item; the `;` inside `[u8; 2]` does not
        // truncate `f`'s header before its body.
        assert_eq!(item(&m, "f").kind, ItemKind::Fn);
        assert!(item(&m, "f").body.is_some());
        let consts: Vec<_> = m
            .items
            .iter()
            .filter(|i| i.kind == ItemKind::Const)
            .collect();
        assert_eq!(consts.len(), 1);
    }

    #[test]
    fn bodyless_and_braced_items_both_close() {
        let src = "mod decl;\ntrait T { fn req(&self); fn def(&self) {} }\nstruct Tup(u32);";
        let (_, m) = model_of(src);
        assert!(item(&m, "decl").body.is_none());
        assert!(item(&m, "req").body.is_none());
        assert!(item(&m, "def").body.is_some());
        assert!(item(&m, "Tup").body.is_none());
        let t = item(&m, "T");
        assert!(item(&m, "req").first_tok > t.first_tok);
        assert!(item(&m, "req").end_tok < t.end_tok);
    }

    #[test]
    fn extern_blocks_and_extern_fns_parse() {
        let src = "extern \"C\" { fn c_abi(x: u32) -> u32; }\npub extern \"C\" fn exported() {}";
        let (_, m) = model_of(src);
        let blocks: Vec<_> = m
            .items
            .iter()
            .filter(|i| i.kind == ItemKind::ExternBlock)
            .collect();
        assert_eq!(blocks.len(), 1);
        assert_eq!(item(&m, "c_abi").kind, ItemKind::Fn);
        assert_eq!(item(&m, "exported").kind, ItemKind::Fn);
        assert!(
            m.unsafe_blocks.is_empty(),
            "extern braces are not unsafe blocks"
        );
    }

    #[test]
    fn context_label_names_the_innermost_scope() {
        let src = "impl Queue {\n    fn drain(&self) { x(); }\n}\nstatic TOP: u32 = y();";
        let (tokens, m) = model_of(src);
        let x = tokens.iter().position(|t| t.is_ident("x")).unwrap();
        assert_eq!(m.context_label(x), "in fn `drain`");
        let q = tokens.iter().position(|t| t.is_ident("Queue")).unwrap();
        assert_eq!(m.context_label(q), "in impl `Queue`");
        let top = tokens.len() - 1;
        assert_eq!(m.context_label(top), "in static `TOP`");
    }

    #[test]
    fn pub_crate_and_attrs_do_not_derail_headers() {
        let src = "#[derive(Debug)]\npub(crate) struct S { f: u32 }\n#[inline]\npub(in crate::m) fn g() {}";
        let (_, m) = model_of(src);
        assert_eq!(item(&m, "S").kind, ItemKind::Struct);
        assert_eq!(item(&m, "g").kind, ItemKind::Fn);
    }

    #[test]
    fn safety_comment_near_matches_the_three_line_window() {
        let tokens = tokenize("// SAFETY: sound because reasons.\n\n\nlet x = 1;");
        assert!(safety_comment_near(&tokens, 4));
        assert!(!safety_comment_near(&tokens, 5));
    }

    #[test]
    fn macro_generated_fns_are_still_seen() {
        let src =
            "macro_rules! make {\n    ($n:ident) => {\n        fn $n() {}\n    };\n}\nfn real() {}";
        let (_, m) = model_of(src);
        // `fn $n` has no ident name and is skipped; `real` is found.
        assert_eq!(
            m.items
                .iter()
                .filter(|i| i.kind == ItemKind::Fn)
                .map(|i| i.name.as_str())
                .collect::<Vec<_>>(),
            vec!["real"]
        );
    }
}
