//! Findings, the aggregate report, and its human/JSON renderings.

use crate::allow::{AllowEntry, Allowlist};

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the check unless suppressed.
    Error,
    /// Inventory only (TODO/FIXME markers) — never fails the check.
    Info,
}

/// One diagnostic at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (see [`crate::rules::all_rules`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// Error or informational.
    pub severity: Severity,
}

impl Finding {
    /// `path:line:col: [rule] message` — the clickable diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// A suppressed finding together with the allowlist justification.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The original finding.
    pub finding: Finding,
    /// The `lint.allow` justification that silenced it.
    pub justification: String,
}

/// The aggregate result of a workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed error-severity findings — these fail the check.
    pub findings: Vec<Finding>,
    /// Findings silenced by `lint.allow`.
    pub suppressed: Vec<Suppressed>,
    /// TODO/FIXME inventory (informational).
    pub todos: Vec<Finding>,
    /// Allowlist entries that suppressed nothing (stale — worth pruning).
    pub unused_allows: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Routes one finding into the right bucket, consulting `allow`.
    pub fn add(&mut self, finding: Finding, allow: &Allowlist) {
        if finding.severity == Severity::Info {
            self.todos.push(finding);
        } else if let Some(justification) = allow.suppresses(&finding) {
            self.suppressed.push(Suppressed {
                finding,
                justification,
            });
        } else {
            self.findings.push(finding);
        }
    }

    /// Whether the check should exit nonzero.
    pub fn has_failures(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Human-readable rendering: one diagnostic per line plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        for entry in &self.unused_allows {
            out.push_str(&format!(
                "lint.allow:{}: unused suppression for rule '{}' on '{}' — prune it\n",
                entry.source_line, entry.rule, entry.path_prefix
            ));
        }
        out.push_str(&format!(
            "{} finding(s), {} suppressed by lint.allow, {} TODO/FIXME marker(s), \
             {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed.len(),
            self.todos.len(),
            self.files_scanned
        ));
        out
    }

    /// Machine-readable JSON rendering (hand-rolled — the lint tool stays
    /// dependency-free, including on the workspace's own crates).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!("\"failures\":{},", self.findings.len()));
        out.push_str("\"findings\":[");
        push_findings(&mut out, self.findings.iter());
        out.push_str("],\"suppressed\":[");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&finding_json(&s.finding, Some(&s.justification)));
        }
        out.push_str("],\"todos\":[");
        push_findings(&mut out, self.todos.iter());
        out.push_str("],\"unused_allows\":[");
        for (i, e) in self.unused_allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{}}}",
                json_str(&e.rule),
                json_str(&e.path_prefix),
                e.source_line
            ));
        }
        out.push_str("]}");
        out
    }
}

fn push_findings<'a>(out: &mut String, findings: impl Iterator<Item = &'a Finding>) {
    for (i, f) in findings.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&finding_json(f, None));
    }
}

fn finding_json(f: &Finding, justification: Option<&str>) -> String {
    let mut s = format!(
        "{{\"rule\":{},\"path\":{},\"line\":{},\"col\":{},\"message\":{}",
        json_str(f.rule),
        json_str(&f.path),
        f.line,
        f.col,
        json_str(&f.message)
    );
    if let Some(j) = justification {
        s.push_str(&format!(",\"justification\":{}", json_str(j)));
    }
    s.push('}');
    s
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line: 3,
            col: 7,
            message: "msg with \"quotes\"".into(),
            severity: Severity::Error,
        }
    }

    #[test]
    fn render_is_clickable() {
        let f = finding("no-unwrap", "crates/x/src/a.rs");
        assert!(f.render().starts_with("crates/x/src/a.rs:3:7: [no-unwrap]"));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_buckets_and_json_shape() {
        let allow = Allowlist::parse("no-unwrap crates/x/src/a.rs -- fine here\n").unwrap();
        let mut r = Report {
            files_scanned: 2,
            ..Report::default()
        };
        r.add(finding("no-unwrap", "crates/x/src/a.rs"), &allow);
        r.add(finding("no-print", "crates/y/src/b.rs"), &allow);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.suppressed.len(), 1);
        assert!(r.has_failures());
        let json = r.render_json();
        assert!(json.contains("\"failures\":1"));
        assert!(json.contains("\"justification\":\"fine here\""));
        assert!(json.contains("\\\"quotes\\\""));
    }
}
