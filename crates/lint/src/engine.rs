//! File classification, test-region detection, and the workspace walk.

use crate::allow::Allowlist;
use crate::lexer::{tokenize, Token};
use crate::parse::{parse, ItemModel};
use crate::report::{Finding, Report, Severity};
use crate::rules::all_rules;
use std::fs;
use std::path::{Path, PathBuf};

/// How a file participates in the build — rules scope themselves by role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library source (`crates/*/src/**`, top-level `src/**`).
    Lib,
    /// Binary source (`src/bin/**`).
    Bin,
    /// Tests, benches, examples, build scripts — exempt from the
    /// library-contract rules but still scanned for hygiene.
    Aux,
}

/// Everything a rule needs to know about one file.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Build role, derived from the path.
    pub role: Role,
    /// Owning crate (`optim`, `telemetry`, ... or `dropback-repro` for the
    /// top-level package).
    pub crate_name: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Token-index ranges (inclusive start, inclusive end) covered by
    /// `#[cfg(test)]` modules or `#[test]` functions.
    pub test_regions: Vec<(usize, usize)>,
    /// Indices into `tokens` of the non-comment tokens, for neighbor
    /// lookups that must skip comments.
    pub significant: Vec<usize>,
    /// The structural item model — fns, impls, `unsafe` blocks, statics —
    /// so rules can reason about *where* a pattern occurs.
    pub model: ItemModel,
}

impl FileCtx {
    /// Builds the context for `source` as if it lived at `path` (relative,
    /// `/`-separated). Pure — no filesystem access — so tests can feed
    /// synthetic files at arbitrary paths.
    pub fn from_source(path: &str, source: &str) -> Self {
        let tokens = tokenize(source);
        let test_regions = find_test_regions(&tokens);
        let significant = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let model = parse(&tokens);
        Self {
            path: path.to_string(),
            role: role_of(path),
            crate_name: crate_of(path),
            tokens,
            test_regions,
            significant,
            model,
        }
    }

    /// Where token `i` sits structurally — `` in fn `submit` `` or
    /// `at module scope` — for diagnostic messages.
    pub fn context_label(&self, i: usize) -> String {
        self.model.context_label(i)
    }

    /// Whether token index `i` lies inside a test region.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| i >= s && i <= e)
    }

    /// The nearest non-comment token strictly before token index `i`.
    pub fn prev_significant(&self, i: usize) -> Option<&Token> {
        let pos = self.significant.partition_point(|&k| k < i);
        pos.checked_sub(1)
            .map(|p| &self.tokens[self.significant[p]])
    }

    /// The nearest non-comment token strictly after token index `i`.
    pub fn next_significant(&self, i: usize) -> Option<&Token> {
        let pos = self.significant.partition_point(|&k| k <= i);
        self.significant.get(pos).map(|&k| &self.tokens[k])
    }

    /// Emits a finding anchored at token index `i`.
    pub fn finding(&self, rule: &'static str, i: usize, message: String) -> Finding {
        let t = &self.tokens[i];
        Finding {
            rule,
            path: self.path.clone(),
            line: t.line,
            col: t.col,
            message,
            severity: Severity::Error,
        }
    }
}

/// Classifies a workspace-relative path.
fn role_of(path: &str) -> Role {
    let parts: Vec<&str> = path.split('/').collect();
    if parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples" | "fixtures"))
        || path.ends_with("build.rs")
    {
        return Role::Aux;
    }
    if path.contains("/src/bin/") || path.ends_with("src/main.rs") {
        return Role::Bin;
    }
    if path.contains("/src/") || path.starts_with("src/") {
        return Role::Lib;
    }
    Role::Aux
}

/// The crate a workspace-relative path belongs to.
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "dropback-repro".to_string()
}

/// Finds token-index ranges belonging to `#[cfg(test)]` modules and
/// `#[test]` functions by brace matching. `#[cfg(not(test))]` is not a
/// test marker; nested `cfg(all(test, ...))` forms are not recognized (the
/// workspace does not use them).
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let (attr_text, attr_end) = collect_attr(tokens, i + 1);
            if attr_text == "test"
                || attr_text.ends_with("::test")
                || attr_text.contains("cfg(test)")
            {
                if let Some((start, end)) = body_after(tokens, attr_end + 1) {
                    regions.push((start, end));
                    i = end + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// Joins the tokens of an attribute starting at its `[` (index `open`)
/// into a canonical spaceless string, returning it with the index of the
/// closing `]`.
fn collect_attr(tokens: &[Token], open: usize) -> (String, usize) {
    let mut depth = 0usize;
    let mut text = String::new();
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("[") {
            depth += 1;
            if depth == 1 {
                i += 1;
                continue;
            }
        }
        if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (text, i);
            }
        }
        if !t.is_comment() {
            text.push_str(&t.text);
        }
        i += 1;
    }
    (text, tokens.len().saturating_sub(1))
}

/// After a test-marking attribute, the marked item's body: scans past any
/// further attributes to the first top-level `{` and returns the token
/// range from the item start through the matching `}`. Items without a
/// body (`mod tests;`) yield `None`.
fn body_after(tokens: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let (_, end) = collect_attr(tokens, i + 1);
            i = end + 1;
            continue;
        }
        if t.is_punct(";") {
            return None;
        }
        if t.is_punct("{") {
            let mut depth = 0usize;
            for (j, t) in tokens.iter().enumerate().skip(i) {
                if t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        return Some((from, j));
                    }
                }
            }
            return Some((from, tokens.len() - 1));
        }
        i += 1;
    }
    None
}

/// Runs every rule over one in-memory file.
pub fn analyze_source(path: &str, source: &str) -> Vec<Finding> {
    let ctx = FileCtx::from_source(path, source);
    let mut findings = Vec::new();
    for rule in all_rules() {
        (rule.check)(&ctx, &mut findings);
    }
    findings
}

/// Collects every `.rs` file under `root`, skipping `target`, `.git`, and
/// fixture corpora (which hold seeded violations and are linted only by
/// their own tests). Paths come back sorted for deterministic reports.
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !matches!(name.as_ref(), "target" | ".git" | "fixtures" | "results") {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints the whole workspace rooted at `root` with `allow` suppressions.
///
/// # Errors
///
/// Returns a message when the walk or a file read fails.
pub fn check_workspace(root: &Path, allow: &Allowlist) -> Result<Report, String> {
    let known: Vec<&str> = crate::rules::all_rules().iter().map(|r| r.id).collect();
    allow.validate_rules(&known)?;
    let files = collect_rs_files(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            fs::read_to_string(file).map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        for finding in analyze_source(&rel, &source) {
            report.add(finding, allow);
        }
    }
    report.unused_allows = allow.unused(&report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_from_paths() {
        assert_eq!(role_of("crates/optim/src/topk.rs"), Role::Lib);
        assert_eq!(role_of("crates/core/src/bin/dropback-cli.rs"), Role::Bin);
        assert_eq!(role_of("crates/lint/tests/selfcheck.rs"), Role::Aux);
        assert_eq!(role_of("crates/bench/benches/microbench.rs"), Role::Aux);
        assert_eq!(role_of("examples/quickstart.rs"), Role::Aux);
        assert_eq!(role_of("src/lib.rs"), Role::Lib);
        assert_eq!(role_of("tests/end_to_end.rs"), Role::Aux);
    }

    #[test]
    fn crate_names_from_paths() {
        assert_eq!(crate_of("crates/optim/src/topk.rs"), "optim");
        assert_eq!(crate_of("src/lib.rs"), "dropback-repro");
        assert_eq!(crate_of("tests/end_to_end.rs"), "dropback-repro");
    }

    #[test]
    fn cfg_test_module_region_detected() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}";
        let ctx = FileCtx::from_source("crates/x/src/a.rs", src);
        let helper = ctx
            .tokens
            .iter()
            .position(|t| t.is_ident("helper"))
            .unwrap();
        let libfn = ctx.tokens.iter().position(|t| t.is_ident("lib")).unwrap();
        let after = ctx.tokens.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(ctx.in_test(helper));
        assert!(!ctx.in_test(libfn));
        assert!(!ctx.in_test(after), "code after the test mod is live again");
    }

    #[test]
    fn test_fn_region_detected() {
        let src = "#[test]\nfn checks() { body(); }\nfn live() {}";
        let ctx = FileCtx::from_source("crates/x/src/a.rs", src);
        let body = ctx.tokens.iter().position(|t| t.is_ident("body")).unwrap();
        let live = ctx.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(ctx.in_test(body));
        assert!(!ctx.in_test(live));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod live { fn inner() {} }";
        let ctx = FileCtx::from_source("crates/x/src/a.rs", src);
        let inner = ctx.tokens.iter().position(|t| t.is_ident("inner")).unwrap();
        assert!(!ctx.in_test(inner));
    }

    #[test]
    fn should_panic_attr_is_not_a_test_marker_but_test_above_is() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn dies() { go(); }";
        let ctx = FileCtx::from_source("crates/x/src/a.rs", src);
        let go = ctx.tokens.iter().position(|t| t.is_ident("go")).unwrap();
        assert!(ctx.in_test(go));
    }

    #[test]
    fn neighbor_lookups_skip_comments() {
        let src = "a /* c */ . /* c */ unwrap /* c */ ( )";
        let ctx = FileCtx::from_source("crates/x/src/a.rs", src);
        let u = ctx
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(ctx.prev_significant(u).unwrap().is_punct("."));
        assert!(ctx.next_significant(u).unwrap().is_punct("("));
    }
}
