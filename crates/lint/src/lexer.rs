//! A hand-rolled Rust lexer: a line/column-tracking token stream that
//! understands string literals, raw strings, byte strings, char literals,
//! lifetimes, and *nested* block comments.
//!
//! The rule engine needs exactly enough lexical fidelity to never mistake
//! `"HashMap"` inside a string (or a `.unwrap()` mentioned in a comment)
//! for real code, and to never *miss* real code that follows a tricky
//! literal. Full parsing (`syn`) is deliberately avoided — the workspace
//! must stay offline-buildable with zero external dependencies.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unwrap`, `unsafe`, `r#type`).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// An integer literal (`42`, `0xff_u8`).
    Int,
    /// A floating-point literal (`1.0`, `2.5e-3`, `1f32`).
    Float,
    /// A `"..."` string literal, or a `c"..."` C-string (same escape
    /// rules; the prefix stays in the token text).
    Str,
    /// An `r"..."` / `r#"..."#` raw string literal — or a raw byte
    /// (`br`) / raw C (`cr`) string; the prefix stays in the token text.
    RawStr,
    /// A `b"..."` byte-string literal.
    ByteStr,
    /// A `'x'` char literal.
    Char,
    /// A `b'x'` byte literal.
    Byte,
    /// A `// ...` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* ... */` comment, nesting tracked.
    BlockComment,
    /// An operator or delimiter; multi-char operators (`==`, `::`, `->`)
    /// arrive as a single token.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this is an identifier with exactly the text `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this is a punctuation token with exactly the text `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }
}

/// Multi-char operators merged into one `Punct` token, longest first so
/// greedy matching is correct (`..=` before `..` before `.`).
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Self {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line/col.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_into(&mut self, buf: &mut String) {
        if let Some(c) = self.bump() {
            buf.push(c);
        }
    }

    fn is_ident_start(c: char) -> bool {
        c.is_alphabetic() || c == '_'
    }

    fn is_ident_continue(c: char) -> bool {
        c.is_alphanumeric() || c == '_'
    }

    /// Reads `// ...` up to (not including) the newline.
    fn line_comment(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        text
    }

    /// Reads a `/* ... */` comment with nesting. Unterminated comments run
    /// to end of file (the lint pass still sees everything before them).
    fn block_comment(&mut self) -> String {
        let mut text = String::from("/*");
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump_into(&mut text);
                    self.bump_into(&mut text);
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump_into(&mut text);
                    self.bump_into(&mut text);
                }
                (Some(_), _) => self.bump_into(&mut text),
                (None, _) => break,
            }
        }
        text
    }

    /// Reads a `"..."` string body (after the opening quote is *not* yet
    /// consumed — `text` holds any prefix such as `b`).
    fn quoted_string(&mut self, mut text: String) -> String {
        self.bump_into(&mut text); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump_into(&mut text);
                    self.bump_into(&mut text);
                }
                '"' => {
                    self.bump_into(&mut text);
                    break;
                }
                _ => self.bump_into(&mut text),
            }
        }
        text
    }

    /// Reads a raw string starting at `r`/`br` (prefix already in `text`,
    /// cursor on `#` or `"`): counts `#`s, then scans for `"` followed by
    /// the same number of `#`s.
    fn raw_string(&mut self, mut text: String) -> String {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump_into(&mut text);
        }
        self.bump_into(&mut text); // opening quote
        'scan: while let Some(c) = self.peek(0) {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        self.bump_into(&mut text);
                        continue 'scan;
                    }
                }
                // Closing quote plus its hashes.
                self.bump_into(&mut text);
                for _ in 0..hashes {
                    self.bump_into(&mut text);
                }
                break;
            }
            self.bump_into(&mut text);
        }
        text
    }

    /// Reads a char/byte literal body after the opening `'` (prefix such as
    /// `b` already in `text`).
    fn char_literal(&mut self, mut text: String) -> String {
        self.bump_into(&mut text); // opening quote
        if self.peek(0) == Some('\\') {
            self.bump_into(&mut text);
            self.bump_into(&mut text); // the escaped char (or u of \u{...})
            while self.peek(0).is_some() && self.peek(0) != Some('\'') {
                self.bump_into(&mut text); // e.g. the rest of \u{1F600}
            }
        } else {
            self.bump_into(&mut text);
        }
        self.bump_into(&mut text); // closing quote
        text
    }

    /// A char literal (as opposed to a lifetime) follows the opening `'`
    /// when the next char is an escape or the char after it closes the
    /// quote. `'a` → lifetime, `'a'` → char, `'\n'` → char.
    fn is_char_literal(&self) -> bool {
        match self.peek(1) {
            Some('\\') => true,
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        }
    }

    fn number(&mut self) -> (TokenKind, String) {
        let mut text = String::new();
        let mut kind = TokenKind::Int;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'b' | 'o')) {
            self.bump_into(&mut text);
            self.bump_into(&mut text);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                self.bump_into(&mut text);
            }
            return (kind, text);
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.bump_into(&mut text);
        }
        // A fractional part only when a digit follows the dot — `0..n` is a
        // range and `1.max(2)` is a method call.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            kind = TokenKind::Float;
            self.bump_into(&mut text);
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump_into(&mut text);
            }
        }
        if matches!(self.peek(0), Some('e' | 'E'))
            && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek(1), Some('+' | '-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
        {
            kind = TokenKind::Float;
            self.bump_into(&mut text);
            if matches!(self.peek(0), Some('+' | '-')) {
                self.bump_into(&mut text);
            }
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump_into(&mut text);
            }
        }
        // Type suffix (`1.0f32`, `1u8`); an `f` suffix makes it a float.
        if self.peek(0).is_some_and(Self::is_ident_start) {
            if self.peek(0) == Some('f') {
                kind = TokenKind::Float;
            }
            while self.peek(0).is_some_and(Self::is_ident_continue) {
                self.bump_into(&mut text);
            }
        }
        (kind, text)
    }
}

/// Tokenizes `source`, skipping whitespace but keeping comments as tokens
/// (the hygiene rules read them). Never fails: unterminated constructs run
/// to end of input.
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut lx = Lexer::new(source);
    let mut tokens = Vec::new();
    while let Some(c) = lx.peek(0) {
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        let (line, col) = (lx.line, lx.col);
        let (kind, text) = match c {
            '/' if lx.peek(1) == Some('/') => (TokenKind::LineComment, lx.line_comment()),
            '/' if lx.peek(1) == Some('*') => (TokenKind::BlockComment, lx.block_comment()),
            '"' => (TokenKind::Str, lx.quoted_string(String::new())),
            'r' if lx.peek(1) == Some('"') || raw_ahead(&lx, 1) => {
                let mut text = String::new();
                lx.bump_into(&mut text);
                (TokenKind::RawStr, lx.raw_string(text))
            }
            'r' if lx.peek(1) == Some('#') && lx.peek(2).is_some_and(Lexer::is_ident_start) => {
                // Raw identifier `r#type`.
                let mut text = String::new();
                lx.bump_into(&mut text);
                lx.bump_into(&mut text);
                while lx.peek(0).is_some_and(Lexer::is_ident_continue) {
                    lx.bump_into(&mut text);
                }
                (TokenKind::Ident, text)
            }
            'b' if lx.peek(1) == Some('"') => {
                let mut text = String::new();
                lx.bump_into(&mut text);
                (TokenKind::ByteStr, lx.quoted_string(text))
            }
            'b' if lx.peek(1) == Some('r') && (lx.peek(2) == Some('"') || raw_ahead(&lx, 2)) => {
                let mut text = String::new();
                lx.bump_into(&mut text);
                lx.bump_into(&mut text);
                (TokenKind::RawStr, lx.raw_string(text))
            }
            // C-string literals (Rust 1.77): `c"..."` escapes like a
            // normal string, `cr"..."`/`cr#"..."#` scan raw. Without
            // these arms the `cr` prefix lexes as an identifier and the
            // body as an escaped string, desyncing the stream on any
            // backslash-before-quote — decoy text inside the literal
            // would be flagged and real code after it silently skipped.
            'c' if lx.peek(1) == Some('"') => {
                let mut text = String::new();
                lx.bump_into(&mut text);
                (TokenKind::Str, lx.quoted_string(text))
            }
            'c' if lx.peek(1) == Some('r') && (lx.peek(2) == Some('"') || raw_ahead(&lx, 2)) => {
                let mut text = String::new();
                lx.bump_into(&mut text);
                lx.bump_into(&mut text);
                (TokenKind::RawStr, lx.raw_string(text))
            }
            'b' if lx.peek(1) == Some('\'') => {
                let mut text = String::new();
                lx.bump_into(&mut text);
                (TokenKind::Byte, lx.char_literal(text))
            }
            '\'' => {
                if lx.is_char_literal() {
                    (TokenKind::Char, lx.char_literal(String::new()))
                } else {
                    let mut text = String::new();
                    lx.bump_into(&mut text); // the quote
                    while lx.peek(0).is_some_and(Lexer::is_ident_continue) {
                        lx.bump_into(&mut text);
                    }
                    (TokenKind::Lifetime, text)
                }
            }
            c if c.is_ascii_digit() => lx.number(),
            c if Lexer::is_ident_start(c) => {
                let mut text = String::new();
                while lx.peek(0).is_some_and(Lexer::is_ident_continue) {
                    lx.bump_into(&mut text);
                }
                (TokenKind::Ident, text)
            }
            _ => {
                let mut matched = None;
                for op in MULTI_PUNCT {
                    if op.chars().enumerate().all(|(k, oc)| lx.peek(k) == Some(oc)) {
                        matched = Some(*op);
                        break;
                    }
                }
                match matched {
                    Some(op) => {
                        let mut text = String::new();
                        for _ in 0..op.chars().count() {
                            lx.bump_into(&mut text);
                        }
                        (TokenKind::Punct, text)
                    }
                    None => {
                        let mut text = String::new();
                        lx.bump_into(&mut text);
                        (TokenKind::Punct, text)
                    }
                }
            }
        };
        tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }
    tokens
}

/// After an `r`/`br` prefix at offset `from`, a run of `#`s followed by a
/// quote means a raw string (rather than, say, `r#ident`).
fn raw_ahead(lx: &Lexer, from: usize) -> bool {
    let mut k = from;
    while lx.peek(k) == Some('#') {
        k += 1;
    }
    k > from && lx.peek(k) == Some('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_strings_and_puncts() {
        let toks = kinds(r#"let x = "HashMap.unwrap()";"#);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Str, "\"HashMap.unwrap()\"".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = kinds(r#""a\"b" x"#);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, r#""a\"b""#);
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"r#"say "hi" unwrap()"# after"###);
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert_eq!(toks[1], (TokenKind::Ident, "after".into()));
    }

    #[test]
    fn raw_byte_string() {
        let toks = kinds(r###"br#"bytes"# x"###);
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn c_string_literals_are_single_tokens() {
        let toks = kinds(r#"c"bytes .unwrap()" x"#);
        assert_eq!(toks[0], (TokenKind::Str, r#"c"bytes .unwrap()""#.into()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn raw_c_string_does_not_desync_the_stream() {
        // The body ends in a backslash: raw semantics mean the `"` after
        // it closes the literal. Escaped-string scanning would swallow
        // that close and eat the real code after the literal.
        let toks = kinds("cr\"path\\\" after.unwrap()");
        assert_eq!(toks[0], (TokenKind::RawStr, "cr\"path\\\"".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "after".into()));
        let toks = kinds(r###"cr#"raw c .unwrap()"# tail"###);
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert!(toks[0].1.contains(".unwrap()"));
        assert_eq!(toks[1], (TokenKind::Ident, "tail".into()));
    }

    #[test]
    fn c_ident_before_separate_string_stays_an_ident() {
        let toks = kinds(r#"c "not a cstring""#);
        assert_eq!(toks[0], (TokenKind::Ident, "c".into()));
        assert_eq!(toks[1].0, TokenKind::Str);
        // And idents merely starting with c are untouched.
        let toks = kinds(r#"crate::foo cr8 c2"#);
        assert_eq!(toks[0], (TokenKind::Ident, "crate".into()));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "cr8"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "c2"));
    }

    #[test]
    fn raw_string_containing_comment_opener_and_vice_versa() {
        // A `/*` inside a raw string must not open a comment...
        let toks = kinds("r#\" /* \"# here");
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert_eq!(toks[1], (TokenKind::Ident, "here".into()));
        // ...and a raw-string opener inside a block comment must not
        // start a literal that swallows the comment close.
        let toks = kinds("/* r#\" */ after");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "after".into()));
    }

    #[test]
    fn multiline_raw_string_keeps_line_tracking() {
        let toks = tokenize("r#\"a\nb\"# after");
        assert_eq!(toks[0].kind, TokenKind::RawStr);
        assert_eq!((toks[1].line, toks[1].col), (2, 5));
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let toks = kinds("r#type x");
        assert_eq!(toks[0], (TokenKind::Ident, "r#type".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "code".into()));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds("'a' 'static '\\n' '_' &'a str");
        assert_eq!(toks[0], (TokenKind::Char, "'a'".into()));
        assert_eq!(toks[1], (TokenKind::Lifetime, "'static".into()));
        assert_eq!(toks[2], (TokenKind::Char, "'\\n'".into()));
        assert_eq!(toks[3], (TokenKind::Char, "'_'".into()));
        assert_eq!(toks[5].0, TokenKind::Lifetime);
    }

    #[test]
    fn char_literal_with_quote_inside() {
        let toks = kinds(r"'\'' x");
        assert_eq!(toks[0], (TokenKind::Char, r"'\''".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"b'x' b"raw" ident"#);
        assert_eq!(toks[0].0, TokenKind::Byte);
        assert_eq!(toks[1].0, TokenKind::ByteStr);
        assert_eq!(toks[2], (TokenKind::Ident, "ident".into()));
    }

    #[test]
    fn numbers_int_vs_float() {
        let toks = kinds("1 2.5 1e3 0x1f 0..10 x.0 1.0f32 7f64 1.max(2)");
        assert_eq!(toks[0], (TokenKind::Int, "1".into()));
        assert_eq!(toks[1], (TokenKind::Float, "2.5".into()));
        assert_eq!(toks[2], (TokenKind::Float, "1e3".into()));
        assert_eq!(toks[3], (TokenKind::Int, "0x1f".into()));
        assert_eq!(toks[4], (TokenKind::Int, "0".into()));
        assert_eq!(toks[5], (TokenKind::Punct, "..".into()));
        assert_eq!(toks[6], (TokenKind::Int, "10".into()));
        // x.0 — tuple access stays an int after a dot.
        assert_eq!(toks[7], (TokenKind::Ident, "x".into()));
        assert_eq!(toks[8], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[9], (TokenKind::Int, "0".into()));
        assert_eq!(toks[10], (TokenKind::Float, "1.0f32".into()));
        assert_eq!(toks[11], (TokenKind::Float, "7f64".into()));
        assert_eq!(toks[12], (TokenKind::Int, "1".into()));
        assert_eq!(toks[13], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[14], (TokenKind::Ident, "max".into()));
    }

    #[test]
    fn multi_char_operators_merge() {
        let toks = kinds("a == b != c -> d :: e ..= f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "->", "::", "..="]);
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = tokenize("ab\n  cd /* x\ny */ ef");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        // The block comment spans a newline; `ef` lands on line 3.
        assert_eq!(toks[3].text, "ef");
        assert_eq!((toks[3].line, toks[3].col), (3, 6));
    }

    #[test]
    fn line_comment_keeps_text() {
        let toks = kinds("x // TODO: later\ny");
        assert_eq!(toks[1], (TokenKind::LineComment, "// TODO: later".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "y".into()));
    }

    #[test]
    fn unterminated_string_consumes_rest() {
        let toks = kinds("\"open");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokenKind::Str);
    }
}
