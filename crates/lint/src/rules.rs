//! The rule set. Every rule is a pure function over a [`FileCtx`].
//!
//! The rules exist to protect one property end to end: a DropBack run is
//! replayable bit-for-bit from `(seed, architecture, k)` because every
//! untracked weight is `regen(seed, index)` and every tracked-set decision
//! is a deterministic function of the training history. Nondeterministic
//! iteration order, wall-clock reads, and silent panics each break that
//! property in ways reviewers rarely catch by eye — so a machine catches
//! them instead. See `docs/LINTS.md` for the full rationale.

use crate::engine::{FileCtx, Role};
use crate::report::{Finding, Severity};

/// A single lint rule.
pub struct Rule {
    /// Stable identifier used in diagnostics and `lint.allow`.
    pub id: &'static str,
    /// One-line description for `--json` output and docs.
    pub summary: &'static str,
    /// The check itself.
    pub check: fn(&FileCtx, &mut Vec<Finding>),
}

/// Every rule, in reporting order.
pub fn all_rules() -> &'static [Rule] {
    &[
        Rule {
            id: "hash-iteration",
            summary: "no HashMap/HashSet in tracked-set, checkpoint, or serialization paths \
                      (iteration order is nondeterministic)",
            check: hash_iteration,
        },
        Rule {
            id: "wall-clock",
            summary: "no SystemTime/Instant/entropy APIs outside the telemetry clock modules \
                      (span.rs, trace.rs)",
            check: wall_clock,
        },
        Rule {
            id: "no-unwrap",
            summary: "no unwrap()/expect()/panic!/todo!/unimplemented! in non-test code",
            check: no_unwrap,
        },
        Rule {
            id: "no-print",
            summary: "no println!/eprintln!/dbg! in library crates (stdout/stderr are \
                      machine-parseable contracts)",
            check: no_print,
        },
        Rule {
            id: "float-eq",
            summary: "no ==/!= against float literals (use a tolerance or an integer domain)",
            check: float_eq,
        },
        Rule {
            id: "unsafe-safety",
            summary: "every `unsafe` needs a preceding `// SAFETY:` comment",
            check: unsafe_safety,
        },
        Rule {
            id: "raw-thread",
            summary: "no raw std::thread::spawn/scope outside the worker pool \
                      (crates/tensor/src/pool.rs owns thread lifecycle and determinism)",
            check: raw_thread,
        },
        Rule {
            id: "todo-marker",
            summary: "TODO/FIXME inventory (informational)",
            check: todo_marker,
        },
    ]
}

/// Paths where the tracked set, checkpoints, or serialized output are
/// produced — iteration order there must be reproducible because
/// `regen(seed, index)` replay and report diffing both depend on it.
const DETERMINISM_PATHS: &[&str] = &[
    "crates/optim/src/",
    "crates/core/src/checkpoint.rs",
    "crates/core/src/ckpt_store.rs",
    "crates/core/src/crc.rs",
    "crates/core/src/fault.rs",
    "crates/core/src/report.rs",
    "crates/core/src/sparse_infer.rs",
    "crates/core/src/train_state.rs",
    "crates/telemetry/src/json.rs",
    "crates/telemetry/src/snapshot.rs",
];

/// The only files allowed to read the clock: `span.rs` owns the timing
/// switches, `trace.rs` owns the trace epoch, and serve's `clock.rs`
/// owns batching deadlines (wrapped as a monotonic `Deadline` so the
/// serving path never handles raw instants). Everything else —
/// including the rest of the telemetry crate and all of bench — must take
/// timestamps from those modules, so every clock read is behind the same
/// enable flags and the same monotonic epoch.
const CLOCK_PATHS: &[&str] = &[
    "crates/telemetry/src/span.rs",
    "crates/telemetry/src/trace.rs",
    "crates/serve/src/clock.rs",
];

fn in_determinism_path(path: &str) -> bool {
    DETERMINISM_PATHS.iter().any(|p| path.starts_with(p))
}

fn hash_iteration(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role == Role::Aux || !in_determinism_path(&ctx.path) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if (t.is_ident("HashMap") || t.is_ident("HashSet")) && !ctx.in_test(i) {
            out.push(ctx.finding(
                "hash-iteration",
                i,
                format!(
                    "{} iteration order is nondeterministic across runs; use BTreeMap/BTreeSet \
                     or a sorted Vec so tracked-set replay from regen(seed, index) stays \
                     bit-exact",
                    t.text
                ),
            ));
        }
    }
}

const CLOCK_IDENTS: &[&str] = &[
    "SystemTime",
    "Instant",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
];

fn wall_clock(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role == Role::Aux || CLOCK_PATHS.iter().any(|p| ctx.path.starts_with(p)) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind == crate::lexer::TokenKind::Ident
            && CLOCK_IDENTS.contains(&t.text.as_str())
            && !ctx.in_test(i)
        {
            out.push(ctx.finding(
                "wall-clock",
                i,
                format!(
                    "{} injects wall-clock/entropy state into deterministic code; route timing \
                     through dropback-telemetry (Span/Stopwatch) and randomness through the \
                     seeded dropback-prng generators",
                    t.text
                ),
            ));
        }
    }
}

fn no_unwrap(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role == Role::Aux {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        let method_call = |name: &str| {
            t.is_ident(name)
                && ctx.prev_significant(i).is_some_and(|p| p.is_punct("."))
                && ctx.next_significant(i).is_some_and(|n| n.is_punct("("))
        };
        let macro_call = |name: &str| {
            t.is_ident(name) && ctx.next_significant(i).is_some_and(|n| n.is_punct("!"))
        };
        if method_call("unwrap") || method_call("expect") {
            out.push(ctx.finding(
                "no-unwrap",
                i,
                format!(
                    ".{}() can panic mid-training and lose the run; propagate a Result with an \
                     actionable message instead",
                    t.text
                ),
            ));
        } else if macro_call("panic") || macro_call("todo") || macro_call("unimplemented") {
            out.push(ctx.finding(
                "no-unwrap",
                i,
                format!(
                    "{}! in library code aborts the whole process; return an error the caller \
                     can handle (assert! for internal invariants is allowed)",
                    t.text
                ),
            ));
        }
    }
}

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

fn no_print(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role != Role::Lib {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind == crate::lexer::TokenKind::Ident
            && PRINT_MACROS.contains(&t.text.as_str())
            && ctx.next_significant(i).is_some_and(|n| n.is_punct("!"))
            && !ctx.in_test(i)
        {
            out.push(ctx.finding(
                "no-print",
                i,
                format!(
                    "{}! in a library crate corrupts the machine-parseable stdout/stderr \
                     contract; emit telemetry events or return data to the caller",
                    t.text
                ),
            ));
        }
    }
}

fn float_eq(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role == Role::Aux {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) || ctx.in_test(i) {
            continue;
        }
        let float_neighbor = [ctx.prev_significant(i), ctx.next_significant(i)]
            .into_iter()
            .flatten()
            .any(|n| n.kind == crate::lexer::TokenKind::Float);
        if float_neighbor {
            out.push(ctx.finding(
                "float-eq",
                i,
                format!(
                    "`{}` against a float literal is exact bit comparison; if that is \
                     intentional (zero-skip, integrality check) allowlist it with a \
                     justification, otherwise compare with a tolerance",
                    t.text
                ),
            ));
        }
    }
}

fn unsafe_safety(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let justified = ctx.tokens.iter().any(|c| {
            c.is_comment() && c.text.contains("SAFETY:") && c.line <= t.line && c.line + 3 >= t.line
        });
        if !justified {
            out.push(
                ctx.finding(
                    "unsafe-safety",
                    i,
                    "`unsafe` without a `// SAFETY:` comment in the preceding 3 lines; state the \
                 invariant that makes this sound"
                        .to_string(),
                ),
            );
        }
    }
}

/// The files allowed to create threads: the worker pool owns thread
/// lifecycle (spawn count, retirement, panic routing) and carries the
/// determinism contract every parallel kernel relies on, and serve's
/// `rt.rs` owns the server's named service threads (accept loop, batch
/// worker, watcher) plus the shutdown latch they all observe. Raw spawns
/// elsewhere would bypass `DROPBACK_THREADS`, the pool's engagement
/// counters, and the thread-invariance guarantees — or detach a serve
/// thread from the shutdown protocol.
const THREAD_PATHS: &[&str] = &["crates/tensor/src/pool.rs", "crates/serve/src/rt.rs"];

fn raw_thread(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role == Role::Aux || THREAD_PATHS.iter().any(|p| ctx.path.starts_with(p)) {
        return;
    }
    for w in ctx.significant.windows(3) {
        let (a, b, c) = (&ctx.tokens[w[0]], &ctx.tokens[w[1]], &ctx.tokens[w[2]]);
        if a.is_ident("thread")
            && b.is_punct("::")
            && (c.is_ident("spawn") || c.is_ident("scope"))
            && !ctx.in_test(w[2])
        {
            out.push(ctx.finding(
                "raw-thread",
                w[2],
                format!(
                    "thread::{} bypasses the worker pool; submit tasks through \
                     dropback_tensor::pool so DROPBACK_THREADS, engagement counters, and the \
                     thread-count-invariance contract keep holding",
                    c.text
                ),
            ));
        }
    }
}

fn todo_marker(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for t in &ctx.tokens {
        if !t.is_comment() {
            continue;
        }
        for marker in ["TODO", "FIXME"] {
            if t.text.contains(marker) {
                out.push(Finding {
                    rule: "todo-marker",
                    path: ctx.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!("{marker} marker: {}", t.text.trim()),
                    severity: Severity::Info,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_source;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        analyze_source(path, src)
            .into_iter()
            .filter(|f| f.severity == Severity::Error)
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn hashmap_flagged_only_in_determinism_paths() {
        let src = "use std::collections::HashMap;";
        assert_eq!(
            rules_hit("crates/optim/src/sparse.rs", src),
            vec!["hash-iteration"]
        );
        assert!(rules_hit("crates/nn/src/linear.rs", src).is_empty());
        assert!(rules_hit("crates/optim/tests/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_string_or_comment_is_clean() {
        let src = "// a HashMap would be bad here\nfn f() -> &'static str { \"HashMap\" }";
        assert!(rules_hit("crates/optim/src/sparse.rs", src).is_empty());
    }

    #[test]
    fn instant_flagged_outside_clock_modules() {
        let src = "use std::time::Instant;";
        assert_eq!(
            rules_hit("crates/core/src/trainer.rs", src),
            vec!["wall-clock"]
        );
        // Only the clock-owning modules may read the clock: telemetry's
        // span/trace pair and serve's deadline wrapper.
        assert!(rules_hit("crates/telemetry/src/span.rs", src).is_empty());
        assert!(rules_hit("crates/telemetry/src/trace.rs", src).is_empty());
        assert!(rules_hit("crates/serve/src/clock.rs", src).is_empty());
        // The rest of the serve crate takes deadlines, not instants.
        assert_eq!(
            rules_hit("crates/serve/src/batch.rs", src),
            vec!["wall-clock"]
        );
        // The rest of the telemetry crate — and all of bench — must route
        // timing through span/trace, not read the clock directly.
        assert_eq!(
            rules_hit("crates/telemetry/src/json.rs", src),
            vec!["wall-clock"]
        );
        assert_eq!(
            rules_hit("crates/bench/src/lib.rs", src),
            vec!["wall-clock"]
        );
    }

    #[test]
    fn unwrap_and_friends_flagged_in_lib_and_bin() {
        assert_eq!(
            rules_hit("crates/nn/src/act.rs", "fn f() { x.unwrap(); }"),
            vec!["no-unwrap"]
        );
        assert_eq!(
            rules_hit("crates/core/src/bin/cli.rs", "fn f() { x.expect(\"m\"); }"),
            vec!["no-unwrap"]
        );
        assert_eq!(
            rules_hit("crates/nn/src/act.rs", "fn f() { panic!(\"boom\"); }"),
            vec!["no-unwrap"]
        );
        assert_eq!(
            rules_hit("crates/nn/src/act.rs", "fn f() { todo!() }"),
            vec!["no-unwrap"]
        );
    }

    #[test]
    fn unwrap_lookalikes_are_clean() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(g); z.expect_err(\"m\"); \
                   assert!(true, \"panic! free\"); }";
        assert!(rules_hit("crates/nn/src/act.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_test_module_is_clean() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}";
        assert!(rules_hit("crates/nn/src/act.rs", src).is_empty());
    }

    #[test]
    fn unwrap_after_test_module_is_flagged() {
        let src = "#[cfg(test)]\nmod tests { fn t() { ok.unwrap(); } }\nfn f() { x.unwrap(); }";
        assert_eq!(rules_hit("crates/nn/src/act.rs", src), vec!["no-unwrap"]);
    }

    #[test]
    fn println_flagged_in_lib_but_not_bin() {
        let src = "fn f() { println!(\"hi\"); }";
        assert_eq!(rules_hit("crates/nn/src/act.rs", src), vec!["no-print"]);
        assert!(rules_hit("crates/core/src/bin/cli.rs", src).is_empty());
    }

    #[test]
    fn float_literal_comparison_flagged() {
        assert_eq!(
            rules_hit("crates/nn/src/act.rs", "fn f(x: f32) -> bool { x == 0.0 }"),
            vec!["float-eq"]
        );
        assert_eq!(
            rules_hit("crates/nn/src/act.rs", "fn f(x: f64) -> bool { 1.5 != x }"),
            vec!["float-eq"]
        );
        // Integer comparison and range syntax are clean.
        assert!(rules_hit("crates/nn/src/act.rs", "fn f(x: u8) -> bool { x == 0 }").is_empty());
        assert!(rules_hit("crates/nn/src/act.rs", "fn f() { for _ in 0..10 {} }").is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        assert_eq!(
            rules_hit("crates/tensor/src/gemm.rs", "fn f() { unsafe { g() } }"),
            vec!["unsafe-safety"]
        );
        let ok = "// SAFETY: g upholds the aliasing contract.\nfn f() { unsafe { g() } }";
        assert!(rules_hit("crates/tensor/src/gemm.rs", ok).is_empty());
    }

    #[test]
    fn raw_thread_flagged_outside_pool() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }";
        let scope = "fn f() { std::thread::scope(|s| { let _ = s; }); }";
        assert_eq!(
            rules_hit("crates/tensor/src/gemm.rs", spawn),
            vec!["raw-thread"]
        );
        assert_eq!(
            rules_hit("crates/optim/src/topk.rs", scope),
            vec!["raw-thread"]
        );
        // The pool module owns compute-thread lifecycle and serve's rt
        // module owns service-thread lifecycle; tests and benches may
        // spawn helpers freely.
        assert!(rules_hit("crates/tensor/src/pool.rs", spawn).is_empty());
        assert!(rules_hit("crates/serve/src/rt.rs", spawn).is_empty());
        // The rest of serve must go through rt::spawn, not raw spawns.
        assert_eq!(
            rules_hit("crates/serve/src/server.rs", spawn),
            vec!["raw-thread"]
        );
        assert!(rules_hit("crates/tensor/tests/pool_overhead.rs", spawn).is_empty());
        let in_test = "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }";
        assert!(rules_hit("crates/core/src/trainer.rs", in_test).is_empty());
    }

    #[test]
    fn thread_lookalikes_are_clean() {
        // Other items from std::thread stay legal — only spawn/scope create
        // threads behind the pool's back.
        let src = "fn f() { let n = std::thread::available_parallelism(); \
                   std::thread::sleep(d); my::scope(); spawn(); }";
        assert!(rules_hit("crates/core/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn todo_markers_are_informational() {
        let findings = analyze_source("crates/nn/src/act.rs", "// TODO: faster path\nfn f() {}");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "todo-marker");
        assert_eq!(findings[0].severity, Severity::Info);
    }
}
