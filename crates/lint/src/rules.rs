//! The rule set. Every rule is a pure function over a [`FileCtx`].
//!
//! The rules exist to protect one property end to end: a DropBack run is
//! replayable bit-for-bit from `(seed, architecture, k)` because every
//! untracked weight is `regen(seed, index)` and every tracked-set decision
//! is a deterministic function of the training history. Nondeterministic
//! iteration order, wall-clock reads, and silent panics each break that
//! property in ways reviewers rarely catch by eye — so a machine catches
//! them instead. See `docs/LINTS.md` for the full rationale.

use crate::engine::{FileCtx, Role};
use crate::report::{Finding, Severity};

/// A single lint rule.
pub struct Rule {
    /// Stable identifier used in diagnostics and `lint.allow`.
    pub id: &'static str,
    /// One-line description for `--json` output and docs.
    pub summary: &'static str,
    /// The check itself.
    pub check: fn(&FileCtx, &mut Vec<Finding>),
}

/// Every rule, in reporting order.
pub fn all_rules() -> &'static [Rule] {
    &[
        Rule {
            id: "hash-iteration",
            summary: "no HashMap/HashSet in tracked-set, checkpoint, or serialization paths \
                      (iteration order is nondeterministic)",
            check: hash_iteration,
        },
        Rule {
            id: "wall-clock",
            summary: "no SystemTime/Instant/entropy APIs outside the telemetry clock modules \
                      (span.rs, trace.rs)",
            check: wall_clock,
        },
        Rule {
            id: "no-unwrap",
            summary: "no unwrap()/expect()/panic!/todo!/unimplemented! in non-test code",
            check: no_unwrap,
        },
        Rule {
            id: "no-print",
            summary: "no println!/eprintln!/dbg! in library crates (stdout/stderr are \
                      machine-parseable contracts)",
            check: no_print,
        },
        Rule {
            id: "float-eq",
            summary: "no ==/!= against float literals (use a tolerance or an integer domain)",
            check: float_eq,
        },
        Rule {
            id: "unsafe-audit",
            summary: "every `unsafe` block/fn needs an adjacent `// SAFETY:` justification \
                      (or a `# Safety` doc section), and `unsafe` itself is confined to the \
                      allowlisted kernel modules (pool.rs, simd.rs)",
            check: unsafe_audit,
        },
        Rule {
            id: "feature-detect",
            summary: "runtime CPU-feature detection (`is_x86_feature_detected!`) is confined \
                      to simd.rs — kernel selection is made once, honors DROPBACK_SIMD, and \
                      stays consistent for a whole run",
            check: feature_detect,
        },
        Rule {
            id: "panic-path",
            summary: "no unwrap/expect/panic!/unreachable! on library request/decode/replay \
                      paths (serve HTTP, checkpoint decode, core inference) — return typed \
                      errors",
            check: panic_path,
        },
        Rule {
            id: "raw-thread",
            summary: "no raw std::thread::spawn/scope outside the worker pool \
                      (crates/tensor/src/pool.rs owns thread lifecycle and determinism)",
            check: raw_thread,
        },
        Rule {
            id: "shared-state",
            summary: "no static mut, locks/channels, or atomics outside the sanctioned \
                      concurrency modules (pool.rs, telemetry, serve rt.rs) — who may \
                      share, not just who may spawn",
            check: shared_state,
        },
        Rule {
            id: "todo-marker",
            summary: "TODO/FIXME inventory (informational)",
            check: todo_marker,
        },
    ]
}

/// Paths where the tracked set, checkpoints, or serialized output are
/// produced — iteration order there must be reproducible because
/// `regen(seed, index)` replay and report diffing both depend on it.
const DETERMINISM_PATHS: &[&str] = &[
    "crates/optim/src/",
    "crates/core/src/checkpoint.rs",
    "crates/core/src/ckpt_store.rs",
    "crates/core/src/crc.rs",
    "crates/core/src/chaos.rs",
    "crates/core/src/report.rs",
    "crates/core/src/sparse_infer.rs",
    "crates/core/src/train_state.rs",
    "crates/telemetry/src/json.rs",
    "crates/telemetry/src/snapshot.rs",
];

/// The only files allowed to read the clock: `span.rs` owns the timing
/// switches, `trace.rs` owns the trace epoch, and serve's `clock.rs`
/// owns batching deadlines (wrapped as a monotonic `Deadline` so the
/// serving path never handles raw instants). Everything else —
/// including the rest of the telemetry crate and all of bench — must take
/// timestamps from those modules, so every clock read is behind the same
/// enable flags and the same monotonic epoch.
const CLOCK_PATHS: &[&str] = &[
    "crates/telemetry/src/span.rs",
    "crates/telemetry/src/trace.rs",
    "crates/serve/src/clock.rs",
];

fn in_determinism_path(path: &str) -> bool {
    DETERMINISM_PATHS.iter().any(|p| path.starts_with(p))
}

fn hash_iteration(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role == Role::Aux || !in_determinism_path(&ctx.path) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if (t.is_ident("HashMap") || t.is_ident("HashSet")) && !ctx.in_test(i) {
            out.push(ctx.finding(
                "hash-iteration",
                i,
                format!(
                    "{} iteration order is nondeterministic across runs; use BTreeMap/BTreeSet \
                     or a sorted Vec so tracked-set replay from regen(seed, index) stays \
                     bit-exact",
                    t.text
                ),
            ));
        }
    }
}

const CLOCK_IDENTS: &[&str] = &[
    "SystemTime",
    "Instant",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
];

fn wall_clock(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role == Role::Aux || CLOCK_PATHS.iter().any(|p| ctx.path.starts_with(p)) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind == crate::lexer::TokenKind::Ident
            && CLOCK_IDENTS.contains(&t.text.as_str())
            && !ctx.in_test(i)
        {
            out.push(ctx.finding(
                "wall-clock",
                i,
                format!(
                    "{} injects wall-clock/entropy state into deterministic code; route timing \
                     through dropback-telemetry (Span/Stopwatch) and randomness through the \
                     seeded dropback-prng generators",
                    t.text
                ),
            ));
        }
    }
}

fn no_unwrap(ctx: &FileCtx, out: &mut Vec<Finding>) {
    // Library files on the request/decode/replay paths are owned by the
    // stricter `panic-path` rule; reporting both ids for one call site
    // would force duplicate allowlist entries.
    if ctx.role == Role::Aux || (ctx.role == Role::Lib && in_panic_path(&ctx.path)) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        let method_call = |name: &str| {
            t.is_ident(name)
                && ctx.prev_significant(i).is_some_and(|p| p.is_punct("."))
                && ctx.next_significant(i).is_some_and(|n| n.is_punct("("))
        };
        let macro_call = |name: &str| {
            t.is_ident(name) && ctx.next_significant(i).is_some_and(|n| n.is_punct("!"))
        };
        if method_call("unwrap") || method_call("expect") {
            out.push(ctx.finding(
                "no-unwrap",
                i,
                format!(
                    ".{}() can panic mid-training and lose the run; propagate a Result with an \
                     actionable message instead",
                    t.text
                ),
            ));
        } else if macro_call("panic") || macro_call("todo") || macro_call("unimplemented") {
            out.push(ctx.finding(
                "no-unwrap",
                i,
                format!(
                    "{}! in library code aborts the whole process; return an error the caller \
                     can handle (assert! for internal invariants is allowed)",
                    t.text
                ),
            ));
        }
    }
}

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

fn no_print(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role != Role::Lib {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind == crate::lexer::TokenKind::Ident
            && PRINT_MACROS.contains(&t.text.as_str())
            && ctx.next_significant(i).is_some_and(|n| n.is_punct("!"))
            && !ctx.in_test(i)
        {
            out.push(ctx.finding(
                "no-print",
                i,
                format!(
                    "{}! in a library crate corrupts the machine-parseable stdout/stderr \
                     contract; emit telemetry events or return data to the caller",
                    t.text
                ),
            ));
        }
    }
}

fn float_eq(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role == Role::Aux {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) || ctx.in_test(i) {
            continue;
        }
        let float_neighbor = [ctx.prev_significant(i), ctx.next_significant(i)]
            .into_iter()
            .flatten()
            .any(|n| n.kind == crate::lexer::TokenKind::Float);
        if float_neighbor {
            out.push(ctx.finding(
                "float-eq",
                i,
                format!(
                    "`{}` against a float literal is exact bit comparison; if that is \
                     intentional (zero-skip, integrality check) allowlist it with a \
                     justification, otherwise compare with a tolerance",
                    t.text
                ),
            ));
        }
    }
}

/// The only library modules that may contain `unsafe` at all: the worker
/// pool (lifetime-erased task handoff, `pool.rs:270`'s transmute is the
/// template) and the upcoming `std::arch` SIMD microkernels. Everything
/// else must stay in safe Rust — the replay contract is hard enough to
/// audit without undefined behavior in the mix.
const UNSAFE_PATHS: &[&str] = &["crates/tensor/src/pool.rs", "crates/tensor/src/simd.rs"];

/// Library paths that make up the request/decode/replay flow: serve's
/// HTTP surface, checkpoint decode, and streaming inference. A panic
/// here takes down a server or a resumable run on attacker-shaped or
/// disk-corrupted input, so these files return typed errors — no
/// unwrap/expect and no panicking macros, `unreachable!` included.
const PANIC_PATHS: &[&str] = &[
    "crates/serve/src/",
    "crates/core/src/checkpoint.rs",
    "crates/core/src/ckpt_store.rs",
    "crates/core/src/crc.rs",
    "crates/core/src/chaos.rs",
    "crates/core/src/sparse_infer.rs",
    "crates/core/src/train_state.rs",
];

fn in_panic_path(path: &str) -> bool {
    PANIC_PATHS.iter().any(|p| path.starts_with(p))
}

fn unsafe_audit(ctx: &FileCtx, out: &mut Vec<Finding>) {
    use crate::parse::safety_comment_near;
    let confined = UNSAFE_PATHS.iter().any(|p| ctx.path.starts_with(p));
    let confinement = |i: usize, what: &str| {
        ctx.finding(
            "unsafe-audit",
            i,
            format!(
                "{what} outside the allowlisted unsafe modules ({}); keep unsafe code in \
                 the audited kernel files or extend the allowlist with a justification",
                UNSAFE_PATHS.join(", ")
            ),
        )
    };
    for b in &ctx.model.unsafe_blocks {
        if ctx.in_test(b.kw_tok) {
            continue;
        }
        if !safety_comment_near(&ctx.tokens, ctx.tokens[b.kw_tok].line) {
            out.push(ctx.finding(
                "unsafe-audit",
                b.kw_tok,
                format!(
                    "`unsafe` block without a `// SAFETY:` comment in the preceding 3 lines \
                     {}; state the invariant that makes this sound",
                    ctx.context_label(b.kw_tok)
                ),
            ));
        }
        if ctx.role == Role::Lib && !confined {
            out.push(confinement(b.kw_tok, "`unsafe` block"));
        }
    }
    for it in ctx.model.items.iter().filter(|it| it.is_unsafe) {
        if ctx.in_test(it.first_tok) {
            continue;
        }
        let justified =
            it.has_safety_doc || safety_comment_near(&ctx.tokens, ctx.tokens[it.first_tok].line);
        let what = if it.name.is_empty() {
            format!("unsafe {}", it.kind.label())
        } else {
            format!("unsafe {} `{}`", it.kind.label(), it.name)
        };
        if !justified {
            out.push(ctx.finding(
                "unsafe-audit",
                it.first_tok,
                format!(
                    "{what} without a `# Safety` doc section or adjacent `// SAFETY:` \
                     comment; document the contract callers must uphold"
                ),
            ));
        }
        if ctx.role == Role::Lib && !confined {
            out.push(confinement(it.first_tok, &what));
        }
    }
}

/// The only module allowed to ask the CPU what it supports: kernel
/// selection must flow through `simd::kernel()` / `simd::set_simd` so the
/// SIMD-or-scalar decision is made exactly once per process, honors the
/// `DROPBACK_SIMD` override, and cannot diverge between call sites
/// mid-run (which would be invisible — the kernels are bit-identical —
/// but would still splinter the selection contract).
const FEATURE_DETECT_PATH: &str = "crates/tensor/src/simd.rs";

fn feature_detect(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role == Role::Aux || ctx.path.starts_with(FEATURE_DETECT_PATH) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.is_ident("is_x86_feature_detected")
            && ctx.next_significant(i).is_some_and(|n| n.is_punct("!"))
            && !ctx.in_test(i)
        {
            out.push(ctx.finding(
                "feature-detect",
                i,
                format!(
                    "is_x86_feature_detected! {} duplicates kernel selection outside \
                     {FEATURE_DETECT_PATH}; query `simd::simd_active()` (or force a kernel \
                     with `simd::set_simd`) so the whole run agrees on one code path",
                    ctx.context_label(i)
                ),
            ));
        }
    }
}

fn panic_path(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role != Role::Lib || !in_panic_path(&ctx.path) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.in_test(i) {
            continue;
        }
        let method_call = |name: &str| {
            t.is_ident(name)
                && ctx.prev_significant(i).is_some_and(|p| p.is_punct("."))
                && ctx.next_significant(i).is_some_and(|n| n.is_punct("("))
        };
        let macro_call = |name: &str| {
            t.is_ident(name) && ctx.next_significant(i).is_some_and(|n| n.is_punct("!"))
        };
        if method_call("unwrap") || method_call("expect") {
            out.push(ctx.finding(
                "panic-path",
                i,
                format!(
                    ".{}() {} sits on a request/decode/replay path; a panic here drops a \
                     live request or an entire resumable run — return a typed error",
                    t.text,
                    ctx.context_label(i)
                ),
            ));
        } else if macro_call("panic")
            || macro_call("unreachable")
            || macro_call("todo")
            || macro_call("unimplemented")
        {
            out.push(ctx.finding(
                "panic-path",
                i,
                format!(
                    "{}! {} sits on a request/decode/replay path; malformed input must \
                     surface as a typed error the caller can refuse, not a process abort",
                    t.text,
                    ctx.context_label(i)
                ),
            ));
        }
    }
}

/// The files allowed to create threads: the worker pool owns thread
/// lifecycle (spawn count, retirement, panic routing) and carries the
/// determinism contract every parallel kernel relies on, and serve's
/// `rt.rs` owns the server's named service threads (accept loop, batch
/// worker, watcher) plus the shutdown latch they all observe. Raw spawns
/// elsewhere would bypass `DROPBACK_THREADS`, the pool's engagement
/// counters, and the thread-invariance guarantees — or detach a serve
/// thread from the shutdown protocol.
const THREAD_PATHS: &[&str] = &["crates/tensor/src/pool.rs", "crates/serve/src/rt.rs"];

fn raw_thread(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role == Role::Aux || THREAD_PATHS.iter().any(|p| ctx.path.starts_with(p)) {
        return;
    }
    for w in ctx.significant.windows(3) {
        let (a, b, c) = (&ctx.tokens[w[0]], &ctx.tokens[w[1]], &ctx.tokens[w[2]]);
        if a.is_ident("thread")
            && b.is_punct("::")
            && (c.is_ident("spawn") || c.is_ident("scope"))
            && !ctx.in_test(w[2])
        {
            out.push(ctx.finding(
                "raw-thread",
                w[2],
                format!(
                    "thread::{} bypasses the worker pool; submit tasks through \
                     dropback_tensor::pool so DROPBACK_THREADS, engagement counters, and the \
                     thread-count-invariance contract keep holding",
                    c.text
                ),
            ));
        }
    }
}

/// The modules that may own shared mutable state: the worker pool (queue,
/// engagement counters), the telemetry crate (its collectors are the
/// process-wide aggregation point and hide their locking behind
/// `lock_unpoisoned`), and serve's `rt.rs` (the shutdown latch plus the
/// `Monitor`/`Swap` primitives every other serve module builds on).
/// Extending PR 5's raw-thread rule: not just who may *spawn*, but who
/// may *share*.
const SHARED_STATE_PATHS: &[&str] = &[
    "crates/tensor/src/pool.rs",
    "crates/telemetry/src/",
    "crates/serve/src/rt.rs",
];

/// Lock/channel types whose bare appearance creates shared mutable state.
/// `OnceLock`/`LazyLock` are deliberately absent: write-once lazy init
/// cannot reorder observable events.
const SYNC_PRIMITIVES: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier", "mpsc"];

const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicPtr",
];

/// The atomic memory orderings — disjoint from `cmp::Ordering`'s
/// `Less`/`Equal`/`Greater`, so a `Ordering::<variant>` path is
/// unambiguously an atomic access.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn shared_state(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.role == Role::Aux || SHARED_STATE_PATHS.iter().any(|p| ctx.path.starts_with(p)) {
        return;
    }
    // `static mut` — found structurally, so a `mut` in a `&mut` reference
    // or pattern never false-positives.
    for it in &ctx.model.items {
        if it.is_mut_static && !ctx.in_test(it.first_tok) {
            out.push(ctx.finding(
                "shared-state",
                it.first_tok,
                format!(
                    "`static mut {}` is unsynchronized global state (and nearly impossible \
                     to use soundly); keep shared state in the sanctioned concurrency \
                     modules ({})",
                    it.name,
                    SHARED_STATE_PATHS.join(", ")
                ),
            ));
        }
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != crate::lexer::TokenKind::Ident || ctx.in_test(i) {
            continue;
        }
        let name = t.text.as_str();
        if SYNC_PRIMITIVES.contains(&name) || ATOMIC_TYPES.contains(&name) {
            out.push(ctx.finding(
                "shared-state",
                i,
                format!(
                    "{name} creates shared mutable state outside the sanctioned concurrency \
                     modules ({}); route it through the pool, telemetry, or serve's rt \
                     primitives — or allowlist it with a justification",
                    SHARED_STATE_PATHS.join(", ")
                ),
            ));
        }
    }
    // Per-site atomic-access reporting: every `Ordering::<variant>` names
    // its ordering in the finding, so a review of the allowlist shows
    // exactly which orderings an exempted file relies on.
    for w in ctx.significant.windows(3) {
        let (a, b, c) = (&ctx.tokens[w[0]], &ctx.tokens[w[1]], &ctx.tokens[w[2]]);
        if a.is_ident("Ordering")
            && b.is_punct("::")
            && c.kind == crate::lexer::TokenKind::Ident
            && ATOMIC_ORDERINGS.contains(&c.text.as_str())
            && !ctx.in_test(w[2])
        {
            out.push(ctx.finding(
                "shared-state",
                w[2],
                format!(
                    "atomic access with Ordering::{} {} — cross-thread memory-ordering \
                     decisions belong in the sanctioned concurrency modules ({})",
                    c.text,
                    ctx.context_label(w[2]),
                    SHARED_STATE_PATHS.join(", ")
                ),
            ));
        }
    }
}

fn todo_marker(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for t in &ctx.tokens {
        if !t.is_comment() {
            continue;
        }
        for marker in ["TODO", "FIXME"] {
            if t.text.contains(marker) {
                out.push(Finding {
                    rule: "todo-marker",
                    path: ctx.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!("{marker} marker: {}", t.text.trim()),
                    severity: Severity::Info,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_source;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        analyze_source(path, src)
            .into_iter()
            .filter(|f| f.severity == Severity::Error)
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn hashmap_flagged_only_in_determinism_paths() {
        let src = "use std::collections::HashMap;";
        assert_eq!(
            rules_hit("crates/optim/src/sparse.rs", src),
            vec!["hash-iteration"]
        );
        assert!(rules_hit("crates/nn/src/linear.rs", src).is_empty());
        assert!(rules_hit("crates/optim/tests/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_string_or_comment_is_clean() {
        let src = "// a HashMap would be bad here\nfn f() -> &'static str { \"HashMap\" }";
        assert!(rules_hit("crates/optim/src/sparse.rs", src).is_empty());
    }

    #[test]
    fn instant_flagged_outside_clock_modules() {
        let src = "use std::time::Instant;";
        assert_eq!(
            rules_hit("crates/core/src/trainer.rs", src),
            vec!["wall-clock"]
        );
        // Only the clock-owning modules may read the clock: telemetry's
        // span/trace pair and serve's deadline wrapper.
        assert!(rules_hit("crates/telemetry/src/span.rs", src).is_empty());
        assert!(rules_hit("crates/telemetry/src/trace.rs", src).is_empty());
        assert!(rules_hit("crates/serve/src/clock.rs", src).is_empty());
        // The rest of the serve crate takes deadlines, not instants.
        assert_eq!(
            rules_hit("crates/serve/src/batch.rs", src),
            vec!["wall-clock"]
        );
        // The rest of the telemetry crate — and all of bench — must route
        // timing through span/trace, not read the clock directly.
        assert_eq!(
            rules_hit("crates/telemetry/src/json.rs", src),
            vec!["wall-clock"]
        );
        assert_eq!(
            rules_hit("crates/bench/src/lib.rs", src),
            vec!["wall-clock"]
        );
    }

    #[test]
    fn unwrap_and_friends_flagged_in_lib_and_bin() {
        assert_eq!(
            rules_hit("crates/nn/src/act.rs", "fn f() { x.unwrap(); }"),
            vec!["no-unwrap"]
        );
        assert_eq!(
            rules_hit("crates/core/src/bin/cli.rs", "fn f() { x.expect(\"m\"); }"),
            vec!["no-unwrap"]
        );
        assert_eq!(
            rules_hit("crates/nn/src/act.rs", "fn f() { panic!(\"boom\"); }"),
            vec!["no-unwrap"]
        );
        assert_eq!(
            rules_hit("crates/nn/src/act.rs", "fn f() { todo!() }"),
            vec!["no-unwrap"]
        );
    }

    #[test]
    fn unwrap_lookalikes_are_clean() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(g); z.expect_err(\"m\"); \
                   assert!(true, \"panic! free\"); }";
        assert!(rules_hit("crates/nn/src/act.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_test_module_is_clean() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}";
        assert!(rules_hit("crates/nn/src/act.rs", src).is_empty());
    }

    #[test]
    fn unwrap_after_test_module_is_flagged() {
        let src = "#[cfg(test)]\nmod tests { fn t() { ok.unwrap(); } }\nfn f() { x.unwrap(); }";
        assert_eq!(rules_hit("crates/nn/src/act.rs", src), vec!["no-unwrap"]);
    }

    #[test]
    fn println_flagged_in_lib_but_not_bin() {
        let src = "fn f() { println!(\"hi\"); }";
        assert_eq!(rules_hit("crates/nn/src/act.rs", src), vec!["no-print"]);
        assert!(rules_hit("crates/core/src/bin/cli.rs", src).is_empty());
    }

    #[test]
    fn float_literal_comparison_flagged() {
        assert_eq!(
            rules_hit("crates/nn/src/act.rs", "fn f(x: f32) -> bool { x == 0.0 }"),
            vec!["float-eq"]
        );
        assert_eq!(
            rules_hit("crates/nn/src/act.rs", "fn f(x: f64) -> bool { 1.5 != x }"),
            vec!["float-eq"]
        );
        // Integer comparison and range syntax are clean.
        assert!(rules_hit("crates/nn/src/act.rs", "fn f(x: u8) -> bool { x == 0 }").is_empty());
        assert!(rules_hit("crates/nn/src/act.rs", "fn f() { for _ in 0..10 {} }").is_empty());
    }

    #[test]
    fn unsafe_audit_wants_safety_and_confinement() {
        let ok = "// SAFETY: g upholds the aliasing contract.\nfn f() { unsafe { g() } }";
        let bare = "fn f() { unsafe { g() } }";
        // In the allowlisted kernel modules, a justified block is clean
        // and an unjustified one is exactly the SAFETY finding.
        assert!(rules_hit("crates/tensor/src/pool.rs", ok).is_empty());
        assert!(rules_hit("crates/tensor/src/simd.rs", ok).is_empty());
        assert_eq!(
            rules_hit("crates/tensor/src/pool.rs", bare),
            vec!["unsafe-audit"]
        );
        // Outside them, even a justified block is a confinement finding —
        // and an unjustified one is both findings.
        assert_eq!(
            rules_hit("crates/tensor/src/gemm.rs", ok),
            vec!["unsafe-audit"]
        );
        assert_eq!(
            rules_hit("crates/tensor/src/gemm.rs", bare),
            vec!["unsafe-audit", "unsafe-audit"]
        );
        // Test regions may use unsafe without ceremony.
        let in_test = "#[cfg(test)]\nmod tests { fn t() { unsafe { g() } } }";
        assert!(rules_hit("crates/tensor/src/gemm.rs", in_test).is_empty());
    }

    #[test]
    fn unsafe_fn_accepts_a_safety_doc_section() {
        let documented = "/// Reads one byte.\n///\n/// # Safety\n///\n/// `p` must be valid for reads.\npub unsafe fn raw(p: *const u8) {}";
        assert!(rules_hit("crates/tensor/src/pool.rs", documented).is_empty());
        let undocumented = "pub unsafe fn raw(p: *const u8) {}";
        assert_eq!(
            rules_hit("crates/tensor/src/pool.rs", undocumented),
            vec!["unsafe-audit"]
        );
        // An adjacent // SAFETY: comment works for fns too.
        let commented = "// SAFETY: callers uphold the documented contract.\npub unsafe fn raw(p: *const u8) {}";
        assert!(rules_hit("crates/tensor/src/pool.rs", commented).is_empty());
    }

    #[test]
    fn feature_detect_confined_to_simd_module() {
        let src = "fn pick() -> bool { is_x86_feature_detected!(\"avx2\") }";
        // simd.rs owns detection.
        assert!(rules_hit("crates/tensor/src/simd.rs", src).is_empty());
        // Everywhere else — other tensor modules, other crates, bins —
        // must consult the simd module's selection instead.
        assert_eq!(
            rules_hit("crates/tensor/src/gemm.rs", src),
            vec!["feature-detect"]
        );
        assert_eq!(
            rules_hit("crates/bench/src/bin/bench_parallel.rs", src),
            vec!["feature-detect"]
        );
        // Tests may probe the CPU freely (e.g. to decide skippability).
        assert!(rules_hit("crates/tensor/tests/conv_fused.rs", src).is_empty());
        let in_test = "#[cfg(test)]\nmod tests { fn t() { is_x86_feature_detected!(\"fma\"); } }";
        assert!(rules_hit("crates/tensor/src/gemm.rs", in_test).is_empty());
        // An identifier that merely contains the name is clean.
        let lookalike =
            "fn f() { let is_x86_feature_detected = 1; let _ = is_x86_feature_detected; }";
        assert!(rules_hit("crates/tensor/src/gemm.rs", lookalike).is_empty());
    }

    #[test]
    fn panic_path_owns_request_decode_replay_files() {
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(
            rules_hit("crates/serve/src/http.rs", src),
            vec!["panic-path"]
        );
        assert_eq!(
            rules_hit("crates/core/src/checkpoint.rs", src),
            vec!["panic-path"]
        );
        // Off the hot paths no-unwrap still owns the call site — exactly
        // one rule id fires either way, so one allow entry suffices.
        assert_eq!(rules_hit("crates/nn/src/act.rs", src), vec!["no-unwrap"]);
        // Bins on the same paths keep plain no-unwrap (panic-path is a
        // library contract; a CLI may still not unwrap, but under the
        // laxer id).
        assert_eq!(
            rules_hit("crates/serve/src/bin/probe.rs", src),
            vec!["no-unwrap"]
        );
        // unreachable! is a panic-path exclusive — decode code full of
        // match arms loves it, and corrupt input reaches those arms.
        let unreach = "fn f() { unreachable!(); }";
        assert_eq!(
            rules_hit("crates/serve/src/http.rs", unreach),
            vec!["panic-path"]
        );
        assert!(rules_hit("crates/nn/src/act.rs", unreach).is_empty());
        let in_test = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        assert!(rules_hit("crates/serve/src/http.rs", in_test).is_empty());
    }

    #[test]
    fn panic_path_messages_name_the_enclosing_fn() {
        let findings = analyze_source("crates/serve/src/http.rs", "fn handle() { x.unwrap(); }");
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("in fn `handle`"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn shared_state_confined_to_sanctioned_modules() {
        let src = "use std::sync::Mutex;";
        assert_eq!(
            rules_hit("crates/serve/src/batch.rs", src),
            vec!["shared-state"]
        );
        // The sanctioned owners — pool, telemetry, serve's rt — are clean.
        assert!(rules_hit("crates/tensor/src/pool.rs", src).is_empty());
        assert!(rules_hit("crates/telemetry/src/metrics.rs", src).is_empty());
        assert!(rules_hit("crates/serve/src/rt.rs", src).is_empty());
        assert!(rules_hit("crates/serve/tests/x.rs", src).is_empty());
        // Channels and atomics are shared state too.
        assert_eq!(
            rules_hit("crates/core/src/trainer.rs", "use std::sync::mpsc;"),
            vec!["shared-state"]
        );
        assert_eq!(
            rules_hit(
                "crates/nn/src/act.rs",
                "static N: AtomicU64 = AtomicU64::new(0);"
            ),
            vec!["shared-state", "shared-state"]
        );
        // Write-once lazy init is not shared *mutable* state.
        assert!(rules_hit("crates/tensor/src/gemm.rs", "use std::sync::OnceLock;").is_empty());
    }

    #[test]
    fn static_mut_is_flagged_structurally() {
        assert_eq!(
            rules_hit("crates/nn/src/act.rs", "static mut N: u32 = 0;"),
            vec!["shared-state"]
        );
        // `&mut`, `let mut`, and immutable statics never false-positive.
        let clean = "static K: u32 = 0;\nfn f(x: &mut u32) { let mut y = *x; y += K; *x = y; }";
        assert!(rules_hit("crates/nn/src/act.rs", clean).is_empty());
    }

    #[test]
    fn atomic_orderings_report_per_site_but_cmp_ordering_is_clean() {
        let findings = analyze_source(
            "crates/nn/src/act.rs",
            "fn f() { N.fetch_add(1, Ordering::SeqCst); }",
        );
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("Ordering::SeqCst"),
            "{}",
            findings[0].message
        );
        assert!(
            findings[0].message.contains("in fn `f`"),
            "{}",
            findings[0].message
        );
        // `cmp::Ordering`'s variants share the type name but not the
        // variant names — comparison code stays clean.
        let cmp = "fn f(c: Ordering) -> bool { matches!(c, Ordering::Less) }";
        assert!(rules_hit("crates/nn/src/act.rs", cmp).is_empty());
    }

    #[test]
    fn raw_thread_flagged_outside_pool() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }";
        let scope = "fn f() { std::thread::scope(|s| { let _ = s; }); }";
        assert_eq!(
            rules_hit("crates/tensor/src/gemm.rs", spawn),
            vec!["raw-thread"]
        );
        assert_eq!(
            rules_hit("crates/optim/src/topk.rs", scope),
            vec!["raw-thread"]
        );
        // The pool module owns compute-thread lifecycle and serve's rt
        // module owns service-thread lifecycle; tests and benches may
        // spawn helpers freely.
        assert!(rules_hit("crates/tensor/src/pool.rs", spawn).is_empty());
        assert!(rules_hit("crates/serve/src/rt.rs", spawn).is_empty());
        // The rest of serve must go through rt::spawn, not raw spawns.
        assert_eq!(
            rules_hit("crates/serve/src/server.rs", spawn),
            vec!["raw-thread"]
        );
        assert!(rules_hit("crates/tensor/tests/pool_overhead.rs", spawn).is_empty());
        let in_test = "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(|| {}); } }";
        assert!(rules_hit("crates/core/src/trainer.rs", in_test).is_empty());
    }

    #[test]
    fn thread_lookalikes_are_clean() {
        // Other items from std::thread stay legal — only spawn/scope create
        // threads behind the pool's back.
        let src = "fn f() { let n = std::thread::available_parallelism(); \
                   std::thread::sleep(d); my::scope(); spawn(); }";
        assert!(rules_hit("crates/core/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn todo_markers_are_informational() {
        let findings = analyze_source("crates/nn/src/act.rs", "// TODO: faster path\nfn f() {}");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "todo-marker");
        assert_eq!(findings[0].severity, Severity::Info);
    }
}
