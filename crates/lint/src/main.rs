//! The `dropback-lint` command-line gate.
//!
//! ```text
//! dropback-lint --check [--strict] [--json] [--root DIR] [--allow FILE]
//! ```
//!
//! Exits 0 when the tree is clean, 1 on any unsuppressed finding, and 2 on
//! usage or I/O errors. Stale `lint.allow` entries print as warnings by
//! default; `--strict` (the CI gate's mode) turns them into failures so the
//! allowlist cannot rot. Human diagnostics (`file:line:col: [rule] message`)
//! go to stdout; `--json` replaces them with the machine-readable report.

use dropback_lint::{check_workspace, Allowlist};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    check: bool,
    strict: bool,
    json: bool,
    root: PathBuf,
    allow: Option<PathBuf>,
}

fn usage() -> String {
    "usage: dropback-lint --check [--strict] [--json] [--root DIR] [--allow FILE]\n\
     \n\
     Determinism & robustness lints for the DropBack workspace.\n\
     --check        run the pass (required; guards against accidental no-ops)\n\
     --strict       stale lint.allow entries fail the check instead of warning\n\
     --json         emit the machine-readable JSON report instead of text\n\
     --root DIR     workspace root to scan (default: current directory)\n\
     --allow FILE   suppression file (default: <root>/lint.allow if present)\n\
     \n\
     Rules and rationale: docs/LINTS.md. Exit: 0 clean, 1 findings, 2 errors."
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        strict: false,
        json: false,
        root: PathBuf::from("."),
        allow: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => opts.check = true,
            "--strict" => opts.strict = true,
            "--json" => opts.json = true,
            "--root" => {
                i += 1;
                let dir = args.get(i).ok_or("--root requires a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--allow" => {
                i += 1;
                let file = args.get(i).ok_or("--allow requires a file path")?;
                opts.allow = Some(PathBuf::from(file));
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
        i += 1;
    }
    if !opts.check {
        return Err(usage());
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<bool, String> {
    let allow = match &opts.allow {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read allowlist {}: {e}", path.display()))?;
            Allowlist::parse(&text)?
        }
        None => {
            let default = opts.root.join("lint.allow");
            match std::fs::read_to_string(&default) {
                Ok(text) => Allowlist::parse(&text)?,
                Err(_) => Allowlist::empty(),
            }
        }
    };
    let report = check_workspace(&opts.root, &allow)?;
    if opts.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    let stale_fails = opts.strict && !report.unused_allows.is_empty();
    if stale_fails && !opts.json {
        println!(
            "--strict: {} stale allowlist entr{} fail the check",
            report.unused_allows.len(),
            if report.unused_allows.len() == 1 {
                "y"
            } else {
                "ies"
            }
        );
    }
    Ok(report.has_failures() || stale_fails)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
