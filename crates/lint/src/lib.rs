//! `dropback-lint` — a zero-dependency determinism & robustness
//! static-analysis pass for the DropBack workspace.
//!
//! DropBack's correctness hinges on bit-exact determinism: every forgotten
//! weight must be regenerated identically from `regen(seed, index)` and the
//! tracked top-k set must be reproducible across runs. This crate enforces
//! the coding invariants that property depends on — no order-nondeterministic
//! containers in tracked-set/serialization paths, no wall-clock or entropy
//! reads in deterministic code, no silent panics or stray prints in library
//! crates — mechanically, on every PR.
//!
//! Run it with:
//!
//! ```text
//! cargo run -p dropback-lint -- --check [--json]
//! ```
//!
//! Suppressions live in the committed `lint.allow` file and must each carry
//! a justification. `docs/LINTS.md` documents every rule and its rationale.
//!
//! The implementation is deliberately dependency-free (no `syn`): a
//! hand-rolled lexer ([`lexer`]) feeds a rule engine ([`rules`]) that walks
//! every `.rs` file in the workspace ([`engine`]).

pub mod allow;
pub mod engine;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;

pub use allow::{AllowEntry, Allowlist};
pub use engine::{analyze_source, check_workspace, FileCtx, Role};
pub use parse::{Item, ItemKind, ItemModel, UnsafeBlock};
pub use report::{Finding, Report, Severity, Suppressed};
pub use rules::{all_rules, Rule};

use std::path::Path;

/// Lints the workspace at `root`, loading `root/lint.allow` when present.
///
/// # Errors
///
/// Returns a message when the allowlist is malformed or the walk fails.
pub fn check_workspace_with_default_allow(root: &Path) -> Result<Report, String> {
    let allow_path = root.join("lint.allow");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(_) => Allowlist::empty(),
    };
    check_workspace(root, &allow)
}
