//! The committed suppression file (`lint.allow`).
//!
//! One entry per line:
//!
//! ```text
//! <rule-id> <path-prefix> -- <justification>
//! ```
//!
//! `#` starts a comment; blank lines are skipped. A finding is suppressed
//! when an entry's rule matches and its path-prefix is a prefix of the
//! finding's workspace-relative path. The justification is **mandatory** —
//! a suppression without a reason is itself an error, so every exception
//! to the determinism/robustness contract is explained in the tree.

use crate::report::Finding;

/// One parsed suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id this entry silences.
    pub rule: String,
    /// Workspace-relative path prefix it applies to.
    pub path_prefix: String,
    /// Why this exception is sound.
    pub justification: String,
    /// 1-based line in `lint.allow` (for stale-entry diagnostics).
    pub source_line: u32,
}

/// The whole suppression file.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// An empty allowlist (used when `lint.allow` does not exist).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses the file text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line when an entry is
    /// malformed or its justification is missing/empty.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (head, justification) = match line.split_once(" -- ") {
                Some((head, justification)) => (head, justification.trim()),
                // A line ending in ` --` has the separator but nothing
                // after it (trailing spaces were trimmed above).
                None => match line.strip_suffix(" --") {
                    Some(head) => (head, ""),
                    None => {
                        return Err(format!(
                            "lint.allow:{line_no}: missing ' -- <justification>' — every \
                             suppression must say why it is sound"
                        ))
                    }
                },
            };
            if justification.is_empty() {
                return Err(format!("lint.allow:{line_no}: empty justification"));
            }
            let mut parts = head.split_whitespace();
            let (Some(rule), Some(path_prefix), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "lint.allow:{line_no}: expected '<rule-id> <path-prefix> -- <justification>', \
                     got {line:?}"
                ));
            };
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path_prefix: path_prefix.to_string(),
                justification: justification.to_string(),
                source_line: line_no,
            });
        }
        Ok(Self { entries })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rejects entries naming rule ids the engine does not define.
    ///
    /// A typo'd id would otherwise parse fine and then suppress nothing
    /// forever, surfacing only as a perpetual stale-entry warning.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line and the known ids.
    pub fn validate_rules(&self, known: &[&str]) -> Result<(), String> {
        for e in &self.entries {
            if !known.contains(&e.rule.as_str()) {
                return Err(format!(
                    "lint.allow:{}: unknown rule id '{}' — known rules: {}",
                    e.source_line,
                    e.rule,
                    known.join(", ")
                ));
            }
        }
        Ok(())
    }

    /// The justification of the first entry suppressing `finding`, if any.
    pub fn suppresses(&self, finding: &Finding) -> Option<String> {
        self.entries
            .iter()
            .find(|e| e.rule == finding.rule && finding.path.starts_with(&e.path_prefix))
            .map(|e| e.justification.clone())
    }

    /// Entries that silenced nothing in `report` — stale suppressions that
    /// should be pruned so the allowlist never outlives the exceptions it
    /// documents.
    pub fn unused(&self, report: &crate::report::Report) -> Vec<AllowEntry> {
        self.entries
            .iter()
            .filter(|e| {
                !report
                    .suppressed
                    .iter()
                    .any(|s| s.finding.rule == e.rule && s.finding.path.starts_with(&e.path_prefix))
            })
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line: 1,
            col: 1,
            message: String::new(),
            severity: Severity::Error,
        }
    }

    #[test]
    fn parses_entries_comments_and_blanks() {
        let text = "# header\n\nno-unwrap crates/nn/src/ -- documented panics\n";
        let list = Allowlist::parse(text).unwrap();
        assert_eq!(list.len(), 1);
        assert!(!list.is_empty());
        assert!(list
            .suppresses(&finding("no-unwrap", "crates/nn/src/act.rs"))
            .is_some());
        assert!(list
            .suppresses(&finding("no-unwrap", "crates/optim/src/sparse.rs"))
            .is_none());
        assert!(list
            .suppresses(&finding("no-print", "crates/nn/src/act.rs"))
            .is_none());
    }

    #[test]
    fn missing_justification_is_an_error() {
        let err = Allowlist::parse("no-unwrap crates/nn/src/\n").unwrap_err();
        assert!(err.contains("lint.allow:1"), "{err}");
        assert!(err.contains("justification"), "{err}");
        let err = Allowlist::parse("no-unwrap crates/nn/src/ --   \n").unwrap_err();
        assert!(err.contains("empty justification"), "{err}");
    }

    #[test]
    fn malformed_entry_is_an_error() {
        let err = Allowlist::parse("just-a-rule -- why\n").unwrap_err();
        assert!(err.contains("expected"), "{err}");
        let err = Allowlist::parse("rule path extra -- why\n").unwrap_err();
        assert!(err.contains("expected"), "{err}");
    }

    #[test]
    fn unknown_rule_ids_are_rejected() {
        let list = Allowlist::parse("no-unwrpa crates/nn/src/ -- typo'd rule id\n").unwrap();
        let err = list.validate_rules(&["no-unwrap", "no-print"]).unwrap_err();
        assert!(err.contains("lint.allow:1"), "{err}");
        assert!(err.contains("no-unwrpa"), "{err}");
        assert!(err.contains("known rules"), "{err}");
        let ok = Allowlist::parse("no-print crates/nn/src/ -- fine\n").unwrap();
        assert!(ok.validate_rules(&["no-unwrap", "no-print"]).is_ok());
    }

    #[test]
    fn unused_entries_are_reported() {
        let list =
            Allowlist::parse("no-unwrap crates/nn/src/ -- used\nno-print crates/zz/ -- stale\n")
                .unwrap();
        let mut report = crate::report::Report::default();
        report.add(finding("no-unwrap", "crates/nn/src/act.rs"), &list);
        let unused = list.unused(&report);
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, "no-print");
        assert_eq!(unused[0].source_line, 2);
    }
}
