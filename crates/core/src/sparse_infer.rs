//! Streaming-regeneration inference: compute a layer's forward pass
//! without ever materializing its dense weight matrix.
//!
//! This is the accelerator dataflow the paper describes — each weight is
//! either one of the `k` stored values or regenerated from `(seed, index)`
//! at the moment the MAC consumes it, then discarded. The rest of this
//! workspace rebuilds a dense view for the layer kernels (convenient on a
//! CPU); this module shows the dense view is unnecessary and counts the
//! traffic the energy model charges for.
//!
//! The tracked map is a `BTreeMap` to match
//! [`dropback_optim::SparseDropBack::tracked`]: index-ordered iteration
//! keeps every walk over the stored weights reproducible, which the
//! `dropback-lint` `hash-iteration` rule checks mechanically.
//!
//! Shape errors surface as [`StreamError`] values rather than panics so a
//! caller wiring up a model zoo entry gets an actionable message instead
//! of a backtrace.

use dropback_nn::{ParamRange, ParamStore};
use dropback_tensor::{pool, Tensor};
use std::collections::BTreeMap;

/// Output-neuron chunk size for the pooled batched forward. Fixed by
/// problem shape — never by thread count — so the partitioning (and the
/// per-neuron accumulation order) is identical at every
/// `DROPBACK_THREADS` value.
const OUT_CHUNK: usize = 32;

/// Why a streaming evaluator could not be built or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The weight range length disagrees with `in_dim * out_dim`.
    ShapeMismatch {
        /// Name of the offending weight range.
        range: String,
        /// Length of the range in the parameter store.
        range_len: usize,
        /// Input dimension the caller requested.
        in_dim: usize,
        /// Output dimension the caller requested.
        out_dim: usize,
    },
    /// The input tensor is not `[n, in_dim]`.
    InputShape {
        /// Shape the caller passed.
        got: Vec<usize>,
        /// Input dimension the layer expects.
        in_dim: usize,
    },
    /// The parameter store has no `*.weight` ranges to stream.
    NoWeights,
    /// A weight range has no paired `*.bias` range, so its `[in, out]`
    /// split cannot be inferred without an input tensor.
    UnknownDims {
        /// Name of the bias-less weight range.
        range: String,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::ShapeMismatch {
                range,
                range_len,
                in_dim,
                out_dim,
            } => write!(
                f,
                "weight range `{range}` has {range_len} values but the layer \
                 was asked for {in_dim}x{out_dim} = {} — check the model's \
                 layer dimensions against the parameter store",
                in_dim * out_dim
            ),
            StreamError::InputShape { got, in_dim } => write!(
                f,
                "streaming forward expects input shape [n, {in_dim}], got {got:?}"
            ),
            StreamError::NoWeights => write!(
                f,
                "parameter store has no `*.weight` ranges — nothing to stream \
                 (was the store built by the model zoo?)"
            ),
            StreamError::UnknownDims { range } => write!(
                f,
                "weight range `{range}` has no paired `.bias` range to infer its \
                 [in, out] split from — streaming inference supports the model \
                 zoo's biased MLP naming (fcN.weight / fcN.bias)"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Access counts from a streaming forward pass (feeds the energy model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Weights read from the tracked store.
    pub stored_reads: u64,
    /// Weights regenerated on the fly.
    pub regens: u64,
}

/// A fully-connected layer evaluated by streaming weights from a sparse
/// tracked map plus regeneration — never holding the dense matrix.
#[derive(Debug, Clone)]
pub struct StreamingLinear {
    seed: u64,
    weight: ParamRange,
    bias: Option<ParamRange>,
    in_dim: usize,
    out_dim: usize,
    tracked: BTreeMap<usize, f32>,
}

impl StreamingLinear {
    /// Builds a streaming evaluator for the linear layer whose ranges are
    /// `weight` (length `in_dim * out_dim`, row-major `[out, in]`) and
    /// optional `bias`, with tracked entries taken from `tracked`
    /// (global-index keyed, e.g. [`dropback_optim::SparseDropBack::tracked`]).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::ShapeMismatch`] if the weight range length
    /// disagrees with the dimensions.
    pub fn new(
        seed: u64,
        weight: ParamRange,
        bias: Option<ParamRange>,
        in_dim: usize,
        out_dim: usize,
        tracked: &BTreeMap<usize, f32>,
    ) -> Result<Self, StreamError> {
        if weight.len() != in_dim * out_dim {
            return Err(StreamError::ShapeMismatch {
                range: weight.name().to_string(),
                range_len: weight.len(),
                in_dim,
                out_dim,
            });
        }
        // Keep only this layer's entries (weight and bias ranges).
        let in_weight = |i: usize| i >= weight.start() && i < weight.end();
        let in_bias = |i: usize| {
            bias.as_ref()
                .map(|b| i >= b.start() && i < b.end())
                .unwrap_or(false)
        };
        let mine: BTreeMap<usize, f32> = tracked
            .iter()
            .filter(|(&i, _)| in_weight(i) || in_bias(i))
            .map(|(&i, &w)| (i, w))
            .collect();
        Ok(Self {
            seed,
            weight,
            bias,
            in_dim,
            out_dim,
            tracked: mine,
        })
    }

    /// Number of tracked (stored) weights this layer carries.
    pub fn stored(&self) -> usize {
        self.tracked.len()
    }

    /// Forward pass `y = x·Wᵀ (+ b)` with on-demand weights; returns the
    /// output and the access statistics.
    ///
    /// The whole batch shares one weight walk: every weight is looked up
    /// (or regenerated) exactly once per call and consumed by all `n`
    /// rows, so micro-batching `n` requests costs one regeneration sweep
    /// instead of `n`. Output-neuron chunks run on the worker pool; the
    /// per-neuron accumulation order is fixed by problem shape alone, so
    /// results are bit-identical at any thread count.
    ///
    /// The tracked map and the bias (when present) are the only stored
    /// values consulted; everything else is regenerated per use.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InputShape`] if `x` is not `[n, in_dim]`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, StreamStats), StreamError> {
        if x.rank() != 2 || x.shape()[1] != self.in_dim {
            return Err(StreamError::InputShape {
                got: x.shape().to_vec(),
                in_dim: self.in_dim,
            });
        }
        let n = x.shape()[0];
        let scheme = self.weight.scheme();
        let mut stats = StreamStats::default();
        let mut out = vec![0.0f32; n * self.out_dim];
        // Each chunk of output neurons is an independent dot-product
        // block: partials are produced in index order and merged
        // serially, mirroring the pool's serial-order merge contract.
        let n_chunks = self.out_dim.div_ceil(OUT_CHUNK);
        let partials = pool::map_indexed(n_chunks, |ci| {
            let o_lo = ci * OUT_CHUNK;
            let o_hi = (o_lo + OUT_CHUNK).min(self.out_dim);
            let mut part = vec![0.0f32; (o_hi - o_lo) * n];
            let mut pstats = StreamStats::default();
            for o in o_lo..o_hi {
                let col = &mut part[(o - o_lo) * n..(o - o_lo + 1) * n];
                for i in 0..self.in_dim {
                    let gidx = self.weight.start() + o * self.in_dim + i;
                    let w = match self.tracked.get(&gidx) {
                        Some(&w) => {
                            pstats.stored_reads += 1;
                            w
                        }
                        None => {
                            pstats.regens += 1;
                            scheme.value(self.seed, gidx as u64)
                        }
                    };
                    if w == 0.0 {
                        continue;
                    }
                    for (r, acc) in col.iter_mut().enumerate() {
                        *acc += x.data()[r * self.in_dim + i] * w;
                    }
                }
            }
            (part, pstats)
        });
        for (ci, (part, pstats)) in partials.into_iter().enumerate() {
            let o_lo = ci * OUT_CHUNK;
            for (local, col) in part.chunks_exact(n).enumerate() {
                for (r, &v) in col.iter().enumerate() {
                    out[r * self.out_dim + o_lo + local] = v;
                }
            }
            stats.stored_reads += pstats.stored_reads;
            stats.regens += pstats.regens;
        }
        // Bias values are constants at init; tracked entries override.
        if let Some(b) = &self.bias {
            let bscheme = b.scheme();
            for o in 0..self.out_dim {
                let gidx = b.start() + o;
                let bv = match self.tracked.get(&gidx) {
                    Some(&v) => {
                        stats.stored_reads += 1;
                        v
                    }
                    None => {
                        stats.regens += 1;
                        bscheme.value(self.seed, gidx as u64)
                    }
                };
                for r in 0..n {
                    out[r * self.out_dim + o] += bv;
                }
            }
        }
        Ok((Tensor::from_vec(vec![n, self.out_dim], out), stats))
    }
}

/// A whole MLP prebuilt for repeated streaming inference: every layer's
/// tracked entries are filtered once at construction, so a server can
/// evaluate thousands of micro-batches without re-walking the tracked map
/// or re-discovering parameter ranges per request.
///
/// Layers follow the model zoo's `fcN.weight`/`fcN.bias` naming; ReLU is
/// applied between layers (not after the last). Dimensions are inferred
/// from each weight's paired bias range (`out_dim = bias.len()`), so the
/// evaluator is self-contained given only a [`ParamStore`] and a tracked
/// map — exactly what a `(seed, k entries)` checkpoint reconstructs.
#[derive(Debug, Clone)]
pub struct StreamingModel {
    layers: Vec<StreamingLinear>,
    in_dim: usize,
    out_dim: usize,
}

impl StreamingModel {
    /// Builds the evaluator from a parameter store plus tracked entries
    /// (global-index keyed, e.g. a sparse checkpoint's stored weights).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::NoWeights`] if the store has no `*.weight`
    /// ranges, [`StreamError::UnknownDims`] if a weight range lacks the
    /// paired bias needed to infer its dimensions, and
    /// [`StreamError::ShapeMismatch`] if a weight length is not divisible
    /// by its bias length.
    pub fn new(ps: &ParamStore, tracked: &BTreeMap<usize, f32>) -> Result<Self, StreamError> {
        let weights: Vec<ParamRange> = ps
            .ranges()
            .iter()
            .filter(|r| r.name().ends_with(".weight"))
            .cloned()
            .collect();
        if weights.is_empty() {
            return Err(StreamError::NoWeights);
        }
        let mut layers = Vec::with_capacity(weights.len());
        for w in &weights {
            let bias = ps
                .ranges()
                .iter()
                .find(|r| r.name() == w.name().replace(".weight", ".bias"))
                .cloned();
            let Some(b) = &bias else {
                return Err(StreamError::UnknownDims {
                    range: w.name().to_string(),
                });
            };
            let out_dim = b.len();
            if out_dim == 0 || !w.len().is_multiple_of(out_dim) {
                return Err(StreamError::ShapeMismatch {
                    range: w.name().to_string(),
                    range_len: w.len(),
                    in_dim: w.len() / out_dim.max(1),
                    out_dim,
                });
            }
            let in_dim = w.len() / out_dim;
            layers.push(StreamingLinear::new(
                ps.seed(),
                w.clone(),
                bias,
                in_dim,
                out_dim,
                tracked,
            )?);
        }
        let in_dim = layers[0].in_dim;
        let out_dim = layers[layers.len() - 1].out_dim;
        Ok(Self {
            layers,
            in_dim,
            out_dim,
        })
    }

    /// Input feature width the first layer expects.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width (class logits) of the last layer.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Total tracked (stored) weights across all layers.
    pub fn stored(&self) -> usize {
        self.layers.iter().map(StreamingLinear::stored).sum()
    }

    /// Batched forward pass over `x: [n, in_dim]`: one streaming weight
    /// walk per layer for the whole micro-batch, run on the worker pool.
    /// A single sample is just `n == 1` — the CLI path and a serving
    /// micro-batch share this implementation.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InputShape`] if `x` is not `[n, in_dim]`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, StreamStats), StreamError> {
        let mut cur = x.clone();
        let mut total = StreamStats::default();
        let count = self.layers.len();
        for (li, layer) in self.layers.iter().enumerate() {
            let (y, stats) = layer.forward(&cur)?;
            total.stored_reads += stats.stored_reads;
            total.regens += stats.regens;
            cur = if li + 1 < count {
                y.map(|v| v.max(0.0))
            } else {
                y
            };
        }
        Ok((cur, total))
    }
}

/// Convenience: streams an entire MLP whose weight ranges follow the
/// `fcN.weight`/`fcN.bias` naming of the model zoo, applying ReLU between
/// layers. Returns class logits and total access statistics.
///
/// One-shot wrapper over [`StreamingModel`]; callers evaluating more than
/// once should build the model once and reuse it.
///
/// # Errors
///
/// Returns [`StreamError::NoWeights`] if the store has no `*.weight`
/// ranges, and propagates shape errors from [`StreamingModel`].
pub fn stream_mlp_forward(
    ps: &ParamStore,
    tracked: &BTreeMap<usize, f32>,
    x: &Tensor,
) -> Result<(Tensor, StreamStats), StreamError> {
    StreamingModel::new(ps, tracked)?.forward(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_data::{synthetic_mnist, Batcher};
    use dropback_nn::{models, Mode};
    use dropback_optim::{Optimizer as _, SparseDropBack};

    #[test]
    fn streaming_matches_dense_forward_exactly() {
        let (train, test) = synthetic_mnist(400, 64, 13);
        let mut net = models::mnist_100_100(13);
        let mut opt = SparseDropBack::new(6_000);
        let batcher = Batcher::new(64, 3);
        for (x, labels) in batcher.epoch(&train, 0) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
        }
        let (x, _) = test.batch(0, 16);
        let dense = net.forward(&x, Mode::Eval);
        let (streamed, stats) =
            stream_mlp_forward(net.store(), opt.tracked(), &x).expect("zoo MLP streams");
        assert_eq!(dense.shape(), streamed.shape());
        for (a, b) in dense.data().iter().zip(streamed.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // All 89,610 weights touched exactly once, split between stored
        // and regenerated.
        assert_eq!(stats.stored_reads + stats.regens, 89_610);
        assert!(stats.stored_reads <= 6_000);
    }

    #[test]
    fn untrained_model_streams_with_zero_stored_reads() {
        let net = models::mnist_100_100(29);
        let empty = BTreeMap::new();
        let x = Tensor::filled(vec![2, 784], 0.1);
        let (y, stats) = stream_mlp_forward(net.store(), &empty, &x).expect("zoo MLP streams");
        assert_eq!(y.shape(), &[2, 10]);
        assert_eq!(stats.stored_reads, 0);
        assert_eq!(stats.regens, 89_610);
        // And it matches the dense forward of the fresh (init-valued) net.
        let mut dense_net = models::mnist_100_100(29);
        let dense = dense_net.forward(&x, Mode::Eval);
        for (a, b) in dense.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn dimension_mismatch_is_an_actionable_error() {
        let net = models::mnist_100_100(1);
        let w = net.param_ranges()[0].clone();
        let err = StreamingLinear::new(1, w, None, 10, 10, &BTreeMap::new())
            .expect_err("78400 values cannot be a 10x10 layer");
        let msg = err.to_string();
        assert!(msg.contains("10x10"), "mentions requested dims: {msg}");
        assert!(msg.contains("78400"), "mentions actual length: {msg}");
    }

    #[test]
    fn input_shape_mismatch_is_an_actionable_error() {
        let net = models::mnist_100_100(2);
        let w = net.param_ranges()[0].clone();
        let layer = StreamingLinear::new(2, w, None, 784, 100, &BTreeMap::new()).expect("fc1");
        let bad = Tensor::filled(vec![2, 3], 0.0);
        let err = layer.forward(&bad).expect_err("wrong input width");
        assert_eq!(
            err,
            StreamError::InputShape {
                got: vec![2, 3],
                in_dim: 784
            }
        );
        assert!(err.to_string().contains("[n, 784]"));
    }

    #[test]
    fn batched_forward_is_bit_identical_to_per_sample_calls() {
        let (train, test) = synthetic_mnist(300, 48, 41);
        let mut net = models::mnist_100_100(41);
        let mut opt = SparseDropBack::new(5_000);
        let batcher = Batcher::new(48, 1);
        for (x, labels) in batcher.epoch(&train, 0) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
        }
        let model = StreamingModel::new(net.store(), opt.tracked()).expect("zoo MLP streams");
        assert_eq!(model.in_dim(), 784);
        assert_eq!(model.out_dim(), 10);
        assert!(model.stored() <= 5_000);
        let (x, _) = test.batch(0, 8);
        let (batched, _) = model.forward(&x).expect("batched forward");
        // Evaluate each row alone through the same model; the micro-batch
        // must not perturb any individual result by even one bit.
        for r in 0..8 {
            let row = Tensor::from_vec(vec![1, 784], x.data()[r * 784..(r + 1) * 784].to_vec());
            let (single, _) = model.forward(&row).expect("single forward");
            assert_eq!(
                batched.data()[r * 10..(r + 1) * 10]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                single
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "row {r} differs between batched and single-sample forward"
            );
        }
    }

    #[test]
    fn streaming_model_is_thread_count_invariant() {
        let net = models::mnist_100_100(57);
        let model = StreamingModel::new(net.store(), &BTreeMap::new()).expect("zoo MLP streams");
        let x = Tensor::filled(vec![3, 784], 0.05);
        let before = dropback_tensor::pool::threads();
        let run = |t: usize| {
            dropback_tensor::pool::set_threads(t);
            let (y, _) = model.forward(&x).expect("forward");
            y.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        let one = run(1);
        let four = run(4);
        dropback_tensor::pool::set_threads(before);
        assert_eq!(
            one, four,
            "pooled streaming forward must not depend on thread count"
        );
    }

    #[test]
    fn biasless_weight_range_reports_unknown_dims() {
        let mut ps = ParamStore::new(3);
        let _ = ps.register("solo.weight", 12, dropback_nn::InitScheme::Constant(0.0));
        let err = StreamingModel::new(&ps, &BTreeMap::new()).expect_err("no bias to infer dims");
        assert_eq!(
            err,
            StreamError::UnknownDims {
                range: "solo.weight".into()
            }
        );
        assert!(err.to_string().contains("no paired `.bias` range"));
    }

    #[test]
    fn empty_store_reports_no_weights() {
        let ps = ParamStore::new(7);
        let x = Tensor::filled(vec![1, 4], 0.0);
        let err = stream_mlp_forward(&ps, &BTreeMap::new(), &x).expect_err("nothing to stream");
        assert_eq!(err, StreamError::NoWeights);
        assert!(err.to_string().contains("no `*.weight` ranges"));
    }
}
