//! Streaming-regeneration inference: compute a layer's forward pass
//! without ever materializing its dense weight matrix.
//!
//! This is the accelerator dataflow the paper describes — each weight is
//! either one of the `k` stored values or regenerated from `(seed, index)`
//! at the moment the MAC consumes it, then discarded. The rest of this
//! workspace rebuilds a dense view for the layer kernels (convenient on a
//! CPU); this module shows the dense view is unnecessary and counts the
//! traffic the energy model charges for.
//!
//! The tracked map is a `BTreeMap` to match
//! [`dropback_optim::SparseDropBack::tracked`]: index-ordered iteration
//! keeps every walk over the stored weights reproducible, which the
//! `dropback-lint` `hash-iteration` rule checks mechanically.
//!
//! Shape errors surface as [`StreamError`] values rather than panics so a
//! caller wiring up a model zoo entry gets an actionable message instead
//! of a backtrace.

use dropback_nn::{ParamRange, ParamStore};
use dropback_tensor::Tensor;
use std::collections::BTreeMap;

/// Why a streaming evaluator could not be built or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The weight range length disagrees with `in_dim * out_dim`.
    ShapeMismatch {
        /// Name of the offending weight range.
        range: String,
        /// Length of the range in the parameter store.
        range_len: usize,
        /// Input dimension the caller requested.
        in_dim: usize,
        /// Output dimension the caller requested.
        out_dim: usize,
    },
    /// The input tensor is not `[n, in_dim]`.
    InputShape {
        /// Shape the caller passed.
        got: Vec<usize>,
        /// Input dimension the layer expects.
        in_dim: usize,
    },
    /// The parameter store has no `*.weight` ranges to stream.
    NoWeights,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::ShapeMismatch {
                range,
                range_len,
                in_dim,
                out_dim,
            } => write!(
                f,
                "weight range `{range}` has {range_len} values but the layer \
                 was asked for {in_dim}x{out_dim} = {} — check the model's \
                 layer dimensions against the parameter store",
                in_dim * out_dim
            ),
            StreamError::InputShape { got, in_dim } => write!(
                f,
                "streaming forward expects input shape [n, {in_dim}], got {got:?}"
            ),
            StreamError::NoWeights => write!(
                f,
                "parameter store has no `*.weight` ranges — nothing to stream \
                 (was the store built by the model zoo?)"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Access counts from a streaming forward pass (feeds the energy model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Weights read from the tracked store.
    pub stored_reads: u64,
    /// Weights regenerated on the fly.
    pub regens: u64,
}

/// A fully-connected layer evaluated by streaming weights from a sparse
/// tracked map plus regeneration — never holding the dense matrix.
#[derive(Debug, Clone)]
pub struct StreamingLinear {
    seed: u64,
    weight: ParamRange,
    bias: Option<ParamRange>,
    in_dim: usize,
    out_dim: usize,
    tracked: BTreeMap<usize, f32>,
}

impl StreamingLinear {
    /// Builds a streaming evaluator for the linear layer whose ranges are
    /// `weight` (length `in_dim * out_dim`, row-major `[out, in]`) and
    /// optional `bias`, with tracked entries taken from `tracked`
    /// (global-index keyed, e.g. [`dropback_optim::SparseDropBack::tracked`]).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::ShapeMismatch`] if the weight range length
    /// disagrees with the dimensions.
    pub fn new(
        seed: u64,
        weight: ParamRange,
        bias: Option<ParamRange>,
        in_dim: usize,
        out_dim: usize,
        tracked: &BTreeMap<usize, f32>,
    ) -> Result<Self, StreamError> {
        if weight.len() != in_dim * out_dim {
            return Err(StreamError::ShapeMismatch {
                range: weight.name().to_string(),
                range_len: weight.len(),
                in_dim,
                out_dim,
            });
        }
        // Keep only this layer's entries (weight and bias ranges).
        let in_weight = |i: usize| i >= weight.start() && i < weight.end();
        let in_bias = |i: usize| {
            bias.as_ref()
                .map(|b| i >= b.start() && i < b.end())
                .unwrap_or(false)
        };
        let mine: BTreeMap<usize, f32> = tracked
            .iter()
            .filter(|(&i, _)| in_weight(i) || in_bias(i))
            .map(|(&i, &w)| (i, w))
            .collect();
        Ok(Self {
            seed,
            weight,
            bias,
            in_dim,
            out_dim,
            tracked: mine,
        })
    }

    /// Number of tracked (stored) weights this layer carries.
    pub fn stored(&self) -> usize {
        self.tracked.len()
    }

    /// Forward pass `y = x·Wᵀ (+ b)` with on-demand weights; returns the
    /// output and the access statistics.
    ///
    /// The tracked map and the bias (when present) are the only stored
    /// values consulted; everything else is regenerated per use.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InputShape`] if `x` is not `[n, in_dim]`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, StreamStats), StreamError> {
        if x.rank() != 2 || x.shape()[1] != self.in_dim {
            return Err(StreamError::InputShape {
                got: x.shape().to_vec(),
                in_dim: self.in_dim,
            });
        }
        let n = x.shape()[0];
        let scheme = self.weight.scheme();
        let mut stats = StreamStats::default();
        let mut out = vec![0.0f32; n * self.out_dim];
        for o in 0..self.out_dim {
            for i in 0..self.in_dim {
                let gidx = self.weight.start() + o * self.in_dim + i;
                let w = match self.tracked.get(&gidx) {
                    Some(&w) => {
                        stats.stored_reads += 1;
                        w
                    }
                    None => {
                        stats.regens += 1;
                        scheme.value(self.seed, gidx as u64)
                    }
                };
                if w == 0.0 {
                    continue;
                }
                for r in 0..n {
                    out[r * self.out_dim + o] += x.data()[r * self.in_dim + i] * w;
                }
            }
        }
        // Bias values are constants at init; tracked entries override.
        if let Some(b) = &self.bias {
            let bscheme = b.scheme();
            for o in 0..self.out_dim {
                let gidx = b.start() + o;
                let bv = match self.tracked.get(&gidx) {
                    Some(&v) => {
                        stats.stored_reads += 1;
                        v
                    }
                    None => {
                        stats.regens += 1;
                        bscheme.value(self.seed, gidx as u64)
                    }
                };
                for r in 0..n {
                    out[r * self.out_dim + o] += bv;
                }
            }
        }
        Ok((Tensor::from_vec(vec![n, self.out_dim], out), stats))
    }
}

/// Convenience: streams an entire MLP whose weight ranges follow the
/// `fcN.weight`/`fcN.bias` naming of the model zoo, applying ReLU between
/// layers. Returns class logits and total access statistics.
///
/// # Errors
///
/// Returns [`StreamError::NoWeights`] if the store has no `*.weight`
/// ranges, and propagates shape errors from the per-layer evaluators.
pub fn stream_mlp_forward(
    ps: &ParamStore,
    tracked: &BTreeMap<usize, f32>,
    x: &Tensor,
) -> Result<(Tensor, StreamStats), StreamError> {
    let weights: Vec<ParamRange> = ps
        .ranges()
        .iter()
        .filter(|r| r.name().ends_with(".weight"))
        .cloned()
        .collect();
    if weights.is_empty() {
        return Err(StreamError::NoWeights);
    }
    let mut cur = x.clone();
    let mut total = StreamStats::default();
    let count = weights.len();
    for (li, w) in weights.iter().enumerate() {
        let bias = ps
            .ranges()
            .iter()
            .find(|r| r.name() == w.name().replace(".weight", ".bias"))
            .cloned();
        let in_dim = cur.shape()[1];
        let out_dim = w.len() / in_dim;
        let layer = StreamingLinear::new(ps.seed(), w.clone(), bias, in_dim, out_dim, tracked)?;
        let (y, stats) = layer.forward(&cur)?;
        total.stored_reads += stats.stored_reads;
        total.regens += stats.regens;
        cur = if li + 1 < count {
            y.map(|v| v.max(0.0))
        } else {
            y
        };
    }
    Ok((cur, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_data::{synthetic_mnist, Batcher};
    use dropback_nn::{models, Mode};
    use dropback_optim::{Optimizer as _, SparseDropBack};

    #[test]
    fn streaming_matches_dense_forward_exactly() {
        let (train, test) = synthetic_mnist(400, 64, 13);
        let mut net = models::mnist_100_100(13);
        let mut opt = SparseDropBack::new(6_000);
        let batcher = Batcher::new(64, 3);
        for (x, labels) in batcher.epoch(&train, 0) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
        }
        let (x, _) = test.batch(0, 16);
        let dense = net.forward(&x, Mode::Eval);
        let (streamed, stats) =
            stream_mlp_forward(net.store(), opt.tracked(), &x).expect("zoo MLP streams");
        assert_eq!(dense.shape(), streamed.shape());
        for (a, b) in dense.data().iter().zip(streamed.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // All 89,610 weights touched exactly once, split between stored
        // and regenerated.
        assert_eq!(stats.stored_reads + stats.regens, 89_610);
        assert!(stats.stored_reads <= 6_000);
    }

    #[test]
    fn untrained_model_streams_with_zero_stored_reads() {
        let net = models::mnist_100_100(29);
        let empty = BTreeMap::new();
        let x = Tensor::filled(vec![2, 784], 0.1);
        let (y, stats) = stream_mlp_forward(net.store(), &empty, &x).expect("zoo MLP streams");
        assert_eq!(y.shape(), &[2, 10]);
        assert_eq!(stats.stored_reads, 0);
        assert_eq!(stats.regens, 89_610);
        // And it matches the dense forward of the fresh (init-valued) net.
        let mut dense_net = models::mnist_100_100(29);
        let dense = dense_net.forward(&x, Mode::Eval);
        for (a, b) in dense.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn dimension_mismatch_is_an_actionable_error() {
        let net = models::mnist_100_100(1);
        let w = net.param_ranges()[0].clone();
        let err = StreamingLinear::new(1, w, None, 10, 10, &BTreeMap::new())
            .expect_err("78400 values cannot be a 10x10 layer");
        let msg = err.to_string();
        assert!(msg.contains("10x10"), "mentions requested dims: {msg}");
        assert!(msg.contains("78400"), "mentions actual length: {msg}");
    }

    #[test]
    fn input_shape_mismatch_is_an_actionable_error() {
        let net = models::mnist_100_100(2);
        let w = net.param_ranges()[0].clone();
        let layer = StreamingLinear::new(2, w, None, 784, 100, &BTreeMap::new()).expect("fc1");
        let bad = Tensor::filled(vec![2, 3], 0.0);
        let err = layer.forward(&bad).expect_err("wrong input width");
        assert_eq!(
            err,
            StreamError::InputShape {
                got: vec![2, 3],
                in_dim: 784
            }
        );
        assert!(err.to_string().contains("[n, 784]"));
    }

    #[test]
    fn empty_store_reports_no_weights() {
        let ps = ParamStore::new(7);
        let x = Tensor::filled(vec![1, 4], 0.0);
        let err = stream_mlp_forward(&ps, &BTreeMap::new(), &x).expect_err("nothing to stream");
        assert_eq!(err, StreamError::NoWeights);
        assert!(err.to_string().contains("no `*.weight` ranges"));
    }
}
