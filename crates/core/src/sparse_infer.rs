//! Streaming-regeneration inference: compute a layer's forward pass
//! without ever materializing its dense weight matrix.
//!
//! This is the accelerator dataflow the paper describes — each weight is
//! either one of the `k` stored values or regenerated from `(seed, index)`
//! at the moment the MAC consumes it, then discarded. The rest of this
//! workspace rebuilds a dense view for the layer kernels (convenient on a
//! CPU); this module shows the dense view is unnecessary and counts the
//! traffic the energy model charges for.

use dropback_nn::{ParamRange, ParamStore};
use dropback_tensor::Tensor;
use std::collections::HashMap;

/// Access counts from a streaming forward pass (feeds the energy model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Weights read from the tracked store.
    pub stored_reads: u64,
    /// Weights regenerated on the fly.
    pub regens: u64,
}

/// A fully-connected layer evaluated by streaming weights from a sparse
/// tracked map plus regeneration — never holding the dense matrix.
#[derive(Debug, Clone)]
pub struct StreamingLinear {
    seed: u64,
    weight: ParamRange,
    bias: Option<ParamRange>,
    in_dim: usize,
    out_dim: usize,
    tracked: HashMap<usize, f32>,
}

impl StreamingLinear {
    /// Builds a streaming evaluator for the linear layer whose ranges are
    /// `weight` (length `in_dim * out_dim`, row-major `[out, in]`) and
    /// optional `bias`, with tracked entries taken from `tracked`
    /// (global-index keyed, e.g. [`dropback_optim::SparseDropBack::tracked`]).
    ///
    /// # Panics
    ///
    /// Panics if the weight range length disagrees with the dimensions.
    pub fn new(
        seed: u64,
        weight: ParamRange,
        bias: Option<ParamRange>,
        in_dim: usize,
        out_dim: usize,
        tracked: &HashMap<usize, f32>,
    ) -> Self {
        assert_eq!(
            weight.len(),
            in_dim * out_dim,
            "weight range does not match dimensions"
        );
        // Keep only this layer's entries (weight and bias ranges).
        let in_weight = |i: usize| i >= weight.start() && i < weight.end();
        let in_bias = |i: usize| {
            bias.as_ref()
                .map(|b| i >= b.start() && i < b.end())
                .unwrap_or(false)
        };
        let mine: HashMap<usize, f32> = tracked
            .iter()
            .filter(|(&i, _)| in_weight(i) || in_bias(i))
            .map(|(&i, &w)| (i, w))
            .collect();
        Self {
            seed,
            weight,
            bias,
            in_dim,
            out_dim,
            tracked: mine,
        }
    }

    /// Number of tracked (stored) weights this layer carries.
    pub fn stored(&self) -> usize {
        self.tracked.len()
    }

    /// Forward pass `y = x·Wᵀ (+ b)` with on-demand weights; returns the
    /// output and the access statistics.
    ///
    /// The tracked map and the bias (when present) are the only stored
    /// values consulted; everything else is regenerated per use.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, in_dim]`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, StreamStats) {
        assert_eq!(x.rank(), 2, "input must be [n, d]");
        assert_eq!(x.shape()[1], self.in_dim, "input dim mismatch");
        let n = x.shape()[0];
        let scheme = self.weight.scheme();
        let mut stats = StreamStats::default();
        let mut out = vec![0.0f32; n * self.out_dim];
        for o in 0..self.out_dim {
            for i in 0..self.in_dim {
                let gidx = self.weight.start() + o * self.in_dim + i;
                let w = match self.tracked.get(&gidx) {
                    Some(&w) => {
                        stats.stored_reads += 1;
                        w
                    }
                    None => {
                        stats.regens += 1;
                        scheme.value(self.seed, gidx as u64)
                    }
                };
                if w == 0.0 {
                    continue;
                }
                for r in 0..n {
                    out[r * self.out_dim + o] += x.data()[r * self.in_dim + i] * w;
                }
            }
        }
        // Bias values are constants at init; tracked entries override.
        if let Some(b) = &self.bias {
            let bscheme = b.scheme();
            for o in 0..self.out_dim {
                let gidx = b.start() + o;
                let bv = match self.tracked.get(&gidx) {
                    Some(&v) => {
                        stats.stored_reads += 1;
                        v
                    }
                    None => {
                        stats.regens += 1;
                        bscheme.value(self.seed, gidx as u64)
                    }
                };
                for r in 0..n {
                    out[r * self.out_dim + o] += bv;
                }
            }
        }
        (Tensor::from_vec(vec![n, self.out_dim], out), stats)
    }
}

/// Convenience: streams an entire MLP whose weight ranges follow the
/// `fcN.weight`/`fcN.bias` naming of the model zoo, applying ReLU between
/// layers. Returns class logits and total access statistics.
///
/// # Panics
///
/// Panics if the store has no `*.weight` ranges.
pub fn stream_mlp_forward(
    ps: &ParamStore,
    tracked: &HashMap<usize, f32>,
    x: &Tensor,
) -> (Tensor, StreamStats) {
    let weights: Vec<ParamRange> = ps
        .ranges()
        .iter()
        .filter(|r| r.name().ends_with(".weight"))
        .cloned()
        .collect();
    assert!(!weights.is_empty(), "no weight ranges in store");
    let mut cur = x.clone();
    let mut total = StreamStats::default();
    let count = weights.len();
    for (li, w) in weights.iter().enumerate() {
        let bias = ps
            .ranges()
            .iter()
            .find(|r| r.name() == w.name().replace(".weight", ".bias"))
            .cloned();
        let in_dim = cur.shape()[1];
        let out_dim = w.len() / in_dim;
        let layer = StreamingLinear::new(ps.seed(), w.clone(), bias, in_dim, out_dim, tracked);
        let (y, stats) = layer.forward(&cur);
        total.stored_reads += stats.stored_reads;
        total.regens += stats.regens;
        cur = if li + 1 < count {
            y.map(|v| v.max(0.0))
        } else {
            y
        };
    }
    (cur, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_data::{synthetic_mnist, Batcher};
    use dropback_nn::{models, Mode};
    use dropback_optim::{Optimizer as _, SparseDropBack};

    #[test]
    fn streaming_matches_dense_forward_exactly() {
        let (train, test) = synthetic_mnist(400, 64, 13);
        let mut net = models::mnist_100_100(13);
        let mut opt = SparseDropBack::new(6_000);
        let batcher = Batcher::new(64, 3);
        for (x, labels) in batcher.epoch(&train, 0) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
        }
        let (x, _) = test.batch(0, 16);
        let dense = net.forward(&x, Mode::Eval);
        let (streamed, stats) = stream_mlp_forward(net.store(), opt.tracked(), &x);
        assert_eq!(dense.shape(), streamed.shape());
        for (a, b) in dense.data().iter().zip(streamed.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // All 89,610 weights touched exactly once, split between stored
        // and regenerated.
        assert_eq!(stats.stored_reads + stats.regens, 89_610);
        assert!(stats.stored_reads <= 6_000);
    }

    #[test]
    fn untrained_model_streams_with_zero_stored_reads() {
        let net = models::mnist_100_100(29);
        let empty = HashMap::new();
        let x = Tensor::filled(vec![2, 784], 0.1);
        let (y, stats) = stream_mlp_forward(net.store(), &empty, &x);
        assert_eq!(y.shape(), &[2, 10]);
        assert_eq!(stats.stored_reads, 0);
        assert_eq!(stats.regens, 89_610);
        // And it matches the dense forward of the fresh (init-valued) net.
        let mut dense_net = models::mnist_100_100(29);
        let dense = dense_net.forward(&x, Mode::Eval);
        for (a, b) in dense.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "does not match dimensions")]
    fn dimension_mismatch_panics() {
        let net = models::mnist_100_100(1);
        let w = net.param_ranges()[0].clone();
        StreamingLinear::new(1, w, None, 10, 10, &HashMap::new());
    }
}
