//! Hotspot analysis of Chrome trace-event JSON produced by
//! `dropback_telemetry::trace`.
//!
//! The `dropback-trace` binary is a thin wrapper over this module: it
//! parses a trace file back through the hand-rolled
//! [`Json`](dropback_telemetry::Json) parser, pairs begin/end events into
//! a per-thread span tree, and derives
//!
//! * a **hotspot table** per span name (count, total time, self time),
//! * **per-kernel GFLOP/s** from the `flops` annotations the tensor
//!   kernels attach to their begin events,
//! * **step-time percentiles** from the trainer's `train-step` spans, and
//! * the **regen vs topk-rank vs gemm breakdown** of DropBack step time —
//!   the overhead question frozen-weight schemes compete on,
//!
//! plus the trace's counter series (weight diffusion, churn, allocation
//! high-water mark). Pairing is strict: an `E` without a matching `B` on
//! the same thread, or a `B` left open at end of trace, is an error — the
//! `check.sh` trace-smoke stage relies on that to catch export bugs.

use dropback_telemetry::Json;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Why a trace file could not be analyzed.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The file is not valid JSON or lacks a `traceEvents` array.
    Parse(String),
    /// A begin/end pairing violation (orphan `E`, name mismatch, or a `B`
    /// still open at end of trace).
    Unpaired(String),
    /// An event is missing a required field (`name`, `ph`, `ts`, `tid`).
    Malformed(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse(m) => write!(f, "trace parse error: {m}"),
            TraceError::Unpaired(m) => write!(f, "unpaired trace event: {m}"),
            TraceError::Malformed(m) => write!(f, "malformed trace event: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Aggregate timing for one span name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseRow {
    /// Span name.
    pub name: String,
    /// Completed span count.
    pub count: u64,
    /// Sum of span durations, microseconds.
    pub total_us: f64,
    /// Total minus time spent in child spans, microseconds.
    pub self_us: f64,
    /// Sum of `flops` annotations on begin events (0 when unannotated).
    pub flops: f64,
    /// Portion of `total_us` spent inside `train-step` spans.
    pub in_step_us: f64,
}

impl PhaseRow {
    /// Achieved GFLOP/s over this phase's total time, if annotated.
    pub fn gflops(&self) -> Option<f64> {
        if self.flops > 0.0 && self.total_us > 0.0 {
            Some(self.flops / (self.total_us * 1e-6) / 1e9)
        } else {
            None
        }
    }
}

/// One counter's samples: `(ts_us, value)` in trace order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterSeries {
    /// Counter name.
    pub name: String,
    /// Samples in timestamp order.
    pub samples: Vec<(f64, f64)>,
}

/// Aggregate of one async lane name (`ph: "b"/"e"` pairs keyed by id) —
/// e.g. the serving stages `serve.queue`, `serve.infer`, `serve.write`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AsyncStage {
    /// Lane name.
    pub name: String,
    /// Completed begin/end pairs.
    pub count: u64,
    /// Sum of lane durations, microseconds.
    pub total_us: f64,
    /// Individual lane durations (microseconds), sorted ascending.
    pub durations_us: Vec<f64>,
}

impl AsyncStage {
    /// Nearest-rank percentile (`p` in 0..=100) of lane duration, in
    /// microseconds.
    pub fn percentile_us(&self, p: f64) -> Option<f64> {
        let n = self.durations_us.len();
        if n == 0 {
            return None;
        }
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.durations_us[rank.clamp(1, n) - 1])
    }
}

/// One async instant event (`ph: "n"`), e.g. a per-batch flow annotation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InstantRow {
    /// Event name.
    pub name: String,
    /// Timestamp, microseconds.
    pub ts_us: f64,
    /// The async id the instant was keyed by (e.g. a batch id).
    pub id: u64,
    /// Numeric annotations.
    pub args: Vec<(String, f64)>,
}

impl InstantRow {
    /// The value of annotation `key`, if present.
    pub fn arg(&self, key: &str) -> Option<f64> {
        self.args.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// The batch-fill-over-time digest derived from `serve.batch` instants.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchFillDigest {
    /// Number of flushed batches in the trace.
    pub batches: u64,
    /// Mean batch fill.
    pub fill_mean: f64,
    /// Smallest batch fill.
    pub fill_min: f64,
    /// Largest batch fill.
    pub fill_max: f64,
    /// Total weight regenerations across all batches (from the DropBack
    /// streaming evaluator's regen/stored split).
    pub regens: f64,
    /// Total stored-weight reads across all batches.
    pub stored_reads: f64,
    /// Timestamp of the first batch, microseconds.
    pub first_ts_us: f64,
    /// Timestamp of the last batch, microseconds.
    pub last_ts_us: f64,
}

/// The digest of one trace file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceAnalysis {
    /// Per-span-name aggregates, sorted by self time descending.
    pub phases: Vec<PhaseRow>,
    /// `train-step` span durations (microseconds), sorted ascending.
    pub step_durations_us: Vec<f64>,
    /// Counter series, sorted by name.
    pub counters: Vec<CounterSeries>,
    /// Async lane aggregates (`b`/`e` pairs keyed by id), sorted by name.
    pub async_stages: Vec<AsyncStage>,
    /// Async instant events (`ph: "n"`), in timestamp order.
    pub instants: Vec<InstantRow>,
    /// Total events consumed (B + E + C + b + n + e).
    pub events: usize,
}

/// The span name the trainer wraps each optimizer step in.
const STEP_SPAN: &str = "train-step";

/// One open frame on a thread's span stack.
struct Frame {
    name: String,
    ts_us: f64,
    child_us: f64,
    flops: f64,
    in_step: bool,
}

/// Parses and analyzes a Chrome trace-event JSON document.
///
/// # Errors
///
/// Returns [`TraceError`] on invalid JSON, missing/mistyped event fields,
/// or begin/end pairing violations.
pub fn analyze_chrome_trace(text: &str) -> Result<TraceAnalysis, TraceError> {
    let doc = Json::parse(text).map_err(|e| TraceError::Parse(e.to_string()))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| TraceError::Parse("missing traceEvents array".to_string()))?;

    let mut stacks: BTreeMap<u64, Vec<Frame>> = BTreeMap::new();
    let mut phases: BTreeMap<String, PhaseRow> = BTreeMap::new();
    let mut counters: BTreeMap<String, CounterSeries> = BTreeMap::new();
    let mut steps: Vec<f64> = Vec::new();
    // Async lanes pair process-wide by (name, id) — a lane may begin on a
    // connection thread and end on the batch worker.
    let mut open_async: HashMap<(String, u64), f64> = HashMap::new();
    let mut async_stages: BTreeMap<String, AsyncStage> = BTreeMap::new();
    let mut instants: Vec<InstantRow> = Vec::new();
    let mut consumed = 0usize;

    for (i, e) in events.iter().enumerate() {
        let field = |key: &str| {
            e.get(key)
                .ok_or_else(|| TraceError::Malformed(format!("event {i} missing `{key}`")))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| TraceError::Malformed(format!("event {i}: `ph` is not a string")))?;
        // Metadata and unknown phases (e.g. "M" process names) pass through.
        if !matches!(ph, "B" | "E" | "C" | "b" | "n" | "e") {
            continue;
        }
        let name = field("name")?
            .as_str()
            .ok_or_else(|| TraceError::Malformed(format!("event {i}: `name` is not a string")))?;
        let ts_us = field("ts")?
            .as_f64()
            .ok_or_else(|| TraceError::Malformed(format!("event {i}: `ts` is not a number")))?;
        if matches!(ph, "b" | "n" | "e") {
            let id = field("id")?.as_u64().ok_or_else(|| {
                TraceError::Malformed(format!("async event {i}: `id` is not an integer"))
            })?;
            consumed += 1;
            match ph {
                "b" => {
                    if open_async.insert((name.to_string(), id), ts_us).is_some() {
                        return Err(TraceError::Unpaired(format!(
                            "async `b` for `{name}` id {id} while that lane is already open"
                        )));
                    }
                }
                "e" => {
                    let begin_ts = open_async.remove(&(name.to_string(), id)).ok_or_else(|| {
                        TraceError::Unpaired(format!(
                            "async `e` for `{name}` id {id} without a matching `b`"
                        ))
                    })?;
                    let stage =
                        async_stages
                            .entry(name.to_string())
                            .or_insert_with(|| AsyncStage {
                                name: name.to_string(),
                                ..AsyncStage::default()
                            });
                    let duration = (ts_us - begin_ts).max(0.0);
                    stage.count += 1;
                    stage.total_us += duration;
                    stage.durations_us.push(duration);
                }
                _ => {
                    let args = match e.get("args") {
                        Some(Json::Obj(pairs)) => pairs
                            .iter()
                            .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v)))
                            .collect(),
                        _ => Vec::new(),
                    };
                    instants.push(InstantRow {
                        name: name.to_string(),
                        ts_us,
                        id,
                        args,
                    });
                }
            }
            continue;
        }
        let tid = field("tid")?
            .as_u64()
            .ok_or_else(|| TraceError::Malformed(format!("event {i}: `tid` is not an integer")))?;
        consumed += 1;
        match ph {
            "B" => {
                let flops = e
                    .get("args")
                    .and_then(|a| a.get("flops"))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                let stack = stacks.entry(tid).or_default();
                let in_step = name == STEP_SPAN
                    || stack
                        .last()
                        .map(|f| f.in_step || f.name == STEP_SPAN)
                        .unwrap_or(false);
                stack.push(Frame {
                    name: name.to_string(),
                    ts_us,
                    child_us: 0.0,
                    flops,
                    in_step,
                });
            }
            "E" => {
                let stack = stacks.entry(tid).or_default();
                let frame = stack.pop().ok_or_else(|| {
                    TraceError::Unpaired(format!("`E` for `{name}` on tid {tid} with empty stack"))
                })?;
                if frame.name != name {
                    return Err(TraceError::Unpaired(format!(
                        "`E` for `{name}` on tid {tid} closes open span `{}`",
                        frame.name
                    )));
                }
                let duration = (ts_us - frame.ts_us).max(0.0);
                if let Some(parent) = stack.last_mut() {
                    parent.child_us += duration;
                }
                let row = phases
                    .entry(frame.name.clone())
                    .or_insert_with(|| PhaseRow {
                        name: frame.name.clone(),
                        ..PhaseRow::default()
                    });
                row.count += 1;
                row.total_us += duration;
                row.self_us += (duration - frame.child_us).max(0.0);
                row.flops += frame.flops;
                if frame.in_step {
                    row.in_step_us += duration;
                }
                if frame.name == STEP_SPAN {
                    steps.push(duration);
                }
            }
            _ => {
                let value = e
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_f64)
                    .ok_or_else(|| {
                        TraceError::Malformed(format!("counter event {i} missing args.value"))
                    })?;
                counters
                    .entry(name.to_string())
                    .or_insert_with(|| CounterSeries {
                        name: name.to_string(),
                        samples: Vec::new(),
                    })
                    .samples
                    .push((ts_us, value));
            }
        }
    }

    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(TraceError::Unpaired(format!(
                "span `{}` on tid {tid} has no `E` (and {} more open)",
                open.name,
                stack.len() - 1
            )));
        }
    }
    if let Some(((name, id), _)) = open_async.iter().next() {
        return Err(TraceError::Unpaired(format!(
            "async lane `{name}` id {id} has no `e` (and {} more open)",
            open_async.len() - 1
        )));
    }

    let mut phases: Vec<PhaseRow> = phases.into_values().collect();
    phases.sort_by(|a, b| {
        b.self_us
            .partial_cmp(&a.self_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    steps.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut async_stages: Vec<AsyncStage> = async_stages.into_values().collect();
    for s in &mut async_stages {
        s.durations_us
            .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    }
    instants.sort_by(|a, b| {
        a.ts_us
            .partial_cmp(&b.ts_us)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(TraceAnalysis {
        phases,
        step_durations_us: steps,
        counters: counters.into_values().collect(),
        async_stages,
        instants,
        events: consumed,
    })
}

impl TraceAnalysis {
    /// The row for `name`, if that span ever completed.
    pub fn phase(&self, name: &str) -> Option<&PhaseRow> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// The async lane aggregate for `name`, if any lane completed.
    pub fn async_stage(&self, name: &str) -> Option<&AsyncStage> {
        self.async_stages.iter().find(|s| s.name == name)
    }

    /// The batch-fill-over-time digest, derived from `serve.batch`
    /// instant annotations; `None` when the trace has no batches.
    pub fn batch_fill_digest(&self) -> Option<BatchFillDigest> {
        let rows: Vec<&InstantRow> = self
            .instants
            .iter()
            .filter(|r| r.name == "serve.batch")
            .collect();
        if rows.is_empty() {
            return None;
        }
        let fills: Vec<f64> = rows.iter().map(|r| r.arg("fill").unwrap_or(0.0)).collect();
        let sum =
            |key: &str| -> f64 { rows.iter().map(|r| r.arg(key).unwrap_or(0.0)).sum::<f64>() };
        Some(BatchFillDigest {
            batches: rows.len() as u64,
            fill_mean: fills.iter().sum::<f64>() / fills.len() as f64,
            fill_min: fills.iter().copied().fold(f64::INFINITY, f64::min),
            fill_max: fills.iter().copied().fold(0.0, f64::max),
            regens: sum("regens"),
            stored_reads: sum("stored_reads"),
            first_ts_us: rows.first().map(|r| r.ts_us).unwrap_or(0.0),
            last_ts_us: rows.last().map(|r| r.ts_us).unwrap_or(0.0),
        })
    }

    /// Nearest-rank percentile (`p` in 0..=100) of `train-step` duration,
    /// in microseconds. `None` when the trace holds no steps.
    pub fn step_percentile_us(&self, p: f64) -> Option<f64> {
        let n = self.step_durations_us.len();
        if n == 0 {
            return None;
        }
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.step_durations_us[rank.clamp(1, n) - 1])
    }

    /// Fraction of total `train-step` time spent in each of the DropBack
    /// cost centers — `gemm`, `topk-rank`, `regen`, and everything else —
    /// or `None` when the trace has no steps. The three named phases are
    /// mutually exclusive on the span tree, so the fractions plus `other`
    /// sum to 1.
    pub fn dropback_breakdown(&self) -> Option<Vec<(&'static str, f64)>> {
        let step_total: f64 = self.step_durations_us.iter().sum();
        if step_total <= 0.0 {
            return None;
        }
        let frac = |name: &str| {
            self.phase(name)
                .map(|p| (p.in_step_us / step_total).min(1.0))
                .unwrap_or(0.0)
        };
        let gemm = frac("gemm");
        let rank = frac("topk-rank");
        let regen = frac("regen");
        let other = (1.0 - gemm - rank - regen).max(0.0);
        Some(vec![
            ("gemm", gemm),
            ("topk-rank", rank),
            ("regen", regen),
            ("other", other),
        ])
    }

    /// Renders the human-readable report: hotspot table (top `top` rows),
    /// step percentiles, DropBack breakdown, and counter summaries.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        let self_sum: f64 = self.phases.iter().map(|p| p.self_us).sum();
        out.push_str(&format!(
            "trace: {} events, {} span names, {} steps\n\n",
            self.events,
            self.phases.len(),
            self.step_durations_us.len()
        ));
        out.push_str(&format!(
            "{:<16} {:>8} {:>12} {:>12} {:>7} {:>9}\n",
            "span", "count", "total ms", "self ms", "self%", "GFLOP/s"
        ));
        for p in self.phases.iter().take(top.max(1)) {
            let pct = if self_sum > 0.0 {
                100.0 * p.self_us / self_sum
            } else {
                0.0
            };
            let gflops = p
                .gflops()
                .map(|g| format!("{g:>9.2}"))
                .unwrap_or_else(|| format!("{:>9}", "-"));
            out.push_str(&format!(
                "{:<16} {:>8} {:>12.3} {:>12.3} {:>6.1}% {gflops}\n",
                p.name,
                p.count,
                p.total_us / 1e3,
                p.self_us / 1e3,
                pct
            ));
        }
        if !self.step_durations_us.is_empty() {
            out.push_str(&format!(
                "\nstep time (n={}): p50 {:.3} ms, p90 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms\n",
                self.step_durations_us.len(),
                self.step_percentile_us(50.0).unwrap_or(0.0) / 1e3,
                self.step_percentile_us(90.0).unwrap_or(0.0) / 1e3,
                self.step_percentile_us(95.0).unwrap_or(0.0) / 1e3,
                self.step_percentile_us(99.0).unwrap_or(0.0) / 1e3,
            ));
        }
        if let Some(breakdown) = self.dropback_breakdown() {
            out.push_str("dropback step breakdown:");
            for (name, f) in &breakdown {
                out.push_str(&format!(" {name} {:.1}%", f * 100.0));
            }
            out.push('\n');
        }
        if !self.async_stages.is_empty() {
            out.push_str("\nasync stages (request lanes):\n");
            out.push_str(&format!(
                "  {:<16} {:>8} {:>12} {:>12} {:>12}\n",
                "lane", "count", "p50 ms", "p90 ms", "p99 ms"
            ));
            for s in &self.async_stages {
                out.push_str(&format!(
                    "  {:<16} {:>8} {:>12.3} {:>12.3} {:>12.3}\n",
                    s.name,
                    s.count,
                    s.percentile_us(50.0).unwrap_or(0.0) / 1e3,
                    s.percentile_us(90.0).unwrap_or(0.0) / 1e3,
                    s.percentile_us(99.0).unwrap_or(0.0) / 1e3,
                ));
            }
        }
        if let Some(b) = self.batch_fill_digest() {
            out.push_str(&format!(
                "batch fill: n={} mean={:.2} min={:.0} max={:.0} regens={:.0} stored={:.0}\n",
                b.batches, b.fill_mean, b.fill_min, b.fill_max, b.regens, b.stored_reads
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for c in &self.counters {
                let first = c.samples.first().map(|&(_, v)| v).unwrap_or(0.0);
                let last = c.samples.last().map(|&(_, v)| v).unwrap_or(0.0);
                out.push_str(&format!(
                    "  {:<24} n={:<5} first={first:.6} last={last:.6}\n",
                    c.name,
                    c.samples.len()
                ));
            }
        }
        out
    }

    /// Machine-readable form of the analysis (the `--json` mode output and
    /// the schema of `BENCH_trace.json`).
    pub fn to_json(&self) -> Json {
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|p| {
                let mut fields = vec![
                    ("name".to_string(), Json::from(p.name.as_str())),
                    ("count".to_string(), Json::from(p.count)),
                    ("total_ms".to_string(), Json::Num(p.total_us / 1e3)),
                    ("self_ms".to_string(), Json::Num(p.self_us / 1e3)),
                ];
                if let Some(g) = p.gflops() {
                    fields.push(("gflops".to_string(), Json::Num(g)));
                }
                Json::Obj(fields)
            })
            .collect();
        let steps = Json::Obj(vec![
            (
                "count".to_string(),
                Json::from(self.step_durations_us.len()),
            ),
            ("p50_ms".to_string(), pct_ms(self, 50.0)),
            ("p90_ms".to_string(), pct_ms(self, 90.0)),
            ("p95_ms".to_string(), pct_ms(self, 95.0)),
            ("p99_ms".to_string(), pct_ms(self, 99.0)),
        ]);
        let breakdown = self
            .dropback_breakdown()
            .map(|b| {
                Json::Obj(
                    b.into_iter()
                        .map(|(name, f)| (name.replace('-', "_"), Json::Num(f)))
                        .collect(),
                )
            })
            .unwrap_or(Json::Null);
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|c| {
                    let first = c.samples.first().map(|&(_, v)| v).unwrap_or(0.0);
                    let last = c.samples.last().map(|&(_, v)| v).unwrap_or(0.0);
                    (
                        c.name.clone(),
                        Json::Obj(vec![
                            ("n".to_string(), Json::from(c.samples.len())),
                            ("first".to_string(), Json::Num(first)),
                            ("last".to_string(), Json::Num(last)),
                        ]),
                    )
                })
                .collect(),
        );
        let async_stages = Json::Obj(
            self.async_stages
                .iter()
                .map(|s| {
                    (
                        s.name.clone(),
                        Json::Obj(vec![
                            ("count".to_string(), Json::from(s.count)),
                            ("total_ms".to_string(), Json::Num(s.total_us / 1e3)),
                            ("p50_ms".to_string(), opt_ms(s.percentile_us(50.0))),
                            ("p90_ms".to_string(), opt_ms(s.percentile_us(90.0))),
                            ("p99_ms".to_string(), opt_ms(s.percentile_us(99.0))),
                        ]),
                    )
                })
                .collect(),
        );
        let batches = self
            .batch_fill_digest()
            .map(|b| {
                Json::Obj(vec![
                    ("count".to_string(), Json::from(b.batches)),
                    ("fill_mean".to_string(), Json::Num(b.fill_mean)),
                    ("fill_min".to_string(), Json::Num(b.fill_min)),
                    ("fill_max".to_string(), Json::Num(b.fill_max)),
                    ("regens".to_string(), Json::Num(b.regens)),
                    ("stored_reads".to_string(), Json::Num(b.stored_reads)),
                    (
                        "span_ms".to_string(),
                        Json::Num((b.last_ts_us - b.first_ts_us) / 1e3),
                    ),
                ])
            })
            .unwrap_or(Json::Null);
        Json::Obj(vec![
            ("events".to_string(), Json::from(self.events)),
            ("steps".to_string(), steps),
            ("phases".to_string(), Json::Arr(phases)),
            ("dropback_breakdown".to_string(), breakdown),
            ("counters".to_string(), counters),
            ("async".to_string(), async_stages),
            ("batches".to_string(), batches),
        ])
    }
}

fn opt_ms(us: Option<f64>) -> Json {
    us.map(|v| Json::Num(v / 1e3)).unwrap_or(Json::Null)
}

fn pct_ms(a: &TraceAnalysis, p: f64) -> Json {
    a.step_percentile_us(p)
        .map(|us| Json::Num(us / 1e3))
        .unwrap_or(Json::Null)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, ph: &str, ts: f64, tid: u64, args: &str) -> String {
        let args = if args.is_empty() {
            String::new()
        } else {
            format!(",\"args\":{{{args}}}")
        };
        format!("{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}{args}}}")
    }

    fn doc(events: &[String]) -> String {
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    #[test]
    fn nested_spans_split_self_and_total_time() {
        // step [0, 1000] containing gemm [100, 700] containing im2col [200, 300].
        let text = doc(&[
            ev("train-step", "B", 0.0, 0, ""),
            ev("gemm", "B", 100.0, 0, "\"flops\":1200000"),
            ev("im2col", "B", 200.0, 0, ""),
            ev("im2col", "E", 300.0, 0, ""),
            ev("gemm", "E", 700.0, 0, ""),
            ev("train-step", "E", 1000.0, 0, ""),
        ]);
        let a = analyze_chrome_trace(&text).expect("valid trace");
        assert_eq!(a.events, 6);
        let step = a.phase("train-step").expect("step row");
        assert!((step.total_us - 1000.0).abs() < 1e-9);
        assert!((step.self_us - 400.0).abs() < 1e-9, "1000 - 600 gemm");
        let gemm = a.phase("gemm").expect("gemm row");
        assert!((gemm.total_us - 600.0).abs() < 1e-9);
        assert!((gemm.self_us - 500.0).abs() < 1e-9, "600 - 100 im2col");
        assert!(gemm.in_step_us > 0.0);
        // 1.2 MFLOP over 600 us = 2 GFLOP/s.
        assert!((gemm.gflops().expect("annotated") - 2.0).abs() < 1e-9);
        // Hotspots sorted by self time: gemm (500) first.
        assert_eq!(a.phases[0].name, "gemm");
    }

    #[test]
    fn step_percentiles_are_exact_nearest_rank() {
        let mut events = Vec::new();
        // 10 steps with durations 100, 200, ..., 1000 us.
        for i in 0..10u32 {
            let start = f64::from(i) * 10_000.0;
            events.push(ev("train-step", "B", start, 0, ""));
            events.push(ev(
                "train-step",
                "E",
                start + 100.0 * f64::from(i + 1),
                0,
                "",
            ));
        }
        let a = analyze_chrome_trace(&doc(&events)).expect("valid trace");
        assert_eq!(a.step_durations_us.len(), 10);
        assert!((a.step_percentile_us(50.0).expect("p50") - 500.0).abs() < 1e-9);
        assert!((a.step_percentile_us(90.0).expect("p90") - 900.0).abs() < 1e-9);
        assert!((a.step_percentile_us(100.0).expect("p100") - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn dropback_breakdown_fractions_sum_to_one() {
        let text = doc(&[
            ev("train-step", "B", 0.0, 0, ""),
            ev("gemm", "B", 0.0, 0, ""),
            ev("gemm", "E", 400.0, 0, ""),
            ev("topk-rank", "B", 400.0, 0, ""),
            ev("topk-rank", "E", 500.0, 0, ""),
            ev("regen", "B", 500.0, 0, ""),
            ev("regen", "E", 550.0, 0, ""),
            ev("train-step", "E", 1000.0, 0, ""),
            // A gemm outside any step (eval) must not count toward the
            // breakdown numerators.
            ev("gemm", "B", 2000.0, 0, ""),
            ev("gemm", "E", 2900.0, 0, ""),
        ]);
        let a = analyze_chrome_trace(&text).expect("valid trace");
        let b = a.dropback_breakdown().expect("has steps");
        let get = |n: &str| {
            b.iter()
                .find(|(k, _)| *k == n)
                .map(|&(_, v)| v)
                .unwrap_or(-1.0)
        };
        assert!((get("gemm") - 0.4).abs() < 1e-9, "in-step gemm only");
        assert!((get("topk-rank") - 0.1).abs() < 1e-9);
        assert!((get("regen") - 0.05).abs() < 1e-9);
        let total: f64 = b.iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counters_collected_in_order() {
        let text = doc(&[
            ev("diffusion.l2_from_init", "C", 10.0, 0, "\"value\":1.5"),
            ev("diffusion.l2_from_init", "C", 20.0, 0, "\"value\":2.5"),
        ]);
        let a = analyze_chrome_trace(&text).expect("valid trace");
        assert_eq!(a.counters.len(), 1);
        assert_eq!(a.counters[0].samples, vec![(10.0, 1.5), (20.0, 2.5)]);
    }

    #[test]
    fn orphan_end_is_rejected() {
        let text = doc(&[ev("gemm", "E", 10.0, 0, "")]);
        match analyze_chrome_trace(&text) {
            Err(TraceError::Unpaired(m)) => assert!(m.contains("empty stack"), "{m}"),
            other => panic!("expected Unpaired, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_end_name_is_rejected() {
        let text = doc(&[ev("a", "B", 0.0, 0, ""), ev("b", "E", 10.0, 0, "")]);
        assert!(matches!(
            analyze_chrome_trace(&text),
            Err(TraceError::Unpaired(_))
        ));
    }

    #[test]
    fn open_span_at_eof_is_rejected() {
        let text = doc(&[ev("gemm", "B", 0.0, 0, "")]);
        assert!(matches!(
            analyze_chrome_trace(&text),
            Err(TraceError::Unpaired(_))
        ));
    }

    #[test]
    fn same_name_on_different_threads_pairs_independently() {
        let text = doc(&[
            ev("gemm", "B", 0.0, 1, ""),
            ev("gemm", "B", 5.0, 2, ""),
            ev("gemm", "E", 30.0, 2, ""),
            ev("gemm", "E", 100.0, 1, ""),
        ]);
        let a = analyze_chrome_trace(&text).expect("valid trace");
        let gemm = a.phase("gemm").expect("gemm row");
        assert_eq!(gemm.count, 2);
        assert!((gemm.total_us - 125.0).abs() < 1e-9);
        // Parallel same-name spans on different tids don't nest.
        assert!((gemm.self_us - 125.0).abs() < 1e-9);
    }

    fn aev(name: &str, ph: &str, ts: f64, id: u64, args: &str) -> String {
        let args = if args.is_empty() {
            String::new()
        } else {
            format!(",\"args\":{{{args}}}")
        };
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":1,\"tid\":0,\"id\":{id}{args}}}"
        )
    }

    #[test]
    fn async_lanes_pair_by_id_and_interleave_freely() {
        // Two request lanes interleaved: 1 opens, 2 opens, 2 closes, 1
        // closes — legal for async (unlike B/E stack discipline), and the
        // stage rows must aggregate both.
        let text = doc(&[
            aev("serve.queue", "b", 0.0, 1, ""),
            aev("serve.queue", "b", 10.0, 2, ""),
            aev("serve.queue", "e", 30.0, 2, ""),
            aev("serve.queue", "e", 100.0, 1, ""),
            aev("serve.infer", "b", 100.0, 1, ""),
            aev("serve.infer", "e", 150.0, 1, ""),
        ]);
        let a = analyze_chrome_trace(&text).expect("valid trace");
        assert_eq!(a.events, 6);
        let queue = a.async_stage("serve.queue").expect("queue stage");
        assert_eq!(queue.count, 2);
        assert_eq!(queue.durations_us, vec![20.0, 100.0]);
        assert!((queue.percentile_us(50.0).unwrap() - 20.0).abs() < 1e-9);
        assert!((queue.percentile_us(99.0).unwrap() - 100.0).abs() < 1e-9);
        let infer = a.async_stage("serve.infer").expect("infer stage");
        assert_eq!(infer.count, 1);
        // JSON carries the per-stage percentiles.
        let j = a.to_json();
        let q = j.get("async").and_then(|x| x.get("serve.queue")).unwrap();
        assert_eq!(q.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(q.get("p99_ms").and_then(Json::as_f64), Some(0.1));
    }

    #[test]
    fn orphan_async_end_is_rejected() {
        let text = doc(&[aev("serve.req", "e", 10.0, 5, "")]);
        match analyze_chrome_trace(&text) {
            Err(TraceError::Unpaired(m)) => assert!(m.contains("without a matching"), "{m}"),
            other => panic!("expected Unpaired, got {other:?}"),
        }
    }

    #[test]
    fn open_async_lane_at_eof_is_rejected() {
        let text = doc(&[aev("serve.req", "b", 0.0, 5, "")]);
        match analyze_chrome_trace(&text) {
            Err(TraceError::Unpaired(m)) => assert!(m.contains("has no `e`"), "{m}"),
            other => panic!("expected Unpaired, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_open_async_lane_is_rejected() {
        let text = doc(&[
            aev("serve.req", "b", 0.0, 5, ""),
            aev("serve.req", "b", 1.0, 5, ""),
        ]);
        match analyze_chrome_trace(&text) {
            Err(TraceError::Unpaired(m)) => assert!(m.contains("already open"), "{m}"),
            other => panic!("expected Unpaired, got {other:?}"),
        }
    }

    #[test]
    fn same_id_different_names_are_distinct_lanes() {
        let text = doc(&[
            aev("serve.req", "b", 0.0, 1, ""),
            aev("serve.queue", "b", 1.0, 1, ""),
            aev("serve.queue", "e", 2.0, 1, ""),
            aev("serve.req", "e", 3.0, 1, ""),
        ]);
        let a = analyze_chrome_trace(&text).expect("valid trace");
        assert_eq!(a.async_stages.len(), 2);
    }

    #[test]
    fn async_event_without_id_is_malformed() {
        let text = doc(&[ev("serve.req", "b", 0.0, 0, "")]);
        assert!(matches!(
            analyze_chrome_trace(&text),
            Err(TraceError::Malformed(_))
        ));
    }

    #[test]
    fn batch_instants_build_the_fill_digest() {
        let text = doc(&[
            aev(
                "serve.batch",
                "n",
                100.0,
                1,
                "\"fill\":4,\"epoch\":2,\"regens\":900,\"stored_reads\":100",
            ),
            aev(
                "serve.batch",
                "n",
                300.0,
                2,
                "\"fill\":8,\"epoch\":2,\"regens\":880,\"stored_reads\":120",
            ),
        ]);
        let a = analyze_chrome_trace(&text).expect("valid trace");
        assert_eq!(a.instants.len(), 2);
        let d = a.batch_fill_digest().expect("digest");
        assert_eq!(d.batches, 2);
        assert!((d.fill_mean - 6.0).abs() < 1e-9);
        assert_eq!(d.fill_min, 4.0);
        assert_eq!(d.fill_max, 8.0);
        assert_eq!(d.regens, 1780.0);
        assert_eq!(d.stored_reads, 220.0);
        let j = a.to_json();
        let b = j.get("batches").unwrap();
        assert_eq!(b.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(b.get("span_ms").and_then(Json::as_f64), Some(0.2));
        // The render names the new sections too.
        let a2 = analyze_chrome_trace(&doc(&[
            aev("serve.queue", "b", 0.0, 1, ""),
            aev("serve.queue", "e", 50.0, 1, ""),
            aev("serve.batch", "n", 20.0, 1, "\"fill\":1"),
        ]))
        .expect("valid");
        let report = a2.render(5);
        assert!(report.contains("async stages"), "{report}");
        assert!(report.contains("serve.queue"), "{report}");
        assert!(report.contains("batch fill"), "{report}");
    }

    #[test]
    fn garbage_input_is_a_parse_error() {
        assert!(matches!(
            analyze_chrome_trace("not json"),
            Err(TraceError::Parse(_))
        ));
        assert!(matches!(
            analyze_chrome_trace("{\"foo\":1}"),
            Err(TraceError::Parse(_))
        ));
    }

    #[test]
    fn render_and_json_cover_all_sections() {
        let text = doc(&[
            ev("train-step", "B", 0.0, 0, ""),
            ev("gemm", "B", 0.0, 0, "\"flops\":1000000"),
            ev("gemm", "E", 500.0, 0, ""),
            ev("train-step", "E", 1000.0, 0, ""),
            ev("tracked.churn", "C", 1000.0, 0, "\"value\":42"),
        ]);
        let a = analyze_chrome_trace(&text).expect("valid trace");
        let report = a.render(10);
        for needle in ["span", "gemm", "train-step", "step time", "tracked.churn"] {
            assert!(report.contains(needle), "missing {needle} in:\n{report}");
        }
        let j = a.to_json();
        assert_eq!(
            j.get("steps")
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert!(j.get("phases").and_then(Json::as_array).is_some());
        assert!(j
            .get("counters")
            .and_then(|c| c.get("tracked.churn"))
            .is_some());
        // The JSON mode output itself round-trips through the parser.
        let reparsed = Json::parse(&j.render()).expect("to_json output parses");
        assert_eq!(
            reparsed
                .get("dropback_breakdown")
                .and_then(|b| b.get("gemm"))
                .and_then(Json::as_f64)
                .map(|v| (v - 0.5).abs() < 1e-9),
            Some(true)
        );
    }
}
