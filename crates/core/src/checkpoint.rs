//! Compact model checkpoints: `(seed, k tracked entries)`.
//!
//! A DropBack-trained network is fully described by its initialization
//! seed plus the `k` tracked index/value pairs — everything else
//! regenerates. This module serializes exactly that, making the paper's
//! compression columns concrete in bytes on disk.
//!
//! This is the **v1** (`DROPBKv1`) final-model format: weights only, no
//! optimizer or loop state. Resumable mid-training snapshots use the v2
//! format in [`crate::TrainState`]. Both formats share the
//! [`CheckpointError`] type; see `docs/CHECKPOINTS.md` for the byte
//! layouts and recovery semantics.

use dropback_nn::Network;
use dropback_optim::{SparseDropBack, StateError};
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"DROPBKv1";

/// Upper bound on speculative `Vec` pre-allocation while deserializing.
/// A corrupt or hostile length field can claim up to `u64::MAX` entries;
/// we never reserve more than this up front — reads past it grow the
/// vector only as bytes actually arrive, so a truncated stream errors out
/// instead of triggering a giant allocation.
const MAX_PREALLOC_ENTRIES: usize = 1 << 16;

/// Why a checkpoint could not be read, validated, or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying I/O failure (open, read, write, fsync, rename).
    Io(io::Error),
    /// The bytes are not a valid checkpoint: bad magic, truncated stream,
    /// checksum mismatch, or an out-of-bounds length field.
    InvalidData(String),
    /// The checkpoint's regeneration seed disagrees with the network it is
    /// being applied to — untracked weights would regenerate differently.
    SeedMismatch {
        /// Seed of the target network.
        expected: u64,
        /// Seed recorded in the checkpoint.
        found: u64,
    },
    /// A mask or state vector has the wrong length for the target network.
    LengthMismatch {
        /// Length the network requires.
        expected: usize,
        /// Length that was provided.
        found: usize,
    },
    /// A stored weight index does not exist in the target network.
    IndexOutOfRange {
        /// The offending index.
        index: u64,
        /// The network's parameter count.
        len: usize,
    },
    /// The snapshot is well-formed but belongs to a different run: wrong
    /// model, optimizer, shuffle seed, or optimizer configuration.
    Incompatible(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::InvalidData(what) => write!(f, "invalid checkpoint data: {what}"),
            CheckpointError::SeedMismatch { expected, found } => write!(
                f,
                "checkpoint seed {found} does not match network seed {expected}; \
                 rebuild the network with the checkpoint's seed"
            ),
            CheckpointError::LengthMismatch { expected, found } => write!(
                f,
                "length mismatch: got {found}, network has {expected} parameters"
            ),
            CheckpointError::IndexOutOfRange { index, len } => write!(
                f,
                "checkpoint index {index} out of range for a {len}-parameter network"
            ),
            CheckpointError::Incompatible(what) => write!(f, "incompatible checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<StateError> for CheckpointError {
    fn from(e: StateError) -> Self {
        CheckpointError::Incompatible(e.to_string())
    }
}

impl CheckpointError {
    /// Whether this error means *the bytes on disk are bad* (truncation,
    /// bit-rot, torn write) rather than a caller mistake. Corruption is
    /// what [`crate::CheckpointStore`] falls back past on load.
    pub fn is_corruption(&self) -> bool {
        match self {
            CheckpointError::InvalidData(_) => true,
            CheckpointError::Io(e) => e.kind() == io::ErrorKind::UnexpectedEof,
            _ => false,
        }
    }
}

/// A compact checkpoint of a weight-budget-trained model.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    seed: u64,
    entries: Vec<(u64, f32)>,
}

impl Checkpoint {
    /// Captures a checkpoint from a network trained with
    /// [`SparseDropBack`] (whose tracked map *is* the stored model).
    pub fn from_sparse(net: &Network, opt: &SparseDropBack) -> Self {
        // The tracked map is a BTreeMap, so this iteration is already in
        // ascending index order — the checkpoint's canonical layout.
        let entries: Vec<(u64, f32)> = opt.tracked().iter().map(|(&i, &w)| (i as u64, w)).collect();
        Self {
            seed: net.store().seed(),
            entries,
        }
    }

    /// Captures a checkpoint from a dense store plus a tracked mask
    /// (e.g. [`dropback_optim::DropBack::mask`]).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::LengthMismatch`] if `mask.len()` differs
    /// from the parameter count.
    pub fn from_mask(net: &Network, mask: &[bool]) -> Result<Self, CheckpointError> {
        if mask.len() != net.num_params() {
            return Err(CheckpointError::LengthMismatch {
                expected: net.num_params(),
                found: mask.len(),
            });
        }
        let entries: Vec<(u64, f32)> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| (i as u64, net.store().params()[i]))
            .collect();
        Ok(Self {
            seed: net.store().seed(),
            entries,
        })
    }

    /// The regeneration seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of stored weights.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the checkpoint stores no weights.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialized size in bytes (what actually ships to the device).
    pub fn size_bytes(&self) -> usize {
        MAGIC.len() + 8 + 8 + self.entries.len() * 12
    }

    /// Restores the tracked weights into a freshly-constructed network.
    /// The network **must** have been built with the same architecture and
    /// seed; untracked weights are already correct by regeneration.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::SeedMismatch`] if the checkpoint seed
    /// disagrees with the network's, or
    /// [`CheckpointError::IndexOutOfRange`] if an index does not exist in
    /// the network. The network is not modified on error.
    pub fn apply(&self, net: &mut Network) -> Result<(), CheckpointError> {
        if self.seed != net.store().seed() {
            return Err(CheckpointError::SeedMismatch {
                expected: net.store().seed(),
                found: self.seed,
            });
        }
        let n = net.num_params();
        // Validate every index before the first write so a bad checkpoint
        // cannot leave the network half-applied.
        if let Some(&(bad, _)) = self.entries.iter().find(|&&(i, _)| i as usize >= n) {
            return Err(CheckpointError::IndexOutOfRange { index: bad, len: n });
        }
        for &(i, w) in &self.entries {
            net.store_mut().params_mut()[i as usize] = w;
        }
        Ok(())
    }

    /// Writes the checkpoint (little-endian binary).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to(&self, mut w: impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&self.seed.to_le_bytes())?;
        w.write_all(&(self.entries.len() as u64).to_le_bytes())?;
        for &(i, v) in &self.entries {
            w.write_all(&i.to_le_bytes())?;
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads a checkpoint previously written by [`Checkpoint::write_to`].
    ///
    /// The declared entry count is never trusted for allocation: at most
    /// 65,536 entries are reserved up front, and
    /// the vector grows only as entry bytes actually arrive, so a
    /// truncated or hostile stream fails with an error instead of an
    /// attacker-sized allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::InvalidData`] on a bad magic header and
    /// [`CheckpointError::Io`] (`UnexpectedEof`) on a truncated stream.
    pub fn read_from(mut r: impl Read) -> Result<Self, CheckpointError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CheckpointError::InvalidData(
                "not a DropBack v1 checkpoint (bad magic)".into(),
            ));
        }
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let seed = u64::from_le_bytes(b8);
        r.read_exact(&mut b8)?;
        let declared = u64::from_le_bytes(b8);
        let n = usize::try_from(declared).map_err(|_| {
            CheckpointError::InvalidData(format!("entry count {declared} exceeds address space"))
        })?;
        let mut entries = Vec::with_capacity(n.min(MAX_PREALLOC_ENTRIES));
        let mut b4 = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut b8)?;
            let i = u64::from_le_bytes(b8);
            r.read_exact(&mut b4)?;
            entries.push((i, f32::from_le_bytes(b4)));
        }
        Ok(Self { seed, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_data::synthetic_mnist;
    use dropback_nn::models;
    use dropback_optim::Optimizer as _;

    fn trained() -> (Network, SparseDropBack) {
        let (train, _) = synthetic_mnist(300, 50, 5);
        let mut net = models::mnist_100_100(5);
        let mut opt = SparseDropBack::new(4_000);
        let batcher = dropback_data::Batcher::new(64, 1);
        for (x, labels) in batcher.epoch(&train, 0) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
        }
        (net, opt)
    }

    #[test]
    fn roundtrip_through_bytes_is_bit_exact() {
        let (net, opt) = trained();
        let ckpt = Checkpoint::from_sparse(&net, &opt);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), ckpt.size_bytes());
        let loaded = Checkpoint::read_from(&buf[..]).unwrap();
        assert_eq!(ckpt, loaded);
        // Rebuild the model from architecture + checkpoint only.
        let mut rebuilt = models::mnist_100_100(5);
        loaded.apply(&mut rebuilt).unwrap();
        assert_eq!(net.store().params(), rebuilt.store().params());
    }

    #[test]
    fn checkpoint_is_small() {
        let (net, opt) = trained();
        let ckpt = Checkpoint::from_sparse(&net, &opt);
        assert!(ckpt.len() <= 4_000);
        // 89,610 f32s dense = 358 KB; 4k entries = 48 KB + header.
        assert!(ckpt.size_bytes() < 50_000);
    }

    #[test]
    fn from_mask_matches_from_sparse() {
        let (net, opt) = trained();
        let from_sparse = Checkpoint::from_sparse(&net, &opt);
        let mut mask = vec![false; net.num_params()];
        for &i in opt.tracked().keys() {
            mask[i] = true;
        }
        let from_mask = Checkpoint::from_mask(&net, &mask).unwrap();
        assert_eq!(from_sparse, from_mask);
    }

    #[test]
    fn bad_mask_length_is_a_typed_error() {
        let (net, _) = trained();
        let err = Checkpoint::from_mask(&net, &[true; 3]).unwrap_err();
        match err {
            CheckpointError::LengthMismatch { expected, found } => {
                assert_eq!(expected, net.num_params());
                assert_eq!(found, 3);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn wrong_seed_is_a_typed_error_not_a_panic() {
        let (net, opt) = trained();
        let ckpt = Checkpoint::from_sparse(&net, &opt);
        let mut other = models::mnist_100_100(999);
        let before = other.store().params().to_vec();
        let err = ckpt.apply(&mut other).unwrap_err();
        assert!(matches!(err, CheckpointError::SeedMismatch { .. }));
        assert!(err.to_string().contains("seed"));
        // Failed apply must not touch the network.
        assert_eq!(other.store().params(), &before[..]);
    }

    #[test]
    fn out_of_range_index_is_rejected_before_any_write() {
        let (net, _) = trained();
        let ckpt = Checkpoint {
            seed: net.store().seed(),
            entries: vec![(0, 1.0), (u64::MAX, 2.0)],
        };
        let mut target = models::mnist_100_100(5);
        let before = target.store().params().to_vec();
        let err = ckpt.apply(&mut target).unwrap_err();
        assert!(matches!(err, CheckpointError::IndexOutOfRange { .. }));
        assert_eq!(target.store().params(), &before[..], "partial apply");
    }

    #[test]
    fn bad_magic_is_an_error() {
        let err = Checkpoint::read_from(&b"NOTDROPB romuald"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::InvalidData(_)));
        assert!(err.is_corruption());
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let (net, opt) = trained();
        let ckpt = Checkpoint::from_sparse(&net, &opt);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = Checkpoint::read_from(&buf[..]).unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn hostile_entry_count_does_not_preallocate() {
        // Header claims u64::MAX entries but carries none: the reader must
        // fail on EOF without reserving attacker-sized memory first.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = Checkpoint::read_from(&buf[..]).unwrap_err();
        assert!(err.is_corruption());
    }
}
