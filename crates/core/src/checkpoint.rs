//! Compact model checkpoints: `(seed, k tracked entries)`.
//!
//! A DropBack-trained network is fully described by its initialization
//! seed plus the `k` tracked index/value pairs — everything else
//! regenerates. This module serializes exactly that, making the paper's
//! compression columns concrete in bytes on disk.

use dropback_nn::Network;
use dropback_optim::SparseDropBack;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"DROPBKv1";

/// A compact checkpoint of a weight-budget-trained model.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    seed: u64,
    entries: Vec<(u64, f32)>,
}

impl Checkpoint {
    /// Captures a checkpoint from a network trained with
    /// [`SparseDropBack`] (whose tracked map *is* the stored model).
    pub fn from_sparse(net: &Network, opt: &SparseDropBack) -> Self {
        // The tracked map is a BTreeMap, so this iteration is already in
        // ascending index order — the checkpoint's canonical layout.
        let entries: Vec<(u64, f32)> = opt.tracked().iter().map(|(&i, &w)| (i as u64, w)).collect();
        Self {
            seed: net.store().seed(),
            entries,
        }
    }

    /// Captures a checkpoint from a dense store plus a tracked mask
    /// (e.g. [`dropback_optim::DropBack::mask`]).
    ///
    /// # Panics
    ///
    /// Panics if `mask.len()` differs from the parameter count.
    pub fn from_mask(net: &Network, mask: &[bool]) -> Self {
        assert_eq!(mask.len(), net.num_params(), "mask length mismatch");
        let entries: Vec<(u64, f32)> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| (i as u64, net.store().params()[i]))
            .collect();
        Self {
            seed: net.store().seed(),
            entries,
        }
    }

    /// The regeneration seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of stored weights.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the checkpoint stores no weights.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialized size in bytes (what actually ships to the device).
    pub fn size_bytes(&self) -> usize {
        MAGIC.len() + 8 + 8 + self.entries.len() * 12
    }

    /// Restores the tracked weights into a freshly-constructed network.
    /// The network **must** have been built with the same architecture and
    /// seed; untracked weights are already correct by regeneration.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint seed disagrees with the network's, or an
    /// index is out of range.
    pub fn apply(&self, net: &mut Network) {
        assert_eq!(
            self.seed,
            net.store().seed(),
            "checkpoint seed does not match network seed"
        );
        let n = net.num_params();
        for &(i, w) in &self.entries {
            assert!((i as usize) < n, "checkpoint index {i} out of range");
            net.store_mut().params_mut()[i as usize] = w;
        }
    }

    /// Writes the checkpoint (little-endian binary).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to(&self, mut w: impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&self.seed.to_le_bytes())?;
        w.write_all(&(self.entries.len() as u64).to_le_bytes())?;
        for &(i, v) in &self.entries {
            w.write_all(&i.to_le_bytes())?;
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads a checkpoint previously written by [`Checkpoint::write_to`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic header or truncated stream.
    pub fn read_from(mut r: impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a DropBack checkpoint",
            ));
        }
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let seed = u64::from_le_bytes(b8);
        r.read_exact(&mut b8)?;
        let n = u64::from_le_bytes(b8) as usize;
        let mut entries = Vec::with_capacity(n);
        let mut b4 = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut b8)?;
            let i = u64::from_le_bytes(b8);
            r.read_exact(&mut b4)?;
            entries.push((i, f32::from_le_bytes(b4)));
        }
        Ok(Self { seed, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_data::synthetic_mnist;
    use dropback_nn::models;
    use dropback_optim::Optimizer as _;

    fn trained() -> (Network, SparseDropBack) {
        let (train, _) = synthetic_mnist(300, 50, 5);
        let mut net = models::mnist_100_100(5);
        let mut opt = SparseDropBack::new(4_000);
        let batcher = dropback_data::Batcher::new(64, 1);
        for (x, labels) in batcher.epoch(&train, 0) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
        }
        (net, opt)
    }

    #[test]
    fn roundtrip_through_bytes_is_bit_exact() {
        let (net, opt) = trained();
        let ckpt = Checkpoint::from_sparse(&net, &opt);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), ckpt.size_bytes());
        let loaded = Checkpoint::read_from(&buf[..]).unwrap();
        assert_eq!(ckpt, loaded);
        // Rebuild the model from architecture + checkpoint only.
        let mut rebuilt = models::mnist_100_100(5);
        loaded.apply(&mut rebuilt);
        assert_eq!(net.store().params(), rebuilt.store().params());
    }

    #[test]
    fn checkpoint_is_small() {
        let (net, opt) = trained();
        let ckpt = Checkpoint::from_sparse(&net, &opt);
        assert!(ckpt.len() <= 4_000);
        // 89,610 f32s dense = 358 KB; 4k entries = 48 KB + header.
        assert!(ckpt.size_bytes() < 50_000);
    }

    #[test]
    fn from_mask_matches_from_sparse() {
        let (net, opt) = trained();
        let from_sparse = Checkpoint::from_sparse(&net, &opt);
        let mut mask = vec![false; net.num_params()];
        for &i in opt.tracked().keys() {
            mask[i] = true;
        }
        let from_mask = Checkpoint::from_mask(&net, &mask);
        assert_eq!(from_sparse, from_mask);
    }

    #[test]
    fn wrong_seed_is_rejected() {
        let (net, opt) = trained();
        let ckpt = Checkpoint::from_sparse(&net, &opt);
        let mut other = models::mnist_100_100(999);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ckpt.apply(&mut other)));
        assert!(result.is_err());
    }

    #[test]
    fn bad_magic_is_an_error() {
        let err = Checkpoint::read_from(&b"NOTDROPB romuald"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let (net, opt) = trained();
        let ckpt = Checkpoint::from_sparse(&net, &opt);
        let mut buf = Vec::new();
        ckpt.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(Checkpoint::read_from(&buf[..]).is_err());
    }
}
