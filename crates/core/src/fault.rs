//! Deterministic I/O fault injection for checkpoint robustness tests.
//!
//! Production training stacks *prove* their recovery paths with injected
//! failures rather than hoping for them. [`FaultInjector`] wraps any
//! reader/writer and misbehaves on command: it can fail a write once a
//! byte budget is exhausted (simulating a crash or full disk mid-write)
//! or flip a byte on read (simulating bit-rot). Faults are fully
//! deterministic — offsets come from the caller or from a seeded
//! [`Xorshift64`] stream, never from wall-clock or OS entropy — so every
//! failing test is replayable from its seed.

use dropback_prng::Xorshift64;
use std::io::{self, Read, Write};

/// What the injector should do to the wrapped stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Pass everything through untouched.
    None,
    /// Accept exactly `n` bytes of writes, then fail every subsequent
    /// write with [`io::ErrorKind::Other`] — a torn write: the prefix is
    /// on disk, the rest never arrives.
    FailWriteAfter(u64),
    /// XOR the byte at stream `offset` with `xor` while reading
    /// (`xor != 0`, or the fault would be a no-op).
    FlipReadByte {
        /// Byte offset into the stream, 0-based.
        offset: u64,
        /// Mask XOR-ed into that byte.
        xor: u8,
    },
}

impl FaultMode {
    /// Derives a deterministic read-flip fault for a stream of `len`
    /// bytes from `seed`: a pseudorandom offset and a nonzero bit mask.
    /// Returns [`FaultMode::None`] for empty streams.
    pub fn seeded_flip(seed: u64, len: u64) -> FaultMode {
        if len == 0 {
            return FaultMode::None;
        }
        let mut rng = Xorshift64::new(seed ^ 0xFA57_1E57);
        let offset = rng.next_u64() % len;
        let xor = 1u8 << (rng.next_u64() % 8) as u8;
        FaultMode::FlipReadByte { offset, xor }
    }

    /// Derives a deterministic torn-write fault from `seed`: the write
    /// budget is a pseudorandom prefix of a `len`-byte stream (strictly
    /// less than `len`, so the fault always fires for non-empty streams).
    pub fn seeded_tear(seed: u64, len: u64) -> FaultMode {
        if len == 0 {
            return FaultMode::FailWriteAfter(0);
        }
        let mut rng = Xorshift64::new(seed ^ 0x7EA2_0FF5);
        FaultMode::FailWriteAfter(rng.next_u64() % len)
    }
}

/// An I/O wrapper that injects one deterministic fault; see [`FaultMode`].
#[derive(Debug)]
pub struct FaultInjector<T> {
    inner: T,
    mode: FaultMode,
    /// Bytes successfully passed through so far (written or read).
    pos: u64,
}

impl<T> FaultInjector<T> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: T, mode: FaultMode) -> Self {
        Self {
            inner,
            mode,
            pos: 0,
        }
    }

    /// Bytes passed through so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Unwraps the inner reader/writer.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Write> Write for FaultInjector<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let FaultMode::FailWriteAfter(budget) = self.mode {
            let remaining = budget.saturating_sub(self.pos);
            if remaining == 0 {
                return Err(io::Error::other(
                    "injected write fault: byte budget exhausted (simulated crash)",
                ));
            }
            // Write at most the remaining budget so the failure lands at a
            // deterministic byte offset regardless of caller chunking.
            let take = (remaining.min(buf.len() as u64)) as usize;
            let n = self.inner.write(&buf[..take])?;
            self.pos += n as u64;
            return Ok(n);
        }
        let n = self.inner.write(buf)?;
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<T: Read> Read for FaultInjector<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        if let FaultMode::FlipReadByte { offset, xor } = self.mode {
            // Does the faulty offset land inside this chunk?
            if offset >= self.pos && offset < self.pos + n as u64 {
                buf[(offset - self.pos) as usize] ^= xor;
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_mode_is_transparent() {
        let mut w = FaultInjector::new(Vec::new(), FaultMode::None);
        w.write_all(b"hello").unwrap();
        assert_eq!(w.into_inner(), b"hello");
        let mut r = FaultInjector::new(&b"world"[..], FaultMode::None);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"world");
    }

    #[test]
    fn write_fails_exactly_at_the_byte_budget() {
        let mut w = FaultInjector::new(Vec::new(), FaultMode::FailWriteAfter(7));
        let err = w.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(w.position(), 7);
        assert_eq!(w.into_inner(), b"0123456");
    }

    #[test]
    fn zero_budget_fails_the_first_write() {
        let mut w = FaultInjector::new(Vec::new(), FaultMode::FailWriteAfter(0));
        assert!(w.write_all(b"x").is_err());
        assert!(w.into_inner().is_empty());
    }

    #[test]
    fn read_flip_corrupts_exactly_one_byte_across_chunkings() {
        let data: Vec<u8> = (0..64).collect();
        for chunk in [1usize, 3, 64] {
            let mut r = FaultInjector::new(
                &data[..],
                FaultMode::FlipReadByte {
                    offset: 17,
                    xor: 0x80,
                },
            );
            let mut out = Vec::new();
            let mut buf = vec![0u8; chunk];
            loop {
                let n = r.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                out.extend_from_slice(&buf[..n]);
            }
            assert_eq!(out.len(), 64);
            for (i, (&got, &want)) in out.iter().zip(&data).enumerate() {
                if i == 17 {
                    assert_eq!(got, want ^ 0x80, "chunk {chunk}");
                } else {
                    assert_eq!(got, want, "chunk {chunk} byte {i}");
                }
            }
        }
    }

    #[test]
    fn seeded_faults_are_deterministic_and_in_range() {
        for seed in 0..50u64 {
            let a = FaultMode::seeded_flip(seed, 100);
            assert_eq!(a, FaultMode::seeded_flip(seed, 100), "seed {seed}");
            match a {
                FaultMode::FlipReadByte { offset, xor } => {
                    assert!(offset < 100);
                    assert_ne!(xor, 0);
                }
                other => panic!("unexpected mode {other:?}"),
            }
            match FaultMode::seeded_tear(seed, 100) {
                FaultMode::FailWriteAfter(n) => assert!(n < 100),
                other => panic!("unexpected mode {other:?}"),
            }
        }
        assert_eq!(FaultMode::seeded_flip(1, 0), FaultMode::None);
    }
}
