//! Deterministic chaos: replayable I/O fault injection for robustness
//! tests, from checkpoint files to live sockets.
//!
//! Production training *and serving* stacks prove their recovery paths
//! with injected failures rather than hoping for them. This module holds
//! the workspace's entire fault vocabulary:
//!
//! * [`FaultInjector`] + [`FaultMode`] — the checkpoint-era wrapper: fail
//!   a write once a byte budget is exhausted (torn write / full disk) or
//!   flip one byte on read (bit-rot). Used by the checkpoint store and
//!   the resume/corruption suites.
//! * [`FaultStream`] + [`FaultAction`] — the network-era wrapper: stall
//!   before the first byte (slow-loris), reset after N bytes (peer
//!   dropped mid-message), dribble writes a few bytes at a time (trickle
//!   client), or flip a byte in flight. Used by the serve crate's chaos
//!   suite against real connections.
//! * [`FaultPlan`] — a fully seeded, replayable assignment of one
//!   [`FaultAction`] per connection ordinal, so an entire chaos scenario
//!   (which connection stalls, which resets, which sails through) is
//!   reproducible from a single `u64`.
//!
//! Every fault is deterministic — offsets and choices come from the
//! caller or from a seeded [`Xorshift64`] stream, never from wall-clock
//! or OS entropy — so every failing test replays from its seed.

use dropback_prng::Xorshift64;
use std::io::{self, Read, Write};
use std::time::Duration;

/// What the injector should do to the wrapped stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Pass everything through untouched.
    None,
    /// Accept exactly `n` bytes of writes, then fail every subsequent
    /// write with [`io::ErrorKind::Other`] — a torn write: the prefix is
    /// on disk, the rest never arrives.
    FailWriteAfter(u64),
    /// XOR the byte at stream `offset` with `xor` while reading
    /// (`xor != 0`, or the fault would be a no-op).
    FlipReadByte {
        /// Byte offset into the stream, 0-based.
        offset: u64,
        /// Mask XOR-ed into that byte.
        xor: u8,
    },
}

impl FaultMode {
    /// Derives a deterministic read-flip fault for a stream of `len`
    /// bytes from `seed`: a pseudorandom offset and a nonzero bit mask.
    /// Returns [`FaultMode::None`] for empty streams.
    pub fn seeded_flip(seed: u64, len: u64) -> FaultMode {
        if len == 0 {
            return FaultMode::None;
        }
        let mut rng = Xorshift64::new(seed ^ 0xFA57_1E57);
        let offset = rng.next_u64() % len;
        let xor = 1u8 << (rng.next_u64() % 8) as u8;
        FaultMode::FlipReadByte { offset, xor }
    }

    /// Derives a deterministic torn-write fault from `seed`: the write
    /// budget is a pseudorandom prefix of a `len`-byte stream (strictly
    /// less than `len`, so the fault always fires for non-empty streams).
    pub fn seeded_tear(seed: u64, len: u64) -> FaultMode {
        if len == 0 {
            return FaultMode::FailWriteAfter(0);
        }
        let mut rng = Xorshift64::new(seed ^ 0x7EA2_0FF5);
        FaultMode::FailWriteAfter(rng.next_u64() % len)
    }
}

/// An I/O wrapper that injects one deterministic fault; see [`FaultMode`].
#[derive(Debug)]
pub struct FaultInjector<T> {
    inner: T,
    mode: FaultMode,
    /// Bytes successfully passed through so far (written or read).
    pos: u64,
}

impl<T> FaultInjector<T> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: T, mode: FaultMode) -> Self {
        Self {
            inner,
            mode,
            pos: 0,
        }
    }

    /// Bytes passed through so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Unwraps the inner reader/writer.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Write> Write for FaultInjector<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let FaultMode::FailWriteAfter(budget) = self.mode {
            let remaining = budget.saturating_sub(self.pos);
            if remaining == 0 {
                return Err(io::Error::other(
                    "injected write fault: byte budget exhausted (simulated crash)",
                ));
            }
            // Write at most the remaining budget so the failure lands at a
            // deterministic byte offset regardless of caller chunking.
            let take = (remaining.min(buf.len() as u64)) as usize;
            let n = self.inner.write(&buf[..take])?;
            self.pos += n as u64;
            return Ok(n);
        }
        let n = self.inner.write(buf)?;
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<T: Read> Read for FaultInjector<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        if let FaultMode::FlipReadByte { offset, xor } = self.mode {
            // Does the faulty offset land inside this chunk?
            if offset >= self.pos && offset < self.pos + n as u64 {
                buf[(offset - self.pos) as usize] ^= xor;
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

/// One network-style misbehavior a [`FaultStream`] applies to its wrapped
/// connection half. Unlike [`FaultMode`] (built for files), these model
/// how *peers* fail: slowly, partially, or mid-message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass everything through untouched.
    None,
    /// Sleep `delay` once, before the first byte moves in either
    /// direction — a slow-loris peer that connects and then goes quiet.
    Stall {
        /// How long the first I/O call sleeps before proceeding.
        delay: Duration,
    },
    /// Pass exactly `bytes` bytes through (reads and writes share the
    /// budget), then fail every call with
    /// [`io::ErrorKind::ConnectionReset`] — the peer vanished
    /// mid-message.
    ResetAfter {
        /// Total byte budget before the connection "dies".
        bytes: u64,
    },
    /// Cap every write to `chunk` bytes and sleep `pause` before each —
    /// a trickle client feeding the peer one sip at a time. Reads pass
    /// through untouched.
    Dribble {
        /// Most bytes any single write moves.
        chunk: usize,
        /// Sleep before each write.
        pause: Duration,
    },
    /// XOR the byte at stream `offset` with `xor` on the read side —
    /// in-flight corruption.
    FlipByte {
        /// Byte offset into the read stream, 0-based.
        offset: u64,
        /// Mask XOR-ed into that byte (nonzero, or the fault is a no-op).
        xor: u8,
    },
}

/// A seeded, replayable assignment of one [`FaultAction`] per connection.
///
/// [`FaultPlan::seeded`] derives each connection's action from
/// `(seed, connection ordinal)` alone, so the same seed always produces
/// the same storm; [`FaultPlan::cycle`] scripts an explicit repeating
/// sequence for tests that need one specific failure on one specific
/// connection. Either way, `action(n)` is a pure function — replaying a
/// scenario never depends on call order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    kind: PlanKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum PlanKind {
    Seeded(u64),
    Cycle(Vec<FaultAction>),
}

impl FaultPlan {
    /// A plan deriving every connection's action pseudorandomly from
    /// `seed`: a mix of clean passes, stalls, resets, dribbles, and byte
    /// flips with small, test-friendly parameters.
    pub fn seeded(seed: u64) -> Self {
        Self {
            kind: PlanKind::Seeded(seed),
        }
    }

    /// A plan that walks `actions` in order, wrapping around — connection
    /// `n` gets `actions[n % len]`. An empty script behaves as all-clean.
    pub fn cycle(actions: Vec<FaultAction>) -> Self {
        Self {
            kind: PlanKind::Cycle(actions),
        }
    }

    /// The action assigned to connection ordinal `conn` (0-based).
    pub fn action(&self, conn: u64) -> FaultAction {
        match &self.kind {
            PlanKind::Cycle(actions) => {
                if actions.is_empty() {
                    FaultAction::None
                } else {
                    actions[(conn % actions.len() as u64) as usize]
                }
            }
            PlanKind::Seeded(seed) => {
                // One independent stream per (seed, conn): mix the ordinal
                // in with an odd constant so neighboring ordinals land far
                // apart in state space.
                let mut rng =
                    Xorshift64::new(seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC4A0_5EED);
                match rng.next_u64() % 5 {
                    0 => FaultAction::None,
                    1 => FaultAction::Stall {
                        delay: Duration::from_millis(5 + rng.next_u64() % 45),
                    },
                    2 => FaultAction::ResetAfter {
                        bytes: 1 + rng.next_u64() % 256,
                    },
                    3 => FaultAction::Dribble {
                        chunk: 1 + (rng.next_u64() % 4) as usize,
                        pause: Duration::from_millis(1 + rng.next_u64() % 4),
                    },
                    _ => FaultAction::FlipByte {
                        offset: rng.next_u64() % 64,
                        xor: 1u8 << (rng.next_u64() % 8) as u8,
                    },
                }
            }
        }
    }
}

/// An I/O wrapper that applies one [`FaultAction`] to a connection half.
///
/// Wrap each half of a duplex stream separately (each side keeps its own
/// byte position); the same action on both halves models one misbehaving
/// peer. All failures surface as typed [`io::Error`]s — a `FaultStream`
/// never panics, so it is safe on request paths.
#[derive(Debug)]
pub struct FaultStream<T> {
    inner: T,
    action: FaultAction,
    /// Bytes passed through this half so far.
    pos: u64,
    stalled: bool,
}

impl<T> FaultStream<T> {
    /// Wraps `inner` with the given action.
    pub fn new(inner: T, action: FaultAction) -> Self {
        Self {
            inner,
            action,
            pos: 0,
            stalled: false,
        }
    }

    /// Bytes passed through so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// The action this wrapper applies.
    pub fn action(&self) -> FaultAction {
        self.action
    }

    /// Unwraps the inner reader/writer.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn stall_once(&mut self) {
        if let FaultAction::Stall { delay } = self.action {
            if !self.stalled {
                self.stalled = true;
                std::thread::sleep(delay);
            }
        }
    }

    fn reset_budget(&self) -> Option<u64> {
        match self.action {
            FaultAction::ResetAfter { bytes } => Some(bytes.saturating_sub(self.pos)),
            _ => None,
        }
    }

    fn reset_error() -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            "injected connection reset: byte budget exhausted (simulated dropped peer)",
        )
    }
}

impl<T: Read> Read for FaultStream<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stall_once();
        let take = match self.reset_budget() {
            Some(0) => return Err(Self::reset_error()),
            // Cap the read so the reset lands at a deterministic offset
            // regardless of caller chunking.
            Some(budget) => (budget.min(buf.len() as u64)) as usize,
            None => buf.len(),
        };
        let n = self.inner.read(&mut buf[..take])?;
        if let FaultAction::FlipByte { offset, xor } = self.action {
            if offset >= self.pos && offset < self.pos + n as u64 {
                buf[(offset - self.pos) as usize] ^= xor;
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

impl<T: Write> Write for FaultStream<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stall_once();
        let mut take = match self.reset_budget() {
            Some(0) => return Err(Self::reset_error()),
            Some(budget) => (budget.min(buf.len() as u64)) as usize,
            None => buf.len(),
        };
        if let FaultAction::Dribble { chunk, pause } = self.action {
            std::thread::sleep(pause);
            take = take.min(chunk.max(1));
        }
        let n = self.inner.write(&buf[..take])?;
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_mode_is_transparent() {
        let mut w = FaultInjector::new(Vec::new(), FaultMode::None);
        w.write_all(b"hello").unwrap();
        assert_eq!(w.into_inner(), b"hello");
        let mut r = FaultInjector::new(&b"world"[..], FaultMode::None);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"world");
    }

    #[test]
    fn write_fails_exactly_at_the_byte_budget() {
        let mut w = FaultInjector::new(Vec::new(), FaultMode::FailWriteAfter(7));
        let err = w.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(w.position(), 7);
        assert_eq!(w.into_inner(), b"0123456");
    }

    #[test]
    fn zero_budget_fails_the_first_write() {
        let mut w = FaultInjector::new(Vec::new(), FaultMode::FailWriteAfter(0));
        assert!(w.write_all(b"x").is_err());
        assert!(w.into_inner().is_empty());
    }

    #[test]
    fn read_flip_corrupts_exactly_one_byte_across_chunkings() {
        let data: Vec<u8> = (0..64).collect();
        for chunk in [1usize, 3, 64] {
            let mut r = FaultInjector::new(
                &data[..],
                FaultMode::FlipReadByte {
                    offset: 17,
                    xor: 0x80,
                },
            );
            let mut out = Vec::new();
            let mut buf = vec![0u8; chunk];
            loop {
                let n = r.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                out.extend_from_slice(&buf[..n]);
            }
            assert_eq!(out.len(), 64);
            for (i, (&got, &want)) in out.iter().zip(&data).enumerate() {
                if i == 17 {
                    assert_eq!(got, want ^ 0x80, "chunk {chunk}");
                } else {
                    assert_eq!(got, want, "chunk {chunk} byte {i}");
                }
            }
        }
    }

    #[test]
    fn seeded_faults_are_deterministic_and_in_range() {
        for seed in 0..50u64 {
            let a = FaultMode::seeded_flip(seed, 100);
            assert_eq!(a, FaultMode::seeded_flip(seed, 100), "seed {seed}");
            match a {
                FaultMode::FlipReadByte { offset, xor } => {
                    assert!(offset < 100);
                    assert_ne!(xor, 0);
                }
                other => panic!("unexpected mode {other:?}"),
            }
            match FaultMode::seeded_tear(seed, 100) {
                FaultMode::FailWriteAfter(n) => assert!(n < 100),
                other => panic!("unexpected mode {other:?}"),
            }
        }
        assert_eq!(FaultMode::seeded_flip(1, 0), FaultMode::None);
    }

    #[test]
    fn seeded_plans_are_replayable_and_cover_every_action() {
        let plan = FaultPlan::seeded(42);
        let replay = FaultPlan::seeded(42);
        let mut kinds = [false; 5];
        for conn in 0..200u64 {
            let a = plan.action(conn);
            assert_eq!(a, replay.action(conn), "conn {conn} must replay");
            let k = match a {
                FaultAction::None => 0,
                FaultAction::Stall { delay } => {
                    assert!(delay >= Duration::from_millis(5));
                    assert!(delay < Duration::from_millis(50));
                    1
                }
                FaultAction::ResetAfter { bytes } => {
                    assert!(bytes >= 1);
                    2
                }
                FaultAction::Dribble { chunk, .. } => {
                    assert!(chunk >= 1);
                    3
                }
                FaultAction::FlipByte { xor, .. } => {
                    assert_ne!(xor, 0);
                    4
                }
            };
            kinds[k] = true;
        }
        assert!(kinds.iter().all(|&k| k), "200 conns hit every action kind");
        assert_ne!(
            (0..20).map(|c| plan.action(c)).collect::<Vec<_>>(),
            (0..20)
                .map(|c| FaultPlan::seeded(43).action(c))
                .collect::<Vec<_>>(),
            "different seeds produce different storms"
        );
    }

    #[test]
    fn cycle_plans_script_exact_sequences() {
        let plan = FaultPlan::cycle(vec![
            FaultAction::ResetAfter { bytes: 10 },
            FaultAction::None,
        ]);
        assert_eq!(plan.action(0), FaultAction::ResetAfter { bytes: 10 });
        assert_eq!(plan.action(1), FaultAction::None);
        assert_eq!(plan.action(2), FaultAction::ResetAfter { bytes: 10 });
        assert_eq!(FaultPlan::cycle(Vec::new()).action(7), FaultAction::None);
    }

    #[test]
    fn fault_stream_passthrough_is_transparent() {
        let mut w = FaultStream::new(Vec::new(), FaultAction::None);
        w.write_all(b"hello").unwrap();
        assert_eq!(w.position(), 5);
        assert_eq!(w.into_inner(), b"hello");
    }

    #[test]
    fn reset_fires_at_the_exact_byte_across_chunkings() {
        for chunk in [1usize, 3, 64] {
            let mut w = FaultStream::new(Vec::new(), FaultAction::ResetAfter { bytes: 7 });
            let mut err = None;
            for piece in b"0123456789".chunks(chunk) {
                if let Err(e) = w.write_all(piece) {
                    err = Some(e);
                    break;
                }
            }
            let err = err.expect("reset must fire");
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
            assert_eq!(w.position(), 7, "chunk {chunk}");
            assert_eq!(w.into_inner(), b"0123456");
        }
    }

    #[test]
    fn reset_budget_is_shared_with_reads() {
        let mut r = FaultStream::new(&b"abcdef"[..], FaultAction::ResetAfter { bytes: 4 });
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"abcd");
        assert_eq!(
            r.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn dribble_caps_every_write_to_the_chunk() {
        let mut w = FaultStream::new(
            Vec::new(),
            FaultAction::Dribble {
                chunk: 2,
                pause: Duration::ZERO,
            },
        );
        let mut sent = 0;
        while sent < 9 {
            let n = w.write(&b"123456789"[sent..]).unwrap();
            assert!(n <= 2, "dribble never moves more than chunk bytes");
            sent += n;
        }
        assert_eq!(w.into_inner(), b"123456789");
    }

    #[test]
    fn stall_sleeps_once_then_passes_through() {
        let mut r = FaultStream::new(
            &b"xy"[..],
            FaultAction::Stall {
                delay: Duration::from_millis(1),
            },
        );
        let mut buf = [0u8; 1];
        assert_eq!(r.read(&mut buf).unwrap(), 1);
        assert_eq!(&buf, b"x");
        assert_eq!(r.read(&mut buf).unwrap(), 1);
        assert_eq!(&buf, b"y");
    }

    #[test]
    fn flip_byte_corrupts_reads_in_flight() {
        let mut r = FaultStream::new(
            &b"abcd"[..],
            FaultAction::FlipByte {
                offset: 2,
                xor: 0x01,
            },
        );
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"ab\x62d", "byte 2 flipped: c ^ 0x01 = b");
    }
}
