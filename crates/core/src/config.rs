//! Training-run configuration.

use dropback_optim::{KlAnneal, LrSchedule};

/// Configuration of one training run.
///
/// Defaults mirror the paper's MNIST regime: SGD (no momentum), initial
/// learning rate 0.4 with step decay, best epoch selected by validation
/// accuracy with 5 epochs of patience.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Shuffling seed (deterministic per-epoch orders derive from it).
    pub shuffle_seed: u64,
    /// Early-stop patience: stop after this many epochs without a new best
    /// validation accuracy (`None` disables early stopping).
    pub patience: Option<usize>,
    /// KL annealing schedule for variational-dropout networks (`None` for
    /// ordinary networks).
    pub kl: Option<KlAnneal>,
    /// Evaluation batch size.
    pub eval_batch: usize,
}

impl TrainConfig {
    /// Creates a config with the given epoch budget and batch size and
    /// paper-like defaults for everything else.
    ///
    /// # Panics
    ///
    /// Panics if `epochs == 0` or `batch_size == 0`.
    pub fn new(epochs: usize, batch_size: usize) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        assert!(batch_size > 0, "need a positive batch size");
        Self {
            epochs,
            batch_size,
            schedule: LrSchedule::paper_mnist(epochs),
            shuffle_seed: 0x5EED,
            patience: Some(5),
            kl: None,
            eval_batch: 256,
        }
    }

    /// Sets the learning-rate schedule.
    pub fn lr(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the shuffle seed.
    pub fn shuffle_seed(mut self, seed: u64) -> Self {
        self.shuffle_seed = seed;
        self
    }

    /// Sets (or disables) early-stopping patience.
    pub fn patience(mut self, patience: Option<usize>) -> Self {
        self.patience = patience;
        self
    }

    /// Enables variational-dropout KL annealing.
    pub fn kl_anneal(mut self, kl: KlAnneal) -> Self {
        self.kl = Some(kl);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_regime() {
        let c = TrainConfig::new(100, 64);
        assert_eq!(c.schedule.at(0), 0.4);
        assert_eq!(c.patience, Some(5));
        assert!(c.kl.is_none());
    }

    #[test]
    fn builder_chain() {
        let c = TrainConfig::new(10, 8)
            .lr(LrSchedule::Constant(0.05))
            .shuffle_seed(9)
            .patience(None)
            .kl_anneal(KlAnneal::new(5, 0.1));
        assert_eq!(c.schedule, LrSchedule::Constant(0.05));
        assert_eq!(c.shuffle_seed, 9);
        assert!(c.patience.is_none());
        assert!(c.kl.is_some());
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_panics() {
        TrainConfig::new(0, 8);
    }
}
