//! `dropback-trace` — hotspot analyzer for Chrome trace-event files
//! written by `dropback-cli train --trace` or the `DROPBACK_TRACE`
//! environment variable on the repro binaries.
//!
//! ```text
//! dropback-trace run.trace.json             # human-readable hotspot report
//! dropback-trace run.trace.json --top 5     # only the 5 hottest spans
//! dropback-trace run.trace.json --json      # machine-readable digest
//! ```
//!
//! The report shows self-time/total-time per span name, per-kernel
//! GFLOP/s (from the `flops` annotations the tensor kernels attach),
//! `train-step` latency percentiles, and the gemm vs topk-rank vs regen
//! breakdown of DropBack step time. Serving traces (`dropback-serve
//! serve --trace`, flight-recorder dumps) add per-request async lanes:
//! the analysis reports per-stage percentiles (`serve.queue` /
//! `serve.infer` / `serve.write` / `serve.req`) and a batch-fill digest
//! from the `serve.batch` instants. Exit is non-zero on unreadable
//! files, invalid JSON, or begin/end (sync *and* async, per lane id)
//! pairing violations, so this binary doubles as the trace validator in
//! `scripts/check.sh`.

use dropback::trace_analysis::analyze_chrome_trace;
use std::process::ExitCode;

const USAGE: &str = "usage: dropback-trace <trace.json> [--json] [--top N]\n\
     analyzes a Chrome trace-event file produced by `dropback-cli train --trace`\n\
     --json   emit the analysis as one JSON document on stdout\n\
     --top N  limit the hotspot table to the N hottest spans (default 20)";

struct Options {
    path: String,
    json: bool,
    top: usize,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut path = None;
    let mut json = false;
    let mut top = 20usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--top" => {
                let raw = args
                    .get(i + 1)
                    .ok_or_else(|| "--top requires a number".to_string())?;
                top = raw
                    .parse()
                    .map_err(|e| format!("invalid value {raw:?} for --top: {e}"))?;
                i += 1;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?}"));
            }
            file => {
                if path.replace(file.to_string()).is_some() {
                    return Err("expected exactly one trace file".to_string());
                }
            }
        }
        i += 1;
    }
    let path = path.ok_or_else(|| "missing trace file argument".to_string())?;
    Ok(Options { path, json, top })
}

fn run(opts: &Options) -> Result<(), String> {
    let text = std::fs::read_to_string(&opts.path)
        .map_err(|e| format!("cannot read {}: {e}", opts.path))?;
    let analysis = analyze_chrome_trace(&text).map_err(|e| format!("{}: {e}", opts.path))?;
    if opts.json {
        println!("{}", analysis.to_json().render());
    } else {
        print!("{}", analysis.render(opts.top));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
