//! `dropback-cli` — train, evaluate, checkpoint, and size models from the
//! command line.
//!
//! ```text
//! dropback-cli train --model mnist-100-100 --budget 20000 --epochs 8 \
//!                    --checkpoint model.dbk
//! dropback-cli eval  --model mnist-100-100 --checkpoint model.dbk
//! dropback-cli info  --model lenet-300-100
//! dropback-cli energy --params 266610 --budget 20000
//! ```

use dropback::prelude::*;
use dropback::Checkpoint;
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(key.to_string(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    flags
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_model(name: &str, seed: u64) -> Result<Network, String> {
    match name {
        "mnist-100-100" => Ok(models::mnist_100_100(seed)),
        "lenet-300-100" => Ok(models::lenet_300_100(seed)),
        "vgg-s-nano" => Ok(models::vgg_s_nano(seed)),
        "densenet-nano" => Ok(models::densenet_nano(seed)),
        "wrn-nano" => Ok(models::wrn_nano(seed, 1)),
        other => Err(format!(
            "unknown model {other:?}; available: mnist-100-100, lenet-300-100, \
             vgg-s-nano, densenet-nano, wrn-nano"
        )),
    }
}

fn load_data(
    flags: &HashMap<String, String>,
    model: &str,
    seed: u64,
) -> (Dataset, Dataset) {
    let n_train = get(flags, "train", 4000usize);
    let n_test = get(flags, "test", 1000usize);
    if let Some(dir) = flags.get("data") {
        if dir != "synthetic" {
            match dropback::data::load_mnist_idx(dir) {
                Ok(pair) => return pair,
                Err(e) => eprintln!("could not load {dir}: {e}; using synthetic data"),
            }
        }
    }
    if model.contains("mnist") || model.contains("lenet") {
        synthetic_mnist(n_train, n_test, seed)
    } else {
        let hw = dropback::nn::models::CIFAR_NANO_HW;
        synthetic_cifar(n_train, n_test, hw, hw, seed)
    }
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = get(flags, "seed", 42);
    let model_name = flags
        .get("model")
        .cloned()
        .unwrap_or_else(|| "mnist-100-100".into());
    let epochs = get(flags, "epochs", 8usize);
    let batch = get(flags, "batch", 64usize);
    let lr = get(flags, "lr", 0.2f32);
    let budget = get(flags, "budget", 0usize);
    let net = build_model(&model_name, seed)?;
    let params = net.num_params();
    let (train, test) = load_data(flags, &model_name, seed);
    println!(
        "training {model_name} ({params} params) for {epochs} epochs, batch {batch}, lr {lr}"
    );
    let cfg = TrainConfig::new(epochs, batch).lr(LrSchedule::StepDecay {
        initial: lr,
        factor: 0.5,
        every: (epochs / 5).max(1),
    });
    // Use the sparse rule when a budget is set so a checkpoint can be cut.
    if budget > 0 && budget < params {
        let freeze = get(flags, "freeze", epochs / 2);
        let mut opt = SparseDropBack::new(budget).freeze_after(freeze.max(1));
        // Manual loop: the checkpoint needs the optimizer afterwards.
        let mut net = net;
        let batcher = Batcher::new(batch, cfg.shuffle_seed);
        for epoch in 0..epochs {
            let lr_now = cfg.schedule.at(epoch);
            let mut loss_sum = 0.0f32;
            let mut n_batches = 0usize;
            for (x, labels) in batcher.epoch(&train, epoch as u64) {
                let (loss, _) = net.loss_backward(&x, &labels);
                opt.step(net.store_mut(), lr_now);
                loss_sum += loss;
                n_batches += 1;
            }
            opt.end_epoch(epoch, net.store_mut());
            println!(
                "epoch {epoch:>3}  lr {lr_now:.4}  loss {:.4}  val acc {:.4}",
                loss_sum / n_batches.max(1) as f32,
                net.accuracy(&test, 256)
            );
        }
        println!(
            "stored {} of {params} weights ({:.1}x compression)",
            opt.storage_entries(),
            params as f32 / budget as f32
        );
        if let Some(path) = flags.get("checkpoint") {
            let ckpt = Checkpoint::from_sparse(&net, &opt);
            let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
            ckpt.write_to(file).map_err(|e| e.to_string())?;
            println!("wrote {path} ({} bytes)", ckpt.size_bytes());
        }
    } else {
        let report = Trainer::new(cfg).run(net, Sgd::new(), &train, &test);
        print!("{}", report.to_table());
        if flags.contains_key("checkpoint") {
            return Err("--checkpoint requires a --budget below the model size".into());
        }
    }
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = get(flags, "seed", 42);
    let model_name = flags
        .get("model")
        .cloned()
        .unwrap_or_else(|| "mnist-100-100".into());
    let path = flags
        .get("checkpoint")
        .ok_or("eval requires --checkpoint PATH")?;
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    let ckpt = Checkpoint::read_from(file).map_err(|e| e.to_string())?;
    let mut net = build_model(&model_name, ckpt.seed())?;
    ckpt.apply(&mut net);
    let (_, test) = load_data(flags, &model_name, seed);
    println!(
        "{model_name} from {path}: {} stored weights, val acc {:.4}",
        ckpt.len(),
        net.accuracy(&test, 256)
    );
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = get(flags, "seed", 42);
    let model_name = flags
        .get("model")
        .cloned()
        .unwrap_or_else(|| "mnist-100-100".into());
    let net = build_model(&model_name, seed)?;
    println!("{}: {} parameters", net.name(), net.num_params());
    for r in net.param_ranges() {
        println!("  {:<24} {:>8}  (init {:?})", r.name(), r.len(), r.scheme());
    }
    Ok(())
}

fn cmd_energy(flags: &HashMap<String, String>) -> Result<(), String> {
    let params: u64 = get(flags, "params", 266_610u64);
    let budget: u64 = get(flags, "budget", 20_000u64);
    let model = EnergyModel::paper_45nm();
    let base = TrainingTraffic::baseline(params);
    let db = TrainingTraffic::dropback(params, budget);
    println!("45nm weight-memory energy for {params} params at budget {budget}:");
    println!(
        "  dense SGD : {:>10.2} µJ/step",
        base.step().energy_pj(&model) / 1e6
    );
    println!(
        "  DropBack  : {:>10.2} µJ/step  ({:.1}x less)",
        db.step().energy_pj(&model) / 1e6,
        db.advantage_over(&base, &model)
    );
    let sram: u64 = get(flags, "sram", 256 * 1024u64);
    let acc = dropback::energy::Accelerator {
        sram_bytes: sram,
        word_bytes: 4,
        model,
        regen_unit: true,
    };
    println!(
        "  with {} KiB weight SRAM: tracked set {} on-chip; max trainable model at this\n\
         compression: {} weights",
        sram / 1024,
        if acc.fits_on_chip(budget) { "fits" } else { "spills" },
        acc.max_trainable_weights(params as f64 / budget as f64)
    );
    Ok(())
}

fn usage() -> String {
    "usage: dropback-cli <train|eval|info|energy> [--flag value ...]\n\
     train : --model M --epochs N --batch B --lr X --budget K --freeze E \
             --checkpoint PATH --data synthetic|DIR --train N --test N --seed S\n\
     eval  : --model M --checkpoint PATH [--data ...]\n\
     info  : --model M\n\
     energy: --params N --budget K [--sram BYTES]"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "train" => cmd_train(&flags),
        "eval" => cmd_eval(&flags),
        "info" => cmd_info(&flags),
        "energy" => cmd_energy(&flags),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
