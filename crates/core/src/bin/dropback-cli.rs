//! `dropback-cli` — train, evaluate, checkpoint, and size models from the
//! command line.
//!
//! ```text
//! dropback-cli train --model mnist-100-100 --budget 20000 --epochs 8 \
//!                    --checkpoint model.dbk --telemetry run.jsonl
//! dropback-cli eval  --model mnist-100-100 --checkpoint model.dbk
//! dropback-cli info  --model lenet-300-100
//! dropback-cli energy --params 266610 --budget 20000
//! ```
//!
//! Output contract: stdout carries only the machine-parseable result (one
//! JSON line for `train`/`eval`, aligned text for `info`/`energy`); all
//! progress and diagnostics go to stderr. `--quiet` silences the stderr
//! progress; `--telemetry PATH` additionally streams every event as JSONL.

use dropback::prelude::*;
use dropback::Checkpoint;
use std::collections::HashMap;
use std::process::ExitCode;

/// Exit code for a resume request that cannot be honoured (snapshot from
/// a different seed / model / optimizer): the run configuration is wrong,
/// not the file system, so retrying will not help.
const EXIT_INCOMPATIBLE: u8 = 2;

/// A CLI failure: the message for stderr plus the process exit code.
struct CliError {
    message: String,
    code: u8,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self { message, code: 1 }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        Self::from(message.to_string())
    }
}

/// Maps a resume failure to its exit code: incompatibility (wrong seed,
/// model, optimizer, shuffle seed) is a configuration error → exit 2
/// with the checkpoint's actionable message; anything else is a plain
/// failure → exit 1.
fn resume_error(e: CheckpointError) -> CliError {
    let code = match &e {
        CheckpointError::SeedMismatch { .. } | CheckpointError::Incompatible(_) => {
            EXIT_INCOMPATIBLE
        }
        _ => 1,
    };
    CliError {
        message: format!("cannot resume: {e}"),
        code,
    }
}

/// Flags each subcommand accepts; anything else is an error, not a silent
/// fallback to defaults.
fn known_flags(cmd: &str) -> &'static [&'static str] {
    match cmd {
        "train" => &[
            "model",
            "epochs",
            "batch",
            "lr",
            "budget",
            "freeze",
            "checkpoint",
            "checkpoint-dir",
            "checkpoint-every",
            "resume",
            "data",
            "train",
            "test",
            "seed",
            "telemetry",
            "trace",
            "threads",
            "quiet",
        ],
        "eval" => &["model", "checkpoint", "data", "train", "test", "seed"],
        "info" => &["model", "seed"],
        "energy" => &["params", "budget", "sram", "model"],
        _ => &[],
    }
}

fn parse_flags(cmd: &str, args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if !known_flags(cmd).contains(&key) {
                return Err(format!(
                    "unknown flag --{key} for {cmd:?} (valid: {})",
                    known_flags(cmd)
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
            // Boolean flags (`--quiet`) take no value: the next token is a
            // value only if it is not itself a flag.
            match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                Some(value) => {
                    flags.insert(key.to_string(), value.clone());
                    i += 2;
                }
                None => {
                    flags.insert(key.to_string(), String::new());
                    i += 1;
                }
            }
        } else {
            return Err(format!("unexpected argument {:?}", args[i]));
        }
    }
    Ok(flags)
}

/// Reads `--key` from the parsed flags: absent means `default`, present
/// but unparsable is an error naming the flag and the bad value — never a
/// silent fall-back to the default.
fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|e| format!("invalid value {raw:?} for --{key}: {e}")),
    }
}

/// A stderr progress sink that drops per-step events — epoch and run
/// summaries are progress; per-step spam is not.
struct EpochStderr(StderrSink);

impl EventSink for EpochStderr {
    fn emit(&mut self, event: &Event) {
        if event.kind() != "step" {
            self.0.emit(event);
        }
    }
}

/// Builds the telemetry bundle from `--telemetry PATH` and `--quiet`:
/// JSONL to the path (all events), human-readable epoch lines to stderr
/// unless quiet. With neither, telemetry is fully disabled.
fn telemetry_from_flags(flags: &HashMap<String, String>) -> Result<Telemetry, String> {
    let quiet = flags.contains_key("quiet");
    let mut tee = TeeSink::default();
    if let Some(path) = flags.get("telemetry") {
        if path.is_empty() {
            return Err("--telemetry requires a file path".into());
        }
        let sink = JsonlSink::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        tee.push(Box::new(sink));
    }
    if !quiet {
        tee.push(Box::new(EpochStderr(StderrSink)));
    }
    if tee.is_empty() {
        Ok(Telemetry::disabled())
    } else {
        Ok(Telemetry::with_sink(Box::new(tee)))
    }
}

/// Arms the timeline tracer when `--trace PATH` is present; returns the
/// path the Chrome trace should be written to after the run.
fn start_trace_from_flags(flags: &HashMap<String, String>) -> Result<Option<String>, String> {
    let Some(path) = flags.get("trace") else {
        return Ok(None);
    };
    if path.is_empty() {
        return Err("--trace requires a file path".into());
    }
    dropback::telemetry::trace::start_tracing();
    Ok(Some(path.clone()))
}

/// Stops tracing and writes the collected events as Chrome trace-event
/// JSON (load in Perfetto / `chrome://tracing`, or feed to
/// `dropback-trace` for a hotspot report).
fn finish_trace(path: &str, quiet: bool) -> Result<(), String> {
    use dropback::telemetry::trace;
    trace::stop_tracing();
    let records = trace::take_trace();
    let file =
        std::fs::File::create(path).map_err(|e| format!("cannot create trace {path}: {e}"))?;
    let mut out = std::io::BufWriter::new(file);
    trace::write_chrome_trace(&mut out, &records)
        .map_err(|e| format!("cannot write trace {path}: {e}"))?;
    if !quiet {
        eprintln!(
            "wrote {} trace events to {path} (analyze with dropback-trace, or load in Perfetto)",
            records.len()
        );
    }
    Ok(())
}

fn build_model(name: &str, seed: u64) -> Result<Network, String> {
    match name {
        "mnist-100-100" => Ok(models::mnist_100_100(seed)),
        "lenet-300-100" => Ok(models::lenet_300_100(seed)),
        "vgg-s-nano" => Ok(models::vgg_s_nano(seed)),
        "densenet-nano" => Ok(models::densenet_nano(seed)),
        "wrn-nano" => Ok(models::wrn_nano(seed, 1)),
        other => Err(format!(
            "unknown model {other:?}; available: mnist-100-100, lenet-300-100, \
             vgg-s-nano, densenet-nano, wrn-nano"
        )),
    }
}

fn load_data(
    flags: &HashMap<String, String>,
    model: &str,
    seed: u64,
) -> Result<(Dataset, Dataset), String> {
    let n_train = get(flags, "train", 4000usize)?;
    let n_test = get(flags, "test", 1000usize)?;
    if let Some(dir) = flags.get("data") {
        if dir != "synthetic" {
            match dropback::data::load_mnist_idx(dir) {
                Ok(pair) => return Ok(pair),
                Err(e) => eprintln!("could not load {dir}: {e}; using synthetic data"),
            }
        }
    }
    Ok(if model.contains("mnist") || model.contains("lenet") {
        synthetic_mnist(n_train, n_test, seed)
    } else {
        let hw = dropback::nn::models::CIFAR_NANO_HW;
        synthetic_cifar(n_train, n_test, hw, hw, seed)
    })
}

/// Builds the optional [`CheckpointStore`] from `--checkpoint-dir`,
/// `--checkpoint-every`, and `--resume`. `--resume` without a directory
/// is an error — there is nothing to resume from.
fn checkpoint_store_from_flags(
    flags: &HashMap<String, String>,
) -> Result<Option<CheckpointStore>, CliError> {
    let resume = flags.contains_key("resume");
    let Some(dir) = flags.get("checkpoint-dir") else {
        if resume {
            return Err("--resume requires --checkpoint-dir DIR".into());
        }
        return Ok(None);
    };
    if dir.is_empty() {
        return Err("--checkpoint-dir requires a directory path".into());
    }
    let every = get(flags, "checkpoint-every", 1usize)?;
    if every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    let store = CheckpointStore::open(dir)
        .map_err(|e| CliError::from(format!("cannot open checkpoint dir {dir}: {e}")))?
        .every(every)
        .resume(resume);
    Ok(Some(store))
}

/// Runs the trainer, through the crash-safe path when a snapshot store is
/// configured. Corrupt snapshots skipped during resume are surfaced as
/// stderr warnings; an incompatible snapshot aborts with exit code 2.
fn run_with_store(
    trainer: &Trainer,
    net: &mut Network,
    opt: &mut dyn Optimizer,
    data: (&Dataset, &Dataset),
    store: Option<&mut CheckpointStore>,
    telemetry: &mut Telemetry,
) -> Result<TrainReport, CliError> {
    let (train, test) = data;
    match store {
        Some(st) => {
            let report = trainer
                .run_resumable(net, opt, train, test, st, telemetry)
                .map_err(resume_error)?;
            for (path, err) in st.take_skipped() {
                eprintln!(
                    "warning: skipped corrupt snapshot {}: {err}",
                    path.display()
                );
            }
            Ok(report)
        }
        None => Ok(trainer.run_mut(net, opt, train, test, &mut NoProbe, telemetry)),
    }
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let seed: u64 = get(flags, "seed", 42)?;
    let model_name = flags
        .get("model")
        .cloned()
        .unwrap_or_else(|| "mnist-100-100".into());
    let epochs = get(flags, "epochs", 8usize)?;
    let batch = get(flags, "batch", 64usize)?;
    let lr = get(flags, "lr", 0.2f32)?;
    let budget = get(flags, "budget", 0usize)?;
    let quiet = flags.contains_key("quiet");
    // Worker-pool override; results are bit-identical at any value (see
    // docs/PERFORMANCE.md), so this is purely a throughput knob.
    if let Some(threads) = flags.get("threads") {
        let n: usize = threads
            .parse()
            .map_err(|_| format!("--threads expects a positive integer, got {threads:?}"))?;
        dropback_tensor::pool::set_threads(n.max(1));
    }
    let mut telemetry = telemetry_from_flags(flags)?;
    let trace_path = start_trace_from_flags(flags)?;
    let mut net = build_model(&model_name, seed)?;
    let params = net.num_params();
    let (train, test) = load_data(flags, &model_name, seed)?;
    if !quiet {
        eprintln!(
            "training {model_name} ({params} params) for {epochs} epochs, batch {batch}, lr {lr}"
        );
    }
    let cfg = TrainConfig::new(epochs, batch).lr(LrSchedule::StepDecay {
        initial: lr,
        factor: 0.5,
        every: (epochs / 5).max(1),
    });
    let mut store = checkpoint_store_from_flags(flags)?;
    let trainer = Trainer::new(cfg);
    // Use the sparse rule when a budget is set so a checkpoint can be cut.
    if budget > 0 && budget < params {
        let freeze = get(flags, "freeze", epochs / 2)?;
        let mut opt = SparseDropBack::new(budget).freeze_after(freeze.max(1));
        let report = run_with_store(
            &trainer,
            &mut net,
            &mut opt,
            (&train, &test),
            store.as_mut(),
            &mut telemetry,
        )?;
        let result = Event::new("result")
            .with("model", model_name.as_str())
            .with("optimizer", "dropback-sparse")
            .with("params", params)
            .with("stored_weights", opt.storage_entries())
            .with("compression", params as f32 / budget as f32)
            .with(
                "val_acc",
                report.history.last().map(|e| e.val_acc).unwrap_or(0.0),
            );
        println!("{}", result.to_json().render());
        if let Some(path) = flags.get("checkpoint") {
            let ckpt = Checkpoint::from_sparse(&net, &opt);
            let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
            ckpt.write_to(file).map_err(|e| e.to_string())?;
            eprintln!("wrote {path} ({} bytes)", ckpt.size_bytes());
        }
    } else {
        if flags.contains_key("checkpoint") {
            return Err("--checkpoint requires a --budget below the model size".into());
        }
        let mut opt = Sgd::new();
        let report = run_with_store(
            &trainer,
            &mut net,
            &mut opt,
            (&train, &test),
            store.as_mut(),
            &mut telemetry,
        )?;
        if !quiet {
            eprint!("{}", report.to_table());
        }
        println!("{}", report.to_json().render());
    }
    if let Some(path) = &trace_path {
        finish_trace(path, quiet)?;
    }
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let seed: u64 = get(flags, "seed", 42)?;
    let model_name = flags
        .get("model")
        .cloned()
        .unwrap_or_else(|| "mnist-100-100".into());
    let path = flags
        .get("checkpoint")
        .ok_or("eval requires --checkpoint PATH")?;
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    let ckpt = Checkpoint::read_from(file).map_err(|e| e.to_string())?;
    let mut net = build_model(&model_name, ckpt.seed())?;
    ckpt.apply(&mut net).map_err(|e| e.to_string())?;
    let (_, test) = load_data(flags, &model_name, seed)?;
    let val_acc = net.accuracy(&test, 256);
    eprintln!(
        "{model_name} from {path}: {} stored weights, val acc {val_acc:.4}",
        ckpt.len()
    );
    let result = Event::new("result")
        .with("model", model_name.as_str())
        .with("checkpoint", path.as_str())
        .with("stored_weights", ckpt.len())
        .with("val_acc", val_acc);
    println!("{}", result.to_json().render());
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = get(flags, "seed", 42)?;
    let model_name = flags
        .get("model")
        .cloned()
        .unwrap_or_else(|| "mnist-100-100".into());
    let net = build_model(&model_name, seed)?;
    println!("{}: {} parameters", net.name(), net.num_params());
    for r in net.param_ranges() {
        println!("  {:<24} {:>8}  (init {:?})", r.name(), r.len(), r.scheme());
    }
    Ok(())
}

fn cmd_energy(flags: &HashMap<String, String>) -> Result<(), String> {
    let params: u64 = get(flags, "params", 266_610u64)?;
    let budget: u64 = get(flags, "budget", 20_000u64)?;
    let model = EnergyModel::paper_45nm();
    let base = TrainingTraffic::baseline(params);
    let db = TrainingTraffic::dropback(params, budget);
    println!("45nm weight-memory energy for {params} params at budget {budget}:");
    println!(
        "  dense SGD : {:>10.2} µJ/step",
        base.step().energy_pj(&model) / 1e6
    );
    println!(
        "  DropBack  : {:>10.2} µJ/step  ({:.1}x less)",
        db.step().energy_pj(&model) / 1e6,
        db.advantage_over(&base, &model)
    );
    let sram: u64 = get(flags, "sram", 256 * 1024u64)?;
    let acc = dropback::energy::Accelerator {
        sram_bytes: sram,
        word_bytes: 4,
        model,
        regen_unit: true,
    };
    println!(
        "  with {} KiB weight SRAM: tracked set {} on-chip; max trainable model at this\n\
         compression: {} weights",
        sram / 1024,
        if acc.fits_on_chip(budget) {
            "fits"
        } else {
            "spills"
        },
        acc.max_trainable_weights(params as f64 / budget as f64)
    );
    Ok(())
}

fn usage() -> String {
    "usage: dropback-cli <train|eval|info|energy> [--flag value ...]\n\
     train : --model M --epochs N --batch B --lr X --budget K --freeze E \
             --checkpoint PATH --checkpoint-dir DIR --checkpoint-every N --resume \
             --data synthetic|DIR --train N --test N --seed S \
             --telemetry PATH.jsonl --trace PATH.json --quiet\n\
     eval  : --model M --checkpoint PATH [--data ...]\n\
     info  : --model M\n\
     energy: --params N --budget K [--sram BYTES]\n\
     crash safety: --checkpoint-dir snapshots full training state each \
     --checkpoint-every epochs (atomic writes, CRC-validated); --resume \
     continues bit-identically from the newest readable snapshot (exit 2 \
     if the snapshot is from a different seed/model/optimizer)\n\
     profiling: --trace PATH.json records a Chrome trace-event timeline \
     (kernel spans + Fig. 5 counters); inspect with dropback-trace or \
     Perfetto\n\
     stdout carries one JSON result line (train/eval); progress goes to stderr"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result: Result<(), CliError> = if known_flags(cmd).is_empty() {
        Err(usage().into())
    } else {
        match parse_flags(cmd, &args[1..]) {
            Err(e) => Err(e.into()),
            Ok(flags) => match cmd.as_str() {
                "train" => cmd_train(&flags),
                "eval" => cmd_eval(&flags),
                "info" => cmd_info(&flags).map_err(CliError::from),
                "energy" => cmd_energy(&flags).map_err(CliError::from),
                _ => unreachable!("known_flags gates the command set"),
            },
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}
