//! The epoch-loop training harness.

use crate::config::TrainConfig;
use crate::report::{EpochStats, TrainReport};
use dropback_data::{Batcher, Dataset};
use dropback_nn::{Network, ParamStore};
use dropback_optim::Optimizer;

/// A per-step observation hook: receives the global iteration index and the
/// parameter store *after* the optimizer step. Used by the analysis
/// experiments (diffusion tracking, churn measurement, PCA snapshots).
pub trait StepProbe {
    /// Called after every optimizer step.
    fn after_step(&mut self, iteration: u64, ps: &ParamStore);

    /// Called after each epoch's validation with `(epoch, val_acc)`.
    fn after_epoch(&mut self, _epoch: usize, _val_acc: f32) {}
}

/// A no-op probe for runs that need no instrumentation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl StepProbe for NoProbe {
    fn after_step(&mut self, _iteration: u64, _ps: &ParamStore) {}
}

/// Drives a [`Network`] + [`Optimizer`] pair over a dataset according to a
/// [`TrainConfig`], producing a [`TrainReport`].
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Runs training to completion (epoch budget or early stop).
    pub fn run(
        &self,
        net: Network,
        optimizer: impl Optimizer,
        train: &Dataset,
        val: &Dataset,
    ) -> TrainReport {
        self.run_probed(net, optimizer, train, val, &mut NoProbe)
    }

    /// Runs training with a [`StepProbe`] observing every step.
    pub fn run_probed(
        &self,
        mut net: Network,
        mut optimizer: impl Optimizer,
        train: &Dataset,
        val: &Dataset,
        probe: &mut dyn StepProbe,
    ) -> TrainReport {
        let cfg = &self.config;
        let batcher = Batcher::new(cfg.batch_size, cfg.shuffle_seed);
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut best_epoch = 0usize;
        let mut best_val = f32::NEG_INFINITY;
        let mut since_best = 0usize;
        let mut iteration = 0u64;
        for epoch in 0..cfg.epochs {
            let lr = cfg.schedule.at(epoch);
            let kl_scale = cfg.kl.map(|a| a.at(epoch)).unwrap_or(0.0);
            let mut loss_sum = 0.0f64;
            let mut acc_sum = 0.0f64;
            let mut kl_sum = 0.0f64;
            let mut batches = 0usize;
            for (x, labels) in batcher.epoch(train, epoch as u64) {
                let (loss, acc) = net.loss_backward(&x, &labels);
                if kl_scale > 0.0 {
                    kl_sum += net.kl_backward(kl_scale) as f64;
                }
                optimizer.step(net.store_mut(), lr);
                probe.after_step(iteration, net.store());
                loss_sum += loss as f64;
                acc_sum += acc as f64;
                batches += 1;
                iteration += 1;
            }
            optimizer.end_epoch(epoch, net.store_mut());
            let val_acc = net.accuracy(val, cfg.eval_batch);
            probe.after_epoch(epoch, val_acc);
            history.push(EpochStats {
                epoch,
                train_loss: (loss_sum / batches.max(1) as f64) as f32,
                train_acc: (acc_sum / batches.max(1) as f64) as f32,
                val_acc,
                lr,
                kl: (kl_sum / batches.max(1) as f64) as f32,
            });
            if val_acc > best_val {
                best_val = val_acc;
                best_epoch = epoch;
                since_best = 0;
            } else {
                since_best += 1;
                if let Some(p) = cfg.patience {
                    if since_best >= p {
                        break;
                    }
                }
            }
        }
        let stored = optimizer.stored_weights(net.store());
        TrainReport {
            model: net.name().to_string(),
            optimizer: optimizer.name().to_string(),
            history,
            best_epoch,
            best_val_acc: best_val,
            params: net.num_params(),
            stored_weights: stored,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_data::synthetic_mnist;
    use dropback_nn::models;
    use dropback_optim::{DropBack, LrSchedule, Sgd};

    fn quick_config(epochs: usize) -> TrainConfig {
        TrainConfig::new(epochs, 32)
            .lr(LrSchedule::Constant(0.1))
            .patience(None)
    }

    #[test]
    fn sgd_learns_synthetic_mnist() {
        let (train, val) = synthetic_mnist(600, 150, 42);
        let net = models::mnist_100_100(42);
        let report = Trainer::new(quick_config(3)).run(net, Sgd::new(), &train, &val);
        assert_eq!(report.history.len(), 3);
        assert!(
            report.best_val_acc > 0.5,
            "val acc only {}",
            report.best_val_acc
        );
        assert!((report.compression() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dropback_learns_with_small_budget() {
        let (train, val) = synthetic_mnist(600, 150, 43);
        let net = models::mnist_100_100(43);
        let report =
            Trainer::new(quick_config(3)).run(net, DropBack::new(20_000), &train, &val);
        assert!(
            report.best_val_acc > 0.5,
            "val acc only {}",
            report.best_val_acc
        );
        assert!((report.compression() - 89_610.0 / 20_000.0).abs() < 1e-3);
    }

    #[test]
    fn early_stopping_truncates() {
        let (train, val) = synthetic_mnist(200, 50, 44);
        let net = models::mnist_100_100(44);
        // lr=0: nothing improves, so patience=2 stops after epoch 2.
        let cfg = TrainConfig::new(50, 32)
            .lr(LrSchedule::Constant(0.0))
            .patience(Some(2));
        let report = Trainer::new(cfg).run(net, Sgd::new(), &train, &val);
        assert!(report.history.len() <= 4, "{} epochs ran", report.history.len());
    }

    #[test]
    fn probe_sees_every_step() {
        struct Counter(u64);
        impl StepProbe for Counter {
            fn after_step(&mut self, it: u64, _ps: &ParamStore) {
                assert_eq!(it, self.0);
                self.0 += 1;
            }
        }
        let (train, val) = synthetic_mnist(96, 32, 45);
        let net = models::mnist_100_100(45);
        let mut probe = Counter(0);
        let cfg = quick_config(2);
        let _ = Trainer::new(cfg).run_probed(net, Sgd::new(), &train, &val, &mut probe);
        // 96/32 = 3 batches per epoch, 2 epochs.
        assert_eq!(probe.0, 6);
    }
}
