//! The epoch-loop training harness.

use crate::checkpoint::CheckpointError;
use crate::ckpt_store::CheckpointStore;
use crate::config::TrainConfig;
use crate::report::{EpochStats, TrainReport};
use crate::train_state::{TrainProgress, TrainState};
use dropback_data::{Batcher, Dataset};
use dropback_metrics::DiffusionTracker;
use dropback_nn::{Network, ParamStore};
use dropback_optim::Optimizer;
use dropback_telemetry::{take_phase_totals, trace, Event, Span, Stopwatch, Telemetry};

/// A per-step observation hook: receives the global iteration index and the
/// parameter store *after* the optimizer step. Used by the analysis
/// experiments (diffusion tracking, churn measurement, PCA snapshots).
pub trait StepProbe {
    /// Called after every optimizer step.
    fn after_step(&mut self, iteration: u64, ps: &ParamStore);

    /// Called after each epoch's validation with `(epoch, val_acc)`.
    fn after_epoch(&mut self, _epoch: usize, _val_acc: f32) {}
}

/// A no-op probe for runs that need no instrumentation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl StepProbe for NoProbe {
    fn after_step(&mut self, _iteration: u64, _ps: &ParamStore) {}
}

/// Everything one invocation of the epoch loop needs beyond the model,
/// optimizer, and data: the observation hook, the progress to resume
/// from, and (optionally) where to write snapshots.
struct LoopPlan<'a> {
    probe: &'a mut dyn StepProbe,
    carry: TrainProgress,
    store: Option<&'a mut CheckpointStore>,
}

/// Drives a [`Network`] + [`Optimizer`] pair over a dataset according to a
/// [`TrainConfig`], producing a [`TrainReport`].
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Runs training to completion (epoch budget or early stop).
    pub fn run(
        &self,
        net: Network,
        optimizer: impl Optimizer,
        train: &Dataset,
        val: &Dataset,
    ) -> TrainReport {
        self.run_probed(net, optimizer, train, val, &mut NoProbe)
    }

    /// Runs training with a [`StepProbe`] observing every step.
    pub fn run_probed(
        &self,
        net: Network,
        optimizer: impl Optimizer,
        train: &Dataset,
        val: &Dataset,
        probe: &mut dyn StepProbe,
    ) -> TrainReport {
        self.run_telemetry(
            net,
            optimizer,
            train,
            val,
            probe,
            &mut Telemetry::disabled(),
        )
    }

    /// Runs training with a [`StepProbe`] and a [`Telemetry`] bundle.
    ///
    /// When the bundle is active the trainer emits one `"step"` event per
    /// optimizer step (`iteration`, `epoch`, `loss`, `acc`, `lr`), one
    /// `"epoch"` event per epoch (the [`EpochStats`] fields, every
    /// [`Optimizer::metrics`] entry such as `tracked_k` and `churn`, and a
    /// `<phase>_ns` wall-time sum for each recorded span phase — forward,
    /// backward, topk-rank, regen, optimizer-step, eval), and a final
    /// `"run"` summary event. A disabled bundle costs nothing measurable.
    pub fn run_telemetry(
        &self,
        mut net: Network,
        mut optimizer: impl Optimizer,
        train: &Dataset,
        val: &Dataset,
        probe: &mut dyn StepProbe,
        telemetry: &mut Telemetry,
    ) -> TrainReport {
        self.run_mut(&mut net, &mut optimizer, train, val, probe, telemetry)
    }

    /// Like [`Trainer::run_telemetry`], but borrows the network and
    /// optimizer instead of consuming them, so callers can inspect both
    /// after training (e.g. to build a [`crate::Checkpoint`] from the
    /// optimizer's tracked set).
    pub fn run_mut(
        &self,
        net: &mut Network,
        optimizer: &mut dyn Optimizer,
        train: &Dataset,
        val: &Dataset,
        probe: &mut dyn StepProbe,
        telemetry: &mut Telemetry,
    ) -> TrainReport {
        self.run_loop(
            net,
            optimizer,
            train,
            val,
            telemetry,
            LoopPlan {
                probe,
                carry: TrainProgress::fresh(),
                store: None,
            },
        )
    }

    /// Crash-safe training: snapshots the full training state into
    /// `store` at the cadence the store was configured with, and — when
    /// the store has resume enabled and holds a readable snapshot —
    /// restores it and continues from the epoch after it was taken.
    ///
    /// The headline guarantee (pinned by `tests/resume.rs`): training
    /// `n` epochs straight and training `m < n` epochs, "crashing", and
    /// resuming to `n` produce **bit-identical** [`TrainReport`]s and
    /// parameter stores. This holds for models whose mutable state lives
    /// entirely in the parameter store; see `docs/CHECKPOINTS.md`.
    ///
    /// Snapshot *write* failures mid-run are non-fatal: the run
    /// continues and the failure is recorded as `checkpoint.write_failed`
    /// telemetry. Corrupt snapshots on *load* are skipped (newest-first
    /// fallback inside [`CheckpointStore::load_latest`]).
    ///
    /// # Errors
    ///
    /// Fails if the snapshot directory is unreadable, or if the latest
    /// readable snapshot is incompatible with this run (different init
    /// seed, shuffle seed, model, or optimizer configuration).
    pub fn run_resumable(
        &self,
        net: &mut Network,
        optimizer: &mut dyn Optimizer,
        train: &Dataset,
        val: &Dataset,
        store: &mut CheckpointStore,
        telemetry: &mut Telemetry,
    ) -> Result<TrainReport, CheckpointError> {
        let carry = if store.resume_enabled() {
            match store.load_latest(telemetry)? {
                Some(state) => state.restore_into(net, optimizer, self.config.shuffle_seed)?,
                None => TrainProgress::fresh(),
            }
        } else {
            TrainProgress::fresh()
        };
        Ok(self.run_loop(
            net,
            optimizer,
            train,
            val,
            telemetry,
            LoopPlan {
                probe: &mut NoProbe,
                carry,
                store: Some(store),
            },
        ))
    }

    fn run_loop(
        &self,
        net: &mut Network,
        optimizer: &mut dyn Optimizer,
        train: &Dataset,
        val: &Dataset,
        telemetry: &mut Telemetry,
        plan: LoopPlan<'_>,
    ) -> TrainReport {
        let cfg = &self.config;
        let LoopPlan {
            probe,
            carry,
            mut store,
        } = plan;
        let active = telemetry.is_active();
        // When timeline tracing is on (`trace::start_tracing`, wired from
        // `--trace` / `DROPBACK_TRACE`), each epoch also emits the paper's
        // Fig. 5 observables as trace counters: weight-diffusion ℓ2 from
        // init, tracked-set churn, and the tensor-allocation high-water
        // mark. The diffusion anchor is only computed when tracing —
        // `regen_initial` is a full parameter materialization.
        let tracing = trace::is_tracing();
        let diffusion = tracing.then(|| DiffusionTracker::new(&net.store().regen_initial()));
        let (step_counter, step_hist, val_gauge) = if active {
            let c = telemetry.collector();
            (
                Some(c.counter("train.steps")),
                Some(c.histogram("train.step_ns")),
                Some(c.gauge("train.val_acc")),
            )
        } else {
            (None, None, None)
        };
        if active {
            // Old totals (e.g. from a previous run in this process) must not
            // leak into the first epoch's phase sums.
            let _ = take_phase_totals();
        }
        let batcher = Batcher::new(cfg.batch_size, cfg.shuffle_seed);
        let TrainProgress {
            next_epoch: start_epoch,
            mut iteration,
            mut best_epoch,
            mut since_best,
            mut best_val,
            mut history,
        } = carry;
        history.reserve(cfg.epochs.saturating_sub(history.len()));
        for epoch in start_epoch..cfg.epochs {
            // A resumed snapshot may carry already-exhausted patience (it
            // was taken at the exact epoch the straight run stopped on);
            // running further epochs would diverge from that run.
            if !history.is_empty() {
                if let Some(p) = cfg.patience {
                    if since_best >= p {
                        break;
                    }
                }
            }
            let lr = cfg.schedule.at(epoch);
            let kl_scale = cfg.kl.map(|a| a.at(epoch)).unwrap_or(0.0);
            let mut loss_sum = 0.0f64;
            let mut acc_sum = 0.0f64;
            let mut kl_sum = 0.0f64;
            let mut batches = 0usize;
            for (x, labels) in batcher.epoch(train, epoch as u64) {
                let step_timer = Stopwatch::started_if(active);
                // One umbrella span per optimizer step: the trace analyzer
                // derives step-time percentiles from its durations, and in
                // Perfetto the kernel spans nest under it.
                let step_span = Span::enter("train-step");
                let (loss, acc) = net.loss_backward(&x, &labels);
                if kl_scale > 0.0 {
                    kl_sum += net.kl_backward(kl_scale) as f64;
                }
                {
                    let _span = Span::enter("optimizer-step");
                    optimizer.step(net.store_mut(), lr);
                }
                probe.after_step(iteration, net.store());
                drop(step_span);
                if let Some(step_ns) = step_timer.elapsed_ns() {
                    if let Some(h) = &step_hist {
                        h.record(step_ns as f64);
                    }
                    if let Some(c) = &step_counter {
                        c.inc();
                    }
                    telemetry.emit(
                        Event::new("step")
                            .with("iteration", iteration)
                            .with("epoch", epoch)
                            .with("loss", loss)
                            .with("acc", acc)
                            .with("lr", lr),
                    );
                }
                loss_sum += loss as f64;
                acc_sum += acc as f64;
                batches += 1;
                iteration += 1;
            }
            optimizer.end_epoch(epoch, net.store_mut());
            let val_acc = net.accuracy(val, cfg.eval_batch);
            probe.after_epoch(epoch, val_acc);
            if tracing {
                if let Some(d) = &diffusion {
                    let dist = d.distance(net.store().params());
                    trace::record_counter("diffusion.l2_from_init", f64::from(dist));
                }
                for (name, value) in optimizer.metrics() {
                    if name == "churn" {
                        trace::record_counter("tracked.churn", value);
                    }
                }
                trace::record_counter(
                    "tensor.alloc_hwm_bytes",
                    dropback_tensor::alloc::hwm_bytes() as f64,
                );
                trace::record_counter("pool.threads", dropback_tensor::pool::threads() as f64);
            }
            let stats = EpochStats {
                epoch,
                train_loss: (loss_sum / batches.max(1) as f64) as f32,
                train_acc: (acc_sum / batches.max(1) as f64) as f32,
                val_acc,
                lr,
                kl: (kl_sum / batches.max(1) as f64) as f32,
            };
            if active {
                if let Some(g) = &val_gauge {
                    g.set(val_acc as f64);
                }
                telemetry
                    .collector()
                    .gauge("tensor.alloc_hwm_bytes")
                    .set(dropback_tensor::alloc::hwm_bytes() as f64);
                let mut ev = Event::new("epoch")
                    .with("epoch", stats.epoch)
                    .with("train_loss", stats.train_loss)
                    .with("train_acc", stats.train_acc)
                    .with("val_acc", stats.val_acc)
                    .with("lr", stats.lr)
                    .with("kl", stats.kl);
                for (name, value) in optimizer.metrics() {
                    ev.push(name, value);
                }
                for (phase, stat) in take_phase_totals() {
                    ev.push(&format!("{}_ns", phase.replace('-', "_")), stat.total_ns);
                }
                telemetry.emit(ev);
            }
            history.push(stats);
            let mut stop = false;
            if val_acc > best_val {
                best_val = val_acc;
                best_epoch = epoch;
                since_best = 0;
            } else {
                since_best += 1;
                if let Some(p) = cfg.patience {
                    if since_best >= p {
                        stop = true;
                    }
                }
            }
            if let Some(st) = store.as_deref_mut() {
                if st.due(epoch, cfg.epochs) || stop {
                    let progress = TrainProgress {
                        next_epoch: epoch + 1,
                        iteration,
                        best_epoch,
                        since_best,
                        best_val,
                        history: history.clone(),
                    };
                    let snap = TrainState::capture(net, &*optimizer, cfg.shuffle_seed, &progress);
                    // A failed snapshot write must not kill the run; the
                    // store records it as `checkpoint.write_failed`.
                    let _ = st.save(&snap, telemetry);
                }
            }
            if stop {
                break;
            }
        }
        let stored = optimizer.stored_weights(net.store());
        let report = TrainReport {
            model: net.name().to_string(),
            optimizer: optimizer.name().to_string(),
            history,
            best_epoch,
            best_val_acc: best_val,
            params: net.num_params(),
            stored_weights: stored,
        };
        if active {
            telemetry.emit(
                Event::new("run")
                    .with("model", report.model.as_str())
                    .with("optimizer", report.optimizer.as_str())
                    .with("epochs", report.history.len())
                    .with("best_epoch", report.best_epoch)
                    .with("best_val_acc", report.best_val_acc)
                    .with("params", report.params)
                    .with("stored_weights", report.stored_weights)
                    .with("compression", report.compression()),
            );
            telemetry.flush();
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_data::synthetic_mnist;
    use dropback_nn::models;
    use dropback_optim::{DropBack, LrSchedule, Sgd};
    use dropback_telemetry::{Json, JsonlSink};

    fn quick_config(epochs: usize) -> TrainConfig {
        TrainConfig::new(epochs, 32)
            .lr(LrSchedule::Constant(0.1))
            .patience(None)
    }

    #[test]
    fn sgd_learns_synthetic_mnist() {
        let (train, val) = synthetic_mnist(600, 150, 42);
        let net = models::mnist_100_100(42);
        let report = Trainer::new(quick_config(3)).run(net, Sgd::new(), &train, &val);
        assert_eq!(report.history.len(), 3);
        assert!(
            report.best_val_acc > 0.5,
            "val acc only {}",
            report.best_val_acc
        );
        assert!((report.compression() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dropback_learns_with_small_budget() {
        let (train, val) = synthetic_mnist(600, 150, 43);
        let net = models::mnist_100_100(43);
        let report = Trainer::new(quick_config(3)).run(net, DropBack::new(20_000), &train, &val);
        assert!(
            report.best_val_acc > 0.5,
            "val acc only {}",
            report.best_val_acc
        );
        assert!((report.compression() - 89_610.0 / 20_000.0).abs() < 1e-3);
    }

    #[test]
    fn early_stopping_truncates() {
        let (train, val) = synthetic_mnist(200, 50, 44);
        let net = models::mnist_100_100(44);
        // lr=0: nothing improves, so patience=2 stops after epoch 2.
        let cfg = TrainConfig::new(50, 32)
            .lr(LrSchedule::Constant(0.0))
            .patience(Some(2));
        let report = Trainer::new(cfg).run(net, Sgd::new(), &train, &val);
        assert!(
            report.history.len() <= 4,
            "{} epochs ran",
            report.history.len()
        );
    }

    #[test]
    fn probe_sees_every_step() {
        struct Counter(u64);
        impl StepProbe for Counter {
            fn after_step(&mut self, it: u64, _ps: &ParamStore) {
                assert_eq!(it, self.0);
                self.0 += 1;
            }
        }
        let (train, val) = synthetic_mnist(96, 32, 45);
        let net = models::mnist_100_100(45);
        let mut probe = Counter(0);
        let cfg = quick_config(2);
        let _ = Trainer::new(cfg).run_probed(net, Sgd::new(), &train, &val, &mut probe);
        // 96/32 = 3 batches per epoch, 2 epochs.
        assert_eq!(probe.0, 6);
    }

    /// A probe that relies on the default no-op `after_epoch` body while
    /// still observing steps — the default implementation must be callable
    /// and harmless.
    struct StepsOnly(u64);
    impl StepProbe for StepsOnly {
        fn after_step(&mut self, _it: u64, _ps: &ParamStore) {
            self.0 += 1;
        }
    }

    #[test]
    fn default_after_epoch_is_a_no_op() {
        let (train, val) = synthetic_mnist(64, 32, 46);
        let net = models::mnist_100_100(46);
        let mut probe = StepsOnly(0);
        let report =
            Trainer::new(quick_config(2)).run_probed(net, Sgd::new(), &train, &val, &mut probe);
        assert_eq!(probe.0, 4, "2 batches x 2 epochs");
        assert_eq!(report.history.len(), 2);
        // Exercise the default body directly as well.
        probe.after_epoch(0, 0.5);
        assert_eq!(probe.0, 4, "after_epoch must not affect probe state");
    }

    #[test]
    fn early_stop_still_fires_after_epoch_for_every_ran_epoch() {
        struct EpochLog(Vec<(usize, f32)>);
        impl StepProbe for EpochLog {
            fn after_step(&mut self, _it: u64, _ps: &ParamStore) {}
            fn after_epoch(&mut self, epoch: usize, val_acc: f32) {
                self.0.push((epoch, val_acc));
            }
        }
        let (train, val) = synthetic_mnist(200, 50, 47);
        let net = models::mnist_100_100(47);
        let cfg = TrainConfig::new(50, 32)
            .lr(LrSchedule::Constant(0.0))
            .patience(Some(2));
        let mut probe = EpochLog(Vec::new());
        let report = Trainer::new(cfg).run_probed(net, Sgd::new(), &train, &val, &mut probe);
        // The probe saw exactly the epochs that ran, in order, even though
        // early stopping truncated the budget.
        assert_eq!(probe.0.len(), report.history.len());
        for (i, &(epoch, val_acc)) in probe.0.iter().enumerate() {
            assert_eq!(epoch, i);
            assert_eq!(val_acc, report.history[i].val_acc);
        }
        assert!(probe.0.len() < 50);
    }

    #[test]
    fn telemetry_run_emits_epoch_records_with_dropback_metrics() {
        let (train, val) = synthetic_mnist(96, 32, 48);
        let net = models::mnist_100_100(48);
        // A clonable writer so we can read the JSONL back after the run
        // consumes the sink.
        use std::io::Write;
        #[derive(Clone, Default)]
        struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        let mut tel = Telemetry::with_sink(Box::new(JsonlSink::new(buf.clone())));
        let report = Trainer::new(quick_config(2)).run_telemetry(
            net,
            DropBack::new(20_000),
            &train,
            &val,
            &mut NoProbe,
            &mut tel,
        );
        dropback_telemetry::set_enabled(false);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        let epochs: Vec<&Json> = lines
            .iter()
            .filter(|j| j.get("event").and_then(Json::as_str) == Some("epoch"))
            .collect();
        assert_eq!(epochs.len(), report.history.len());
        for (i, e) in epochs.iter().enumerate() {
            assert_eq!(e.get("epoch").unwrap().as_u64(), Some(i as u64));
            assert!(e.get("train_loss").unwrap().as_f64().is_some());
            assert!(e.get("val_acc").unwrap().as_f64().is_some());
            assert_eq!(e.get("tracked_k").unwrap().as_u64(), Some(20_000));
            assert!(e.get("churn").unwrap().as_f64().is_some());
            // Per-phase wall-time sums from the span registry.
            for phase in ["forward_ns", "backward_ns", "optimizer_step_ns", "eval_ns"] {
                assert!(
                    e.get(phase).and_then(Json::as_u64).unwrap_or(0) > 0,
                    "missing phase sum {phase} in epoch record {i}"
                );
            }
        }
        let steps: usize = lines
            .iter()
            .filter(|j| j.get("event").and_then(Json::as_str) == Some("step"))
            .count();
        assert_eq!(steps, 6, "3 batches x 2 epochs");
        let run = lines
            .iter()
            .find(|j| j.get("event").and_then(Json::as_str) == Some("run"))
            .expect("run summary event");
        assert_eq!(run.get("stored_weights").unwrap().as_u64(), Some(20_000));
    }
}
