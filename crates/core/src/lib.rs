//! # DropBack: continuous pruning during training
//!
//! A from-scratch Rust reproduction of *"Full Deep Neural Network Training
//! On A Pruned Weight Budget"* (Golub, Lemieux, Lis — MLSys 2019).
//!
//! DropBack constrains training to update only the `k` weights with the
//! highest accumulated gradients; every other weight is "forgotten" and its
//! initialization value is regenerated from a xorshift PRNG at each access,
//! so only `k` weights are ever stored — during *and* after training.
//!
//! This crate is the façade: it re-exports the substrate crates and adds
//! the experiment harness (config → training loop → report) that the
//! `repro_*` binaries in `dropback-bench` use to regenerate every table and
//! figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use dropback::prelude::*;
//!
//! // A tiny synthetic-MNIST run with a 5.33x weight budget.
//! let (train, test) = synthetic_mnist(512, 128, 42);
//! let net = models::mnist_100_100(42);
//! let config = TrainConfig::new(2, 32).lr(LrSchedule::Constant(0.1));
//! let optimizer = DropBack::new(16_000);
//! let report = Trainer::new(config).run(net, optimizer, &train, &test);
//! assert!(report.best_val_acc > 0.3); // learns despite 5x fewer weights
//! ```
//!
//! ## Crate map
//!
//! | need | go to |
//! |---|---|
//! | tensors, GEMM, conv kernels | [`tensor`] |
//! | xorshift + index-addressable regeneration | [`prng`] |
//! | datasets (synthetic MNIST/CIFAR, IDX loader) | [`data`] |
//! | layers, models, parameter store | [`nn`] |
//! | DropBack + baseline optimizers | [`optim`] |
//! | diffusion / KDE / churn / PCA analysis | [`metrics`] |
//! | 45 nm energy + traffic model | [`energy`] |
//! | counters, spans, event sinks, JSONL | [`telemetry`] |
//!
//! Observability: [`Trainer::run_telemetry`] streams structured `step` /
//! `epoch` / `run` events into any [`telemetry::EventSink`]; see
//! `docs/OBSERVABILITY.md` for the full metric and span taxonomy.

#![deny(missing_docs)]

pub use dropback_data as data;
pub use dropback_energy as energy;
pub use dropback_metrics as metrics;
pub use dropback_nn as nn;
pub use dropback_optim as optim;
pub use dropback_prng as prng;
pub use dropback_telemetry as telemetry;
pub use dropback_tensor as tensor;

pub mod chaos;
mod checkpoint;
mod ckpt_store;
mod config;
mod crc;
mod report;
mod sparse_infer;
pub mod trace_analysis;
mod train_state;
mod trainer;

pub use chaos::{FaultAction, FaultInjector, FaultMode, FaultPlan, FaultStream};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use ckpt_store::CheckpointStore;
pub use config::TrainConfig;
pub use crc::crc32;
pub use report::{EpochStats, TrainReport};
pub use sparse_infer::{
    stream_mlp_forward, StreamError, StreamStats, StreamingLinear, StreamingModel,
};
pub use trace_analysis::{analyze_chrome_trace, PhaseRow, TraceAnalysis, TraceError};
pub use train_state::{TrainProgress, TrainState};
pub use trainer::{NoProbe, StepProbe, Trainer};

/// Convenient glob-import surface for examples and experiment binaries.
pub mod prelude {
    pub use crate::chaos::{FaultAction, FaultInjector, FaultMode, FaultPlan, FaultStream};
    pub use crate::checkpoint::{Checkpoint, CheckpointError};
    pub use crate::ckpt_store::CheckpointStore;
    pub use crate::config::TrainConfig;
    pub use crate::report::{EpochStats, TrainReport};
    pub use crate::sparse_infer::{stream_mlp_forward, StreamStats, StreamingModel};
    pub use crate::train_state::{TrainProgress, TrainState};
    pub use crate::trainer::{NoProbe, StepProbe, Trainer};
    pub use dropback_data::{synthetic_cifar, synthetic_mnist, Batcher, Dataset};
    pub use dropback_energy::{EnergyModel, TrainingTraffic};
    pub use dropback_metrics::{
        compression_ratio, gaussian_kde, pca_project, Accuracy, DiffusionTracker, TopKChurn,
    };
    pub use dropback_nn::{models, Layer, Mode, Network, ParamStore};
    pub use dropback_optim::{
        DropBack, KlAnneal, LrSchedule, MagnitudePruning, NetworkSlimming, Optimizer, Quantized,
        Quantizer, Sgd, SparseDropBack,
    };
    pub use dropback_telemetry::{
        Event, EventSink, JsonlSink, NullSink, StderrSink, TeeSink, Telemetry, TelemetrySnapshot,
    };
    pub use dropback_tensor::Tensor;
}
