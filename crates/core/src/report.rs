//! Training-run results.

use dropback_telemetry::Json;

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Mean training accuracy over the epoch.
    pub train_acc: f32,
    /// Validation accuracy after the epoch.
    pub val_acc: f32,
    /// Learning rate used this epoch.
    pub lr: f32,
    /// KL regularizer value (variational dropout only; 0 otherwise).
    pub kl: f32,
}

/// The outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Model name.
    pub model: String,
    /// Optimizer name.
    pub optimizer: String,
    /// Per-epoch history, in order.
    pub history: Vec<EpochStats>,
    /// Epoch with the best validation accuracy (paper's "Best Epoch").
    pub best_epoch: usize,
    /// Best validation accuracy reached.
    pub best_val_acc: f32,
    /// Total model parameters.
    pub params: usize,
    /// Weights the training rule actually stores (= params for baselines).
    pub stored_weights: usize,
}

impl TrainReport {
    /// Validation *error* at the best epoch, in percent — the number the
    /// paper's tables report.
    pub fn best_val_error_percent(&self) -> f32 {
        100.0 * (1.0 - self.best_val_acc)
    }

    /// Weight-compression ratio (`params / stored`), the tables' "Weight
    /// Compression" column. Baselines report 1×; the paper writes them
    /// as "0×".
    pub fn compression(&self) -> f32 {
        self.params as f32 / self.stored_weights.max(1) as f32
    }

    /// `(epoch, val_acc)` series for convergence plots (Figures 3 and 4).
    pub fn val_curve(&self) -> Vec<(usize, f32)> {
        self.history.iter().map(|e| (e.epoch, e.val_acc)).collect()
    }

    /// Renders the epoch history as CSV
    /// (`epoch,lr,train_loss,train_acc,val_acc,kl` with a header row) for
    /// downstream plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch,lr,train_loss,train_acc,val_acc,kl\n");
        for e in &self.history {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                e.epoch, e.lr, e.train_loss, e.train_acc, e.val_acc, e.kl
            ));
        }
        out
    }

    /// The report as a JSON object (summary fields plus a `history` array)
    /// — the machine-readable counterpart of [`TrainReport::to_table`].
    /// Render with [`Json::render`]; parse back with [`Json::parse`].
    pub fn to_json(&self) -> Json {
        let history: Vec<Json> = self
            .history
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("epoch".to_string(), e.epoch.into()),
                    ("lr".to_string(), e.lr.into()),
                    ("train_loss".to_string(), e.train_loss.into()),
                    ("train_acc".to_string(), e.train_acc.into()),
                    ("val_acc".to_string(), e.val_acc.into()),
                    ("kl".to_string(), e.kl.into()),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("model".to_string(), self.model.as_str().into()),
            ("optimizer".to_string(), self.optimizer.as_str().into()),
            ("params".to_string(), self.params.into()),
            ("stored_weights".to_string(), self.stored_weights.into()),
            ("compression".to_string(), self.compression().into()),
            ("best_epoch".to_string(), self.best_epoch.into()),
            ("best_val_acc".to_string(), self.best_val_acc.into()),
            (
                "best_val_error_percent".to_string(),
                self.best_val_error_percent().into(),
            ),
            ("history".to_string(), Json::Arr(history)),
        ])
    }

    /// Renders the epoch history as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "model={} optimizer={} params={} stored={} ({}x)\n",
            self.model,
            self.optimizer,
            self.params,
            self.stored_weights,
            self.compression()
        ));
        out.push_str("epoch  lr      loss     train_acc  val_acc\n");
        for e in &self.history {
            out.push_str(&format!(
                "{:>5}  {:<7.4} {:<8.4} {:<9.4}  {:<7.4}\n",
                e.epoch, e.lr, e.train_loss, e.train_acc, e.val_acc
            ));
        }
        out.push_str(&format!(
            "best epoch {} (val acc {:.4}, error {:.2}%)\n",
            self.best_epoch,
            self.best_val_acc,
            self.best_val_error_percent()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> TrainReport {
        TrainReport {
            model: "m".into(),
            optimizer: "o".into(),
            history: vec![
                EpochStats {
                    epoch: 0,
                    train_loss: 1.0,
                    train_acc: 0.5,
                    val_acc: 0.6,
                    lr: 0.4,
                    kl: 0.0,
                },
                EpochStats {
                    epoch: 1,
                    train_loss: 0.5,
                    train_acc: 0.8,
                    val_acc: 0.9,
                    lr: 0.2,
                    kl: 0.0,
                },
            ],
            best_epoch: 1,
            best_val_acc: 0.9,
            params: 1000,
            stored_weights: 100,
        }
    }

    #[test]
    fn error_percent_and_compression() {
        let r = report();
        assert!((r.best_val_error_percent() - 10.0).abs() < 1e-4);
        assert!((r.compression() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn val_curve_extracts_series() {
        assert_eq!(report().val_curve(), vec![(0, 0.6), (1, 0.9)]);
    }

    #[test]
    fn table_render_contains_key_fields() {
        let t = report().to_table();
        assert!(t.contains("best epoch 1"));
        assert!(t.contains("val_acc"));
    }

    #[test]
    fn json_round_trips_through_parser() {
        let r = report();
        let rendered = r.to_json().render();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(parsed.get("model").unwrap().as_str(), Some("m"));
        assert_eq!(parsed.get("params").unwrap().as_u64(), Some(1000));
        assert_eq!(parsed.get("best_epoch").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.get("compression").unwrap().as_f64().unwrap(), 10.0);
        let hist = parsed.get("history").unwrap().as_array().unwrap();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[1].get("epoch").unwrap().as_u64(), Some(1));
        assert_eq!(
            hist[1].get("val_acc").unwrap().as_f64().unwrap() as f32,
            0.9
        );
    }

    #[test]
    fn csv_has_header_and_one_row_per_epoch() {
        let c = report().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("epoch,lr"));
        assert!(lines[1].starts_with("0,0.4,"));
        assert!(lines[2].starts_with("1,0.2,"));
    }
}
