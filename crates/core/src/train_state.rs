//! Resumable training-state snapshots: the `DROPBKv2` format.
//!
//! DropBack's premise makes mid-training checkpoints nearly free: a run is
//! fully described by the init seed plus the tracked entries and their
//! optimizer accumulators. [`TrainState`] captures exactly the state the
//! training loop needs to continue **bit-identically** after a crash:
//!
//! * parameter deltas — every weight whose IEEE-754 bits differ from its
//!   regenerated init value (≤ `k` entries for DropBack rules, all `n`
//!   for dense baselines);
//! * the optimizer's [`OptState`] (tracked map / mask, momentum,
//!   counters) via [`dropback_optim::Optimizer::snapshot_state`];
//! * loop bookkeeping — epoch/iteration counters, shuffle seed,
//!   best-validation/patience state, and the per-epoch history so the
//!   final [`crate::TrainReport`] matches an uninterrupted run byte for
//!   byte.
//!
//! The wire format is defensive: a little-endian payload behind a magic
//! tag, a declared payload length, and a hand-rolled CRC-32 over the
//! payload. Every length field is validated against the bytes actually
//! remaining **before** any allocation, so truncated, bit-flipped, or
//! hostile files produce a clean [`CheckpointError`] — never a panic or
//! an attacker-sized allocation.
//!
//! The guarantee only covers models whose mutable state lives entirely in
//! the [`dropback_nn::ParamStore`] (the paper's MLPs). Layers with
//! private buffers (batch-norm running statistics) resume with those
//! buffers re-initialized; see `docs/CHECKPOINTS.md`.

use crate::checkpoint::CheckpointError;
use crate::crc::crc32;
use crate::report::EpochStats;
use dropback_nn::Network;
use dropback_optim::{OptState, Optimizer, StateField};
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"DROPBKv2";

/// Hard ceiling on a snapshot payload (64 MiB — a dense WRN-nano snapshot
/// is well under 2 MiB). Larger declared lengths are rejected as corrupt
/// before any buffer is sized from them.
const MAX_PAYLOAD: u64 = 64 << 20;

/// Ceiling on embedded string lengths (model / optimizer / field names).
const MAX_NAME: usize = 256;

/// Ceiling on the number of optimizer state fields.
const MAX_FIELDS: usize = 256;

/// Loop bookkeeping that must survive a crash for the resumed run to make
/// every subsequent decision (shuffle order, learning rate, early stop,
/// best epoch) exactly as the uninterrupted run would.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainProgress {
    /// First epoch the resumed loop should execute.
    pub next_epoch: usize,
    /// Global optimizer-step counter.
    pub iteration: u64,
    /// Epoch with the best validation accuracy so far.
    pub best_epoch: usize,
    /// Epochs elapsed since the best (early-stop patience state).
    pub since_best: usize,
    /// Best validation accuracy so far (`-inf` before the first epoch).
    pub best_val: f32,
    /// Per-epoch statistics of the epochs already completed.
    pub history: Vec<EpochStats>,
}

impl TrainProgress {
    /// Progress of a run that has not executed any epochs yet.
    pub fn fresh() -> Self {
        Self {
            next_epoch: 0,
            iteration: 0,
            best_epoch: 0,
            since_best: 0,
            best_val: f32::NEG_INFINITY,
            history: Vec::new(),
        }
    }
}

/// A complete, versioned snapshot of an in-flight training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainState {
    /// Model architecture name (validated on restore).
    pub model: String,
    /// Optimizer name (validated on restore).
    pub optimizer: String,
    /// The network's regeneration seed.
    pub init_seed: u64,
    /// The run's shuffle seed (validated on restore — a different
    /// shuffle order would silently break bit-identity).
    pub shuffle_seed: u64,
    /// Parameter deltas: `(index, value)` for every weight whose bits
    /// differ from `regen(init_seed, index)`, in ascending index order.
    pub entries: Vec<(u64, f32)>,
    /// Optimizer accumulators and counters.
    pub opt_state: OptState,
    /// Loop bookkeeping.
    pub progress: TrainProgress,
}

impl TrainState {
    /// Captures a snapshot of a run between two epochs.
    pub fn capture(
        net: &Network,
        optimizer: &dyn Optimizer,
        shuffle_seed: u64,
        progress: &TrainProgress,
    ) -> Self {
        let store = net.store();
        let entries: Vec<(u64, f32)> = store
            .params()
            .iter()
            .enumerate()
            .filter(|&(i, p)| p.to_bits() != store.init_value(i).to_bits())
            .map(|(i, &p)| (i as u64, p))
            .collect();
        Self {
            model: net.name().to_string(),
            optimizer: optimizer.name().to_string(),
            init_seed: store.seed(),
            shuffle_seed,
            entries,
            opt_state: optimizer.snapshot_state(),
            progress: progress.clone(),
        }
    }

    /// Restores the snapshot into a freshly-constructed network and
    /// optimizer, returning the loop bookkeeping to resume from. The
    /// network's parameters are reset to their regenerated init values
    /// first, so the call is correct even on a partially-trained network.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::SeedMismatch`],
    /// [`CheckpointError::Incompatible`] (wrong model, optimizer, shuffle
    /// seed, or optimizer configuration), or
    /// [`CheckpointError::IndexOutOfRange`] if the snapshot references
    /// weights the network does not have.
    pub fn restore_into(
        &self,
        net: &mut Network,
        optimizer: &mut dyn Optimizer,
        shuffle_seed: u64,
    ) -> Result<TrainProgress, CheckpointError> {
        if self.model != net.name() {
            return Err(CheckpointError::Incompatible(format!(
                "snapshot is of model {:?}, not {:?}",
                self.model,
                net.name()
            )));
        }
        if self.init_seed != net.store().seed() {
            return Err(CheckpointError::SeedMismatch {
                expected: net.store().seed(),
                found: self.init_seed,
            });
        }
        if self.shuffle_seed != shuffle_seed {
            return Err(CheckpointError::Incompatible(format!(
                "snapshot used shuffle seed {}, this run uses {}; resume with the \
                 original shuffle seed or the batch order will diverge",
                self.shuffle_seed, shuffle_seed
            )));
        }
        if self.optimizer != optimizer.name() {
            return Err(CheckpointError::Incompatible(format!(
                "snapshot was trained with optimizer {:?}, not {:?}",
                self.optimizer,
                optimizer.name()
            )));
        }
        let n = net.num_params();
        if let Some(&(bad, _)) = self.entries.iter().find(|&&(i, _)| i as usize >= n) {
            return Err(CheckpointError::IndexOutOfRange { index: bad, len: n });
        }
        if let Some(bad) = self.opt_state.max_pair_index().filter(|&i| i as usize >= n) {
            return Err(CheckpointError::IndexOutOfRange { index: bad, len: n });
        }
        optimizer.restore_state(&self.opt_state)?;
        net.store_mut().reset();
        for &(i, w) in &self.entries {
            net.store_mut().params_mut()[i as usize] = w;
        }
        Ok(self.progress.clone())
    }

    /// Serializes the snapshot: magic, payload length, CRC-32, payload.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to(&self, mut w: impl Write) -> Result<(), CheckpointError> {
        let payload = self.encode_payload();
        w.write_all(MAGIC)?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&crc32(&payload).to_le_bytes())?;
        w.write_all(&payload)?;
        Ok(())
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        MAGIC.len() + 8 + 4 + self.encode_payload().len()
    }

    /// Reads and validates a snapshot written by [`TrainState::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::InvalidData`] on bad magic, an
    /// over-long declared payload, a CRC mismatch, or any internal length
    /// field that exceeds the bytes actually present; truncation surfaces
    /// as `InvalidData` or an `UnexpectedEof` I/O error. All of these
    /// satisfy [`CheckpointError::is_corruption`].
    pub fn read_from(mut r: impl Read) -> Result<Self, CheckpointError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CheckpointError::InvalidData(
                "not a DropBack v2 training snapshot (bad magic)".into(),
            ));
        }
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let declared = u64::from_le_bytes(b8);
        if declared > MAX_PAYLOAD {
            return Err(CheckpointError::InvalidData(format!(
                "declared payload of {declared} bytes exceeds the {MAX_PAYLOAD}-byte limit"
            )));
        }
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4)?;
        let expected_crc = u32::from_le_bytes(b4);
        // `take` bounds the read; `read_to_end` grows the buffer only as
        // bytes arrive, so a truncated file cannot cause over-allocation.
        let mut payload = Vec::new();
        r.take(declared).read_to_end(&mut payload)?;
        if payload.len() as u64 != declared {
            return Err(CheckpointError::InvalidData(format!(
                "payload truncated: declared {declared} bytes, found {}",
                payload.len()
            )));
        }
        let actual_crc = crc32(&payload);
        if actual_crc != expected_crc {
            return Err(CheckpointError::InvalidData(format!(
                "CRC-32 mismatch: header says {expected_crc:#010x}, payload hashes to \
                 {actual_crc:#010x} (torn write or bit-rot)"
            )));
        }
        Self::decode_payload(&payload)
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.entries.len() * 12);
        put_u64(&mut out, self.init_seed);
        put_u64(&mut out, self.shuffle_seed);
        put_u64(&mut out, self.progress.next_epoch as u64);
        put_u64(&mut out, self.progress.iteration);
        put_u64(&mut out, self.progress.best_epoch as u64);
        put_u64(&mut out, self.progress.since_best as u64);
        put_f32(&mut out, self.progress.best_val);
        put_str(&mut out, &self.model);
        put_str(&mut out, &self.optimizer);
        put_u64(&mut out, self.entries.len() as u64);
        for &(i, v) in &self.entries {
            put_u64(&mut out, i);
            put_f32(&mut out, v);
        }
        put_u64(&mut out, self.progress.history.len() as u64);
        for e in &self.progress.history {
            put_u64(&mut out, e.epoch as u64);
            put_f32(&mut out, e.lr);
            put_f32(&mut out, e.train_loss);
            put_f32(&mut out, e.train_acc);
            put_f32(&mut out, e.val_acc);
            put_f32(&mut out, e.kl);
        }
        put_str(&mut out, self.opt_state.name());
        put_u64(&mut out, self.opt_state.fields().len() as u64);
        for (name, field) in self.opt_state.fields() {
            put_str(&mut out, name);
            match field {
                StateField::U64(v) => {
                    out.push(0);
                    put_u64(&mut out, *v);
                }
                StateField::F32s(v) => {
                    out.push(1);
                    put_u64(&mut out, v.len() as u64);
                    for &x in v {
                        put_f32(&mut out, x);
                    }
                }
                StateField::Pairs(v) => {
                    out.push(2);
                    put_u64(&mut out, v.len() as u64);
                    for &(i, x) in v {
                        put_u64(&mut out, i);
                        put_f32(&mut out, x);
                    }
                }
                StateField::Bools(v) => {
                    out.push(3);
                    put_u64(&mut out, v.len() as u64);
                    out.extend(v.iter().map(|&b| b as u8));
                }
            }
        }
        out
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, CheckpointError> {
        let mut rd = Rd {
            buf: payload,
            pos: 0,
        };
        let init_seed = rd.u64()?;
        let shuffle_seed = rd.u64()?;
        let next_epoch = rd.u64()? as usize;
        let iteration = rd.u64()?;
        let best_epoch = rd.u64()? as usize;
        let since_best = rd.u64()? as usize;
        let best_val = rd.f32()?;
        let model = rd.string("model name")?;
        let optimizer = rd.string("optimizer name")?;
        let n_entries = rd.count(12, "parameter entries")?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let i = rd.u64()?;
            let v = rd.f32()?;
            entries.push((i, v));
        }
        let n_history = rd.count(28, "history records")?;
        let mut history = Vec::with_capacity(n_history);
        for _ in 0..n_history {
            history.push(EpochStats {
                epoch: rd.u64()? as usize,
                lr: rd.f32()?,
                train_loss: rd.f32()?,
                train_acc: rd.f32()?,
                val_acc: rd.f32()?,
                kl: rd.f32()?,
            });
        }
        let state_name = rd.string("optimizer state name")?;
        let n_fields = rd.count(1, "optimizer state fields")?;
        if n_fields > MAX_FIELDS {
            return Err(CheckpointError::InvalidData(format!(
                "{n_fields} optimizer state fields exceeds the {MAX_FIELDS}-field limit"
            )));
        }
        let mut opt_state = OptState::new(&state_name);
        for _ in 0..n_fields {
            let name = rd.string("field name")?;
            let tag = rd.u8()?;
            let field = match tag {
                0 => StateField::U64(rd.u64()?),
                1 => {
                    let n = rd.count(4, "f32 field")?;
                    let mut v = Vec::with_capacity(n);
                    for _ in 0..n {
                        v.push(rd.f32()?);
                    }
                    StateField::F32s(v)
                }
                2 => {
                    let n = rd.count(12, "pair field")?;
                    let mut v = Vec::with_capacity(n);
                    for _ in 0..n {
                        let i = rd.u64()?;
                        let x = rd.f32()?;
                        v.push((i, x));
                    }
                    StateField::Pairs(v)
                }
                3 => {
                    let n = rd.count(1, "bool field")?;
                    let bytes = rd.bytes(n)?;
                    let mut v = Vec::with_capacity(n);
                    for &b in bytes {
                        match b {
                            0 => v.push(false),
                            1 => v.push(true),
                            other => {
                                return Err(CheckpointError::InvalidData(format!(
                                    "bool field byte {other:#04x} is neither 0 nor 1"
                                )))
                            }
                        }
                    }
                    StateField::Bools(v)
                }
                other => {
                    return Err(CheckpointError::InvalidData(format!(
                        "unknown optimizer state field tag {other:#04x}"
                    )))
                }
            };
            opt_state.push(&name, field);
        }
        if rd.pos != payload.len() {
            return Err(CheckpointError::InvalidData(format!(
                "{} trailing bytes after the snapshot payload",
                payload.len() - rd.pos
            )));
        }
        Ok(Self {
            model,
            optimizer,
            init_seed,
            shuffle_seed,
            entries,
            opt_state,
            progress: TrainProgress {
                next_epoch,
                iteration,
                best_epoch,
                since_best,
                best_val,
                history,
            },
        })
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    // Strings are caller-controlled names, capped well under MAX_NAME.
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over the verified payload slice.
/// Every accessor returns `InvalidData` instead of slicing out of range.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if n > self.remaining() {
            return Err(CheckpointError::InvalidData(format!(
                "need {n} bytes, only {} remain in payload",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.bytes(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        let b = self.bytes(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(f32::from_le_bytes(a))
    }

    /// Reads an element count and validates `count * elem_size` against
    /// the bytes actually remaining **before** the caller allocates.
    fn count(&mut self, elem_size: usize, what: &str) -> Result<usize, CheckpointError> {
        let declared = self.u64()?;
        let n = usize::try_from(declared).map_err(|_| {
            CheckpointError::InvalidData(format!("{what}: count {declared} exceeds address space"))
        })?;
        let need = n.checked_mul(elem_size).ok_or_else(|| {
            CheckpointError::InvalidData(format!("{what}: count {n} overflows size arithmetic"))
        })?;
        if need > self.remaining() {
            return Err(CheckpointError::InvalidData(format!(
                "{what}: {n} declared elements need {need} bytes, only {} remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn string(&mut self, what: &str) -> Result<String, CheckpointError> {
        let b = self.bytes(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        let len = u32::from_le_bytes(a) as usize;
        if len > MAX_NAME {
            return Err(CheckpointError::InvalidData(format!(
                "{what}: {len}-byte string exceeds the {MAX_NAME}-byte limit"
            )));
        }
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::InvalidData(format!("{what}: not valid UTF-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dropback_data::synthetic_mnist;
    use dropback_nn::models;
    use dropback_optim::{SgdMomentum, SparseDropBack};

    fn trained_snapshot() -> (Network, SparseDropBack, TrainState) {
        let (train, _) = synthetic_mnist(200, 40, 9);
        let mut net = models::mnist_100_100(9);
        let mut opt = SparseDropBack::new(3_000).freeze_after(2);
        let batcher = dropback_data::Batcher::new(64, 0x5EED);
        let mut iteration = 0u64;
        for (x, labels) in batcher.epoch(&train, 0) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
            iteration += 1;
        }
        opt.end_epoch(0, net.store_mut());
        let progress = TrainProgress {
            next_epoch: 1,
            iteration,
            best_epoch: 0,
            since_best: 0,
            best_val: 0.25,
            history: vec![EpochStats {
                epoch: 0,
                train_loss: 2.1,
                train_acc: 0.2,
                val_acc: 0.25,
                lr: 0.1,
                kl: 0.0,
            }],
        };
        let state = TrainState::capture(&net, &opt, 0x5EED, &progress);
        (net, opt, state)
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let (_, _, state) = trained_snapshot();
        let mut buf = Vec::new();
        state.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), state.size_bytes());
        let loaded = TrainState::read_from(&buf[..]).unwrap();
        assert_eq!(state, loaded);
    }

    #[test]
    fn restore_reconstructs_params_and_optimizer() {
        let (net, opt, state) = trained_snapshot();
        let mut net2 = models::mnist_100_100(9);
        let mut opt2 = SparseDropBack::new(3_000).freeze_after(2);
        let progress = state.restore_into(&mut net2, &mut opt2, 0x5EED).unwrap();
        assert_eq!(net.store().params(), net2.store().params());
        assert_eq!(opt.tracked(), opt2.tracked());
        assert_eq!(progress.next_epoch, 1);
        assert_eq!(progress.history.len(), 1);
    }

    #[test]
    fn restore_resets_stale_parameters_first() {
        let (net, _, state) = trained_snapshot();
        let mut net2 = models::mnist_100_100(9);
        // Pollute the target: restore must regenerate, not trust, its params.
        for p in net2.store_mut().params_mut().iter_mut().take(100) {
            *p = 123.0;
        }
        let mut opt2 = SparseDropBack::new(3_000).freeze_after(2);
        state.restore_into(&mut net2, &mut opt2, 0x5EED).unwrap();
        assert_eq!(net.store().params(), net2.store().params());
    }

    #[test]
    fn incompatibilities_are_typed_and_actionable() {
        let (_, _, state) = trained_snapshot();
        let mk_opt = || SparseDropBack::new(3_000).freeze_after(2);
        // Wrong init seed.
        let err = state
            .restore_into(&mut models::mnist_100_100(10), &mut mk_opt(), 0x5EED)
            .unwrap_err();
        assert!(matches!(err, CheckpointError::SeedMismatch { .. }));
        // Wrong model.
        let err = state
            .restore_into(&mut models::lenet_300_100(9), &mut mk_opt(), 0x5EED)
            .unwrap_err();
        assert!(err.to_string().contains("model"));
        // Wrong shuffle seed.
        let err = state
            .restore_into(&mut models::mnist_100_100(9), &mut mk_opt(), 7)
            .unwrap_err();
        assert!(err.to_string().contains("shuffle seed"));
        // Wrong optimizer.
        let err = state
            .restore_into(
                &mut models::mnist_100_100(9),
                &mut SgdMomentum::new(0.9),
                0x5EED,
            )
            .unwrap_err();
        assert!(err.to_string().contains("optimizer"));
        // Wrong budget (optimizer config inside OptState).
        let err = state
            .restore_into(
                &mut models::mnist_100_100(9),
                &mut SparseDropBack::new(99),
                0x5EED,
            )
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Incompatible(_)));
    }

    #[test]
    fn crc_catches_any_payload_bit_flip() {
        let (_, _, state) = trained_snapshot();
        let mut buf = Vec::new();
        state.write_to(&mut buf).unwrap();
        // Flip a byte in a few representative payload positions.
        for &offset in &[20usize, 100, buf.len() / 2, buf.len() - 1] {
            let mut bad = buf.clone();
            bad[offset] ^= 0x10;
            let err = TrainState::read_from(&bad[..]).unwrap_err();
            assert!(err.is_corruption(), "flip at {offset} escaped: {err}");
        }
    }

    #[test]
    fn truncation_at_any_point_is_clean() {
        let (_, _, state) = trained_snapshot();
        let mut buf = Vec::new();
        state.write_to(&mut buf).unwrap();
        for cut in [0, 3, 8, 12, 19, 20, 50, buf.len() - 1] {
            let err = TrainState::read_from(&buf[..cut]).unwrap_err();
            assert!(err.is_corruption(), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn hostile_payload_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = TrainState::read_from(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("limit"));
    }

    #[test]
    fn sparse_model_snapshot_is_compact() {
        let (net, _, state) = trained_snapshot();
        // ≤ k tracked entries stored, not the full dense vector.
        assert!(state.entries.len() <= 3_000);
        let dense_bytes = net.num_params() * 4;
        assert!(state.size_bytes() < dense_bytes / 2);
    }
}
