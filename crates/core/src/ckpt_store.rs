//! Atomic, self-healing on-disk storage for training snapshots.
//!
//! A [`CheckpointStore`] owns one directory of `DROPBKv2` snapshot files
//! and upholds two promises:
//!
//! 1. **Writes are atomic.** A snapshot is streamed to a `.partial` temp
//!    file, `fsync`-ed, and only then renamed into place (followed by a
//!    best-effort directory fsync). A crash mid-write leaves at worst a
//!    stray `.partial` file that loading ignores — never a truncated
//!    snapshot under the real name.
//! 2. **Loads fall back.** [`CheckpointStore::load_latest`] walks
//!    snapshots newest-first and skips any that fail validation
//!    (truncation, CRC mismatch, hostile lengths), recording what it
//!    skipped so callers can warn. Only *incompatibility* (wrong seed,
//!    model, optimizer) aborts the walk — falling back past those would
//!    silently resume a different experiment.
//!
//! The store retains the newest `keep` snapshots and prunes the rest.
//! For tests, [`CheckpointStore::inject_write_fault`] arms a
//! deterministic [`FaultMode`] for the *n*-th write, proving the recovery
//! path end to end.

use crate::chaos::{FaultInjector, FaultMode};
use crate::checkpoint::CheckpointError;
use crate::train_state::TrainState;
use dropback_telemetry::{Event, Stopwatch, Telemetry};
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

const SNAPSHOT_EXT: &str = "dbk2";
const PARTIAL_SUFFIX: &str = ".partial";

/// Directory-backed snapshot storage with atomic writes, bounded
/// retention, and corruption fallback on load.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    every: usize,
    resume: bool,
    /// Armed test faults: 0-based write ordinal → fault to inject.
    write_faults: BTreeMap<u64, FaultMode>,
    writes: u64,
    skipped: Vec<(PathBuf, CheckpointError)>,
}

impl CheckpointStore {
    /// Opens (creating if needed) a snapshot directory. Defaults: keep
    /// the 3 newest snapshots, snapshot every epoch, resume enabled.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            keep: 3,
            every: 1,
            resume: true,
            write_faults: BTreeMap::new(),
            writes: 0,
            skipped: Vec::new(),
        })
    }

    /// Retain the newest `n` snapshots (minimum 1).
    pub fn keep(mut self, n: usize) -> Self {
        self.keep = n.max(1);
        self
    }

    /// Snapshot every `n` epochs (minimum 1; the final epoch is always
    /// snapshotted regardless).
    pub fn every(mut self, n: usize) -> Self {
        self.every = n.max(1);
        self
    }

    /// Whether `Trainer::run_resumable` should load the latest snapshot
    /// before training (`true`, the default) or start fresh and only
    /// write snapshots (`false`).
    pub fn resume(mut self, yes: bool) -> Self {
        self.resume = yes;
        self
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether loading on resume is enabled.
    pub fn resume_enabled(&self) -> bool {
        self.resume
    }

    /// True when the epoch that just finished (`epoch`, 0-based, out of
    /// `total`) is due a snapshot: every `every`-th epoch and the last.
    pub fn due(&self, epoch: usize, total: usize) -> bool {
        (epoch + 1).is_multiple_of(self.every) || epoch + 1 == total
    }

    /// Arms a deterministic fault for the `nth` snapshot write (0-based).
    /// Test hook: proves torn writes are survived, not just hoped about.
    pub fn inject_write_fault(&mut self, nth: u64, mode: FaultMode) {
        self.write_faults.insert(nth, mode);
    }

    /// Corrupt or unreadable snapshots skipped by [`Self::load_latest`]
    /// since the last call, oldest-skip first. Callers surface these as
    /// warnings.
    pub fn take_skipped(&mut self) -> Vec<(PathBuf, CheckpointError)> {
        std::mem::take(&mut self.skipped)
    }

    fn snapshot_path(&self, next_epoch: usize) -> PathBuf {
        // Zero-padded so lexicographic order == numeric order.
        self.dir
            .join(format!("state-{next_epoch:08}.{SNAPSHOT_EXT}"))
    }

    /// Snapshot files in the directory, sorted ascending by name (and
    /// therefore by epoch). `.partial` leftovers are excluded.
    fn list_snapshots(&self) -> Result<Vec<PathBuf>, CheckpointError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let is_snapshot = path
                .extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| e == SNAPSHOT_EXT);
            if is_snapshot && path.is_file() {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Atomically writes `state` as the snapshot for its `next_epoch`,
    /// prunes snapshots beyond the retention limit, and records
    /// `checkpoint.write_ns` / `checkpoint.bytes` telemetry.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (including injected faults). On failure
    /// the target path is untouched; at worst a `.partial` temp file
    /// remains, which subsequent loads ignore and subsequent saves
    /// overwrite.
    pub fn save(
        &mut self,
        state: &TrainState,
        telemetry: &mut Telemetry,
    ) -> Result<PathBuf, CheckpointError> {
        let watch = Stopwatch::started_if(telemetry.is_active());
        let fault = self
            .write_faults
            .remove(&self.writes)
            .unwrap_or(FaultMode::None);
        self.writes += 1;

        let final_path = self.snapshot_path(state.progress.next_epoch);
        let tmp_path = {
            let mut name = final_path
                .file_name()
                .map(|n| n.to_os_string())
                .unwrap_or_default();
            name.push(PARTIAL_SUFFIX);
            self.dir.join(name)
        };

        let result = self.write_snapshot(state, &tmp_path, fault);
        match result {
            Ok(bytes) => {
                fs::rename(&tmp_path, &final_path)?;
                // Best-effort directory fsync so the rename itself is
                // durable; some filesystems refuse fsync on directories.
                if let Ok(d) = File::open(&self.dir) {
                    let _ = d.sync_all();
                }
                self.prune()?;
                if telemetry.is_active() {
                    telemetry.collector().counter("checkpoint.bytes").add(bytes);
                    if let Some(ns) = watch.elapsed_ns() {
                        telemetry
                            .collector()
                            .histogram("checkpoint.write_ns")
                            .record(ns as f64);
                    }
                    telemetry.emit(
                        Event::new("checkpoint")
                            .with("path", final_path.to_string_lossy().as_ref())
                            .with("bytes", bytes),
                    );
                }
                Ok(final_path)
            }
            Err(e) => {
                // Leave no half-written file behind under the temp name.
                let _ = fs::remove_file(&tmp_path);
                if telemetry.is_active() {
                    telemetry
                        .collector()
                        .counter("checkpoint.write_failed")
                        .add(1);
                    telemetry.emit(
                        Event::new("checkpoint_write_failed")
                            .with("path", final_path.to_string_lossy().as_ref())
                            .with("error", e.to_string().as_str()),
                    );
                }
                Err(e)
            }
        }
    }

    fn write_snapshot(
        &self,
        state: &TrainState,
        tmp_path: &Path,
        fault: FaultMode,
    ) -> Result<u64, CheckpointError> {
        let file = File::create(tmp_path)?;
        let mut sink = FaultInjector::new(BufWriter::new(file), fault);
        state.write_to(&mut sink)?;
        sink.flush()?;
        let bytes = sink.position();
        let inner = sink.into_inner();
        inner
            .into_inner()
            .map_err(|e| CheckpointError::Io(e.into_error()))?
            .sync_all()?;
        Ok(bytes)
    }

    fn prune(&self) -> Result<(), CheckpointError> {
        let snapshots = self.list_snapshots()?;
        if snapshots.len() > self.keep {
            for old in &snapshots[..snapshots.len() - self.keep] {
                fs::remove_file(old)?;
            }
        }
        Ok(())
    }

    /// Name of the newest *committed* snapshot, without opening it: a
    /// directory listing plus a sort, no decode and no CRC. "Valid" here
    /// means the file was committed via the atomic temp-write + rename
    /// protocol (a `.partial` leftover is never returned); byte-level
    /// validation still happens in [`Self::load_latest`], which falls
    /// back past corruption.
    ///
    /// This is the cheap poll a hot-swap watcher runs every tick: only
    /// when the returned path *changes* does it pay for a full
    /// [`Self::load_latest`]. Returns `Ok(None)` for an empty directory.
    ///
    /// # Errors
    ///
    /// Fails only if the directory cannot be listed.
    pub fn latest_valid(&self) -> Result<Option<PathBuf>, CheckpointError> {
        Ok(self.list_snapshots()?.pop())
    }

    /// Loads the newest readable snapshot, falling back past corrupt or
    /// truncated files (each recorded for [`Self::take_skipped`] and
    /// counted as `checkpoint.recovered`). Returns `Ok(None)` when the
    /// directory holds no readable snapshot.
    ///
    /// # Errors
    ///
    /// Directory listing failures only — per-file corruption is handled
    /// by falling back, not returned.
    pub fn load_latest(
        &mut self,
        telemetry: &mut Telemetry,
    ) -> Result<Option<TrainState>, CheckpointError> {
        let mut snapshots = self.list_snapshots()?;
        snapshots.reverse(); // newest first
        for path in snapshots {
            match self.read_snapshot(&path) {
                Ok(state) => {
                    if telemetry.is_active() {
                        telemetry.emit(
                            Event::new("checkpoint_loaded")
                                .with("path", path.to_string_lossy().as_ref())
                                .with("next_epoch", state.progress.next_epoch as u64),
                        );
                    }
                    return Ok(Some(state));
                }
                Err(e) => {
                    if telemetry.is_active() {
                        telemetry.collector().counter("checkpoint.recovered").add(1);
                        telemetry.emit(
                            Event::new("checkpoint_skipped")
                                .with("path", path.to_string_lossy().as_ref())
                                .with("error", e.to_string().as_str()),
                        );
                    }
                    self.skipped.push((path, e));
                }
            }
        }
        Ok(None)
    }

    fn read_snapshot(&self, path: &Path) -> Result<TrainState, CheckpointError> {
        let file = File::open(path)?;
        TrainState::read_from(BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train_state::TrainProgress;
    use dropback_nn::models;
    use dropback_optim::{Optimizer, SparseDropBack};
    use std::io::{Read, Seek, SeekFrom};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dropback-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn snapshot_at(epoch: usize) -> TrainState {
        let mut net = models::mnist_100_100(11);
        let mut opt = SparseDropBack::new(500);
        opt.step(net.store_mut(), 0.0);
        // Perturb a few weights so the snapshot has entries.
        for i in 0..8 {
            net.store_mut().params_mut()[i * 100] = epoch as f32 + i as f32;
        }
        let progress = TrainProgress {
            next_epoch: epoch,
            iteration: epoch as u64 * 10,
            ..TrainProgress::fresh()
        };
        TrainState::capture(&net, &opt, 0x5EED, &progress)
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut tel = Telemetry::disabled();
        let state = snapshot_at(1);
        let path = store.save(&state, &mut tel).unwrap();
        assert!(path.ends_with("state-00000001.dbk2"));
        let loaded = store.load_latest(&mut tel).unwrap().unwrap();
        assert_eq!(state, loaded);
        assert!(store.take_skipped().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_only_the_newest() {
        let dir = tmp_dir("retention");
        let mut store = CheckpointStore::open(&dir).unwrap().keep(2);
        let mut tel = Telemetry::disabled();
        for epoch in 1..=5 {
            store.save(&snapshot_at(epoch), &mut tel).unwrap();
        }
        let files = store.list_snapshots().unwrap();
        let names: Vec<_> = files
            .iter()
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()))
            .collect();
        assert_eq!(names, ["state-00000004.dbk2", "state-00000005.dbk2"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_leaves_previous_snapshot_loadable() {
        let dir = tmp_dir("torn");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut tel = Telemetry::disabled();
        let good = snapshot_at(1);
        store.save(&good, &mut tel).unwrap();
        // Second write dies partway through.
        store.inject_write_fault(1, FaultMode::FailWriteAfter(40));
        let err = store.save(&snapshot_at(2), &mut tel).unwrap_err();
        assert!(err.to_string().contains("injected"));
        // No .partial debris, no state-00000002 file.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(leftovers, ["state-00000001.dbk2"]);
        let loaded = store.load_latest(&mut tel).unwrap().unwrap();
        assert_eq!(good, loaded);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_falls_back_past_corrupted_newest() {
        let dir = tmp_dir("fallback");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut tel = Telemetry::disabled();
        let old = snapshot_at(1);
        store.save(&old, &mut tel).unwrap();
        let newest = store.save(&snapshot_at(2), &mut tel).unwrap();
        // Flip a byte in the newest snapshot's payload.
        let mut f = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&newest)
            .unwrap();
        f.seek(SeekFrom::Start(60)).unwrap();
        let mut b = [0u8; 1];
        f.read_exact(&mut b).unwrap();
        f.seek(SeekFrom::Start(60)).unwrap();
        f.write_all(&[b[0] ^ 0x40]).unwrap();
        drop(f);

        let loaded = store.load_latest(&mut tel).unwrap().unwrap();
        assert_eq!(old, loaded);
        let skipped = store.take_skipped();
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].0.ends_with("state-00000002.dbk2"));
        assert!(skipped[0].1.is_corruption());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_fully_corrupt_directory_loads_none() {
        let dir = tmp_dir("empty");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut tel = Telemetry::disabled();
        assert!(store.load_latest(&mut tel).unwrap().is_none());
        // A lone garbage file is skipped, not fatal.
        fs::write(dir.join("state-00000009.dbk2"), b"not a snapshot").unwrap();
        assert!(store.load_latest(&mut tel).unwrap().is_none());
        assert_eq!(store.take_skipped().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_valid_is_a_cheap_name_poll() {
        let dir = tmp_dir("latest-valid");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut tel = Telemetry::disabled();
        assert_eq!(store.latest_valid().unwrap(), None);

        store.save(&snapshot_at(1), &mut tel).unwrap();
        let first = store.latest_valid().unwrap().unwrap();
        assert!(first.ends_with("state-00000001.dbk2"));

        // A stray .partial (torn write debris) is never the candidate.
        fs::write(dir.join("state-00000007.dbk2.partial"), b"torn").unwrap();
        assert_eq!(store.latest_valid().unwrap().unwrap(), first);

        // A newer committed snapshot changes the answer — this name flip
        // is the only signal the hot-swap watcher polls for.
        store.save(&snapshot_at(2), &mut tel).unwrap();
        let second = store.latest_valid().unwrap().unwrap();
        assert!(second.ends_with("state-00000002.dbk2"));
        assert_ne!(first, second);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn due_honours_interval_and_final_epoch() {
        let dir = tmp_dir("due");
        let store = CheckpointStore::open(&dir).unwrap().every(3);
        assert!(!store.due(0, 8));
        assert!(!store.due(1, 8));
        assert!(store.due(2, 8)); // 3rd epoch
        assert!(store.due(5, 8)); // 6th epoch
        assert!(store.due(7, 8)); // final epoch always
        let _ = fs::remove_dir_all(&dir);
    }
}
