//! Hand-rolled CRC-32 (IEEE 802.3 polynomial), used to detect bit-rot and
//! torn writes in checkpoint payloads. Zero dependencies, bitwise
//! implementation — checkpoints are tens of kilobytes, so table-free
//! throughput is more than sufficient.

/// Computes the CRC-32/ISO-HDLC checksum of `data` (the same parameters as
/// zlib's `crc32`: reflected, init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            // Branch-free reflected-polynomial step: the mask is all-ones
            // when the low bit is set, all-zeros otherwise.
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = b"DROPBKv2 payload bytes".to_vec();
        let crc = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    crc,
                    "flip at byte {i} bit {bit} undetected"
                );
            }
        }
    }
}
