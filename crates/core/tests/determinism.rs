//! Same-seed runs must be bit-identical — the DropBack contract that the
//! whole `dropback-lint` rule set exists to protect. Two independent
//! trainings from the same `(seed, architecture, k)` must agree on the
//! tracked index set, every tracked value's bits, and the rendered
//! `TrainReport` JSON, byte for byte.

use dropback::prelude::*;

/// Trains a fresh model with the sparse rule and returns the optimizer.
fn sparse_run(seed: u64) -> (Network, SparseDropBack) {
    let (train, _) = synthetic_mnist(400, 64, seed);
    let mut net = models::mnist_100_100(seed);
    let mut opt = SparseDropBack::new(5_000).freeze_after(2);
    let batcher = Batcher::new(64, 3);
    for epoch in 0..3u64 {
        for (x, labels) in batcher.epoch(&train, epoch) {
            let _ = net.loss_backward(&x, &labels);
            opt.step(net.store_mut(), 0.1);
        }
        opt.end_epoch(epoch as usize, net.store_mut());
    }
    (net, opt)
}

#[test]
fn same_seed_runs_produce_identical_tracked_sets() {
    let (_, a) = sparse_run(41);
    let (_, b) = sparse_run(41);
    let idx_a: Vec<usize> = a.tracked().keys().copied().collect();
    let idx_b: Vec<usize> = b.tracked().keys().copied().collect();
    assert_eq!(idx_a, idx_b, "tracked index sets diverged");
    // Values must agree to the bit, not to a tolerance: untracked weights
    // are regenerated from regen(seed, index), so any drift in the stored
    // ones breaks checkpoint replay.
    for (i, va) in a.tracked() {
        let vb = b.tracked()[i];
        assert_eq!(va.to_bits(), vb.to_bits(), "weight {i} drifted");
    }
    // And the iteration order is the index order (BTreeMap) — the
    // property checkpoint serialization relies on.
    assert!(idx_a.windows(2).all(|w| w[0] < w[1]), "not index-ordered");
}

#[test]
fn same_seed_reports_render_identical_json() {
    let report = |seed: u64| {
        let (train, test) = synthetic_mnist(300, 64, seed);
        let cfg = TrainConfig::new(2, 64);
        Trainer::new(cfg)
            .run(
                models::mnist_100_100(seed),
                SparseDropBack::new(5_000),
                &train,
                &test,
            )
            .to_json()
            .render()
    };
    let a = report(17);
    let b = report(17);
    assert_eq!(a, b, "same-seed TrainReport JSON must be byte-identical");
    // A different seed must actually change the trajectory, or the
    // comparison above proves nothing.
    assert_ne!(a, report(18));
}
