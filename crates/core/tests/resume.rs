//! The headline crash-safety guarantee: training `n` epochs straight and
//! training `m < n` epochs, "crashing", and resuming to `n` produce
//! **bit-identical** reports and parameter stores — including when
//! snapshot writes fail mid-run and when the newest snapshot on disk is
//! corrupt.

use dropback::prelude::*;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dropback-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(epochs: usize) -> TrainConfig {
    TrainConfig::new(epochs, 32)
        .lr(LrSchedule::Constant(0.1))
        .patience(None)
}

fn data(seed: u64) -> (Dataset, Dataset) {
    synthetic_mnist(192, 48, seed)
}

/// Bitwise fingerprint of every parameter — `f32` equality is not enough
/// to claim bit-identity (−0.0 == 0.0, NaN != NaN).
fn param_bits(net: &Network) -> Vec<u32> {
    net.store().params().iter().map(|p| p.to_bits()).collect()
}

/// Trains `epochs` epochs straight through with no snapshotting.
fn straight_run(
    opt_factory: &dyn Fn() -> Box<dyn Optimizer>,
    epochs: usize,
) -> (TrainReport, Vec<u32>) {
    let (train, val) = data(7);
    let mut net = models::mnist_100_100(7);
    let mut opt = opt_factory();
    let report = Trainer::new(config(epochs)).run_mut(
        &mut net,
        opt.as_mut(),
        &train,
        &val,
        &mut NoProbe,
        &mut Telemetry::disabled(),
    );
    (report, param_bits(&net))
}

/// Trains `kill_after` epochs with snapshots, throws everything away (the
/// "crash"), then resumes from disk and trains to `epochs`.
fn interrupted_run(
    opt_factory: &dyn Fn() -> Box<dyn Optimizer>,
    kill_after: usize,
    epochs: usize,
    dir: &PathBuf,
) -> (TrainReport, Vec<u32>) {
    let (train, val) = data(7);
    let mut tel = Telemetry::disabled();
    {
        let mut net = models::mnist_100_100(7);
        let mut opt = opt_factory();
        let mut store = CheckpointStore::open(dir).unwrap();
        let _ = Trainer::new(config(kill_after))
            .run_resumable(&mut net, opt.as_mut(), &train, &val, &mut store, &mut tel)
            .unwrap();
        // net, opt, and store dropped here: the process "died".
    }
    let mut net = models::mnist_100_100(7);
    let mut opt = opt_factory();
    let mut store = CheckpointStore::open(dir).unwrap();
    let report = Trainer::new(config(epochs))
        .run_resumable(&mut net, opt.as_mut(), &train, &val, &mut store, &mut tel)
        .unwrap();
    assert!(
        store.take_skipped().is_empty(),
        "no snapshot should have been skipped"
    );
    (report, param_bits(&net))
}

fn assert_bit_identical(a: (TrainReport, Vec<u32>), b: (TrainReport, Vec<u32>)) {
    // The rendered JSON covers every report field, including each epoch's
    // stats, so byte-equality here is bit-identity of the full report.
    assert_eq!(a.0.to_json().render(), b.0.to_json().render());
    assert_eq!(a.1, b.1, "parameter stores differ");
}

#[test]
fn sparse_dropback_resume_is_bit_identical() {
    let dir = tmp_dir("sparse");
    let mk: &dyn Fn() -> Box<dyn Optimizer> =
        &|| Box::new(SparseDropBack::new(4_000).freeze_after(3));
    let straight = straight_run(mk, 5);
    let resumed = interrupted_run(mk, 3, 5, &dir);
    assert_bit_identical(straight, resumed);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn dense_dropback_resume_is_bit_identical() {
    let dir = tmp_dir("dense");
    let mk: &dyn Fn() -> Box<dyn Optimizer> = &|| Box::new(DropBack::new(8_000));
    let straight = straight_run(mk, 4);
    let resumed = interrupted_run(mk, 2, 4, &dir);
    assert_bit_identical(straight, resumed);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sgd_resume_is_bit_identical() {
    let dir = tmp_dir("sgd");
    let mk: &dyn Fn() -> Box<dyn Optimizer> = &|| Box::new(Sgd::new());
    let straight = straight_run(mk, 4);
    let resumed = interrupted_run(mk, 1, 4, &dir);
    assert_bit_identical(straight, resumed);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_survives_injected_write_faults_bit_identically() {
    let dir = tmp_dir("faulty");
    let mk = || SparseDropBack::new(4_000).freeze_after(3);
    let mk_dyn: &dyn Fn() -> Box<dyn Optimizer> = &|| Box::new(mk());
    let straight = straight_run(mk_dyn, 5);

    let (train, val) = data(7);
    let mut tel = Telemetry::disabled();
    {
        let mut net = models::mnist_100_100(7);
        let mut opt = mk();
        let mut store = CheckpointStore::open(&dir).unwrap();
        // The epoch-1 and epoch-2 snapshots both die partway through a
        // seeded torn write; only the epoch-0 snapshot lands. Training
        // must shrug and keep going.
        store.inject_write_fault(1, FaultMode::seeded_tear(11, 10_000));
        store.inject_write_fault(2, FaultMode::seeded_tear(12, 10_000));
        let report = Trainer::new(config(3))
            .run_resumable(&mut net, &mut opt, &train, &val, &mut store, &mut tel)
            .unwrap();
        assert_eq!(
            report.history.len(),
            3,
            "write faults must not kill the run"
        );
    }
    // Only state-00000001 exists, so the resume replays epochs 1–4.
    let names: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(names, ["state-00000001.dbk2"]);
    let mut net = models::mnist_100_100(7);
    let mut opt = mk();
    let mut store = CheckpointStore::open(&dir).unwrap();
    let report = Trainer::new(config(5))
        .run_resumable(&mut net, &mut opt, &train, &val, &mut store, &mut tel)
        .unwrap();
    assert_bit_identical(straight, (report, param_bits(&net)));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_falls_back_past_corrupted_newest_snapshot() {
    let dir = tmp_dir("corrupt-newest");
    let mk = || SparseDropBack::new(4_000).freeze_after(3);
    let mk_dyn: &dyn Fn() -> Box<dyn Optimizer> = &|| Box::new(mk());
    let straight = straight_run(mk_dyn, 5);

    let (train, val) = data(7);
    let mut tel = Telemetry::disabled();
    {
        let mut net = models::mnist_100_100(7);
        let mut opt = mk();
        let mut store = CheckpointStore::open(&dir).unwrap();
        let _ = Trainer::new(config(3))
            .run_resumable(&mut net, &mut opt, &train, &val, &mut store, &mut tel)
            .unwrap();
    }
    // Bit-rot hits the newest snapshot after the "crash".
    let newest = dir.join("state-00000003.dbk2");
    let len = fs::metadata(&newest).unwrap().len();
    let FaultMode::FlipReadByte { offset, xor } = FaultMode::seeded_flip(21, len) else {
        panic!("seeded_flip on a non-empty file");
    };
    let mut f = fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&newest)
        .unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&[b[0] ^ xor]).unwrap();
    drop(f);

    let mut net = models::mnist_100_100(7);
    let mut opt = mk();
    let mut store = CheckpointStore::open(&dir).unwrap();
    let report = Trainer::new(config(5))
        .run_resumable(&mut net, &mut opt, &train, &val, &mut store, &mut tel)
        .unwrap();
    // The epoch-2 snapshot was the fallback; epoch 2 replayed.
    let skipped = store.take_skipped();
    assert_eq!(skipped.len(), 1);
    assert!(skipped[0].0.ends_with("state-00000003.dbk2"));
    assert!(skipped[0].1.is_corruption());
    assert_bit_identical(straight, (report, param_bits(&net)));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_wrong_seed_is_a_typed_incompatibility() {
    let dir = tmp_dir("wrong-seed");
    let (train, val) = data(7);
    let mut tel = Telemetry::disabled();
    {
        let mut net = models::mnist_100_100(7);
        let mut opt = SparseDropBack::new(4_000);
        let mut store = CheckpointStore::open(&dir).unwrap();
        let _ = Trainer::new(config(2))
            .run_resumable(&mut net, &mut opt, &train, &val, &mut store, &mut tel)
            .unwrap();
    }
    // Different init seed: untracked weights would regenerate differently.
    let mut net = models::mnist_100_100(8);
    let mut opt = SparseDropBack::new(4_000);
    let mut store = CheckpointStore::open(&dir).unwrap();
    let err = Trainer::new(config(4))
        .run_resumable(&mut net, &mut opt, &train, &val, &mut store, &mut tel)
        .unwrap_err();
    assert!(matches!(err, CheckpointError::SeedMismatch { .. }));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_disabled_starts_fresh_but_still_snapshots() {
    let dir = tmp_dir("no-resume");
    let (train, val) = data(7);
    let mut tel = Telemetry::disabled();
    for _ in 0..2 {
        let mut net = models::mnist_100_100(7);
        let mut opt = Sgd::new();
        let mut store = CheckpointStore::open(&dir).unwrap().resume(false);
        let report = Trainer::new(config(2))
            .run_resumable(&mut net, &mut opt, &train, &val, &mut store, &mut tel)
            .unwrap();
        // Epoch 0 ran both times: with resume off, nothing was loaded.
        assert_eq!(report.history.len(), 2);
        assert_eq!(report.history[0].epoch, 0);
    }
    assert!(dir.join("state-00000002.dbk2").exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn early_stop_state_survives_resume() {
    let dir = tmp_dir("patience");
    // lr = 0: nothing ever improves after epoch 0, so patience 2 stops
    // the straight run early. The resumed run must stop at the same epoch
    // with the same report, not run out the full budget.
    let cfg = |epochs| {
        TrainConfig::new(epochs, 32)
            .lr(LrSchedule::Constant(0.0))
            .patience(Some(2))
    };
    let (train, val) = data(7);
    let mut tel = Telemetry::disabled();
    let mut net_a = models::mnist_100_100(7);
    let mut opt_a = Sgd::new();
    let straight =
        Trainer::new(cfg(10)).run_mut(&mut net_a, &mut opt_a, &train, &val, &mut NoProbe, &mut tel);
    assert!(straight.history.len() < 10, "early stop must fire");

    {
        let mut net = models::mnist_100_100(7);
        let mut opt = Sgd::new();
        let mut store = CheckpointStore::open(&dir).unwrap();
        let _ = Trainer::new(cfg(2))
            .run_resumable(&mut net, &mut opt, &train, &val, &mut store, &mut tel)
            .unwrap();
    }
    let mut net = models::mnist_100_100(7);
    let mut opt = Sgd::new();
    let mut store = CheckpointStore::open(&dir).unwrap();
    let resumed = Trainer::new(cfg(10))
        .run_resumable(&mut net, &mut opt, &train, &val, &mut store, &mut tel)
        .unwrap();
    assert_eq!(straight.to_json().render(), resumed.to_json().render());
    assert_eq!(param_bits(&net_a), param_bits(&net));
    let _ = fs::remove_dir_all(&dir);
}
