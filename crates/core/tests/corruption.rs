//! Seeded corruption fuzzing of both checkpoint formats: every truncation
//! and every seeded bit-flip must produce a clean typed error (or, for
//! the CRC-less v1 format, at worst a well-formed wrong read) — never a
//! panic and never an attacker-sized allocation.

use dropback::prelude::*;
use dropback::prng::Xorshift64;

const FLIP_TRIALS: u64 = 300;

fn v1_bytes() -> Vec<u8> {
    let mut net = models::mnist_100_100(3);
    let mut opt = SparseDropBack::new(2_000);
    let (train, _) = synthetic_mnist(128, 32, 3);
    for (x, labels) in Batcher::new(64, 1).epoch(&train, 0) {
        let _ = net.loss_backward(&x, &labels);
        opt.step(net.store_mut(), 0.1);
    }
    let ckpt = Checkpoint::from_sparse(&net, &opt);
    let mut buf = Vec::new();
    ckpt.write_to(&mut buf).unwrap();
    buf
}

fn v2_bytes() -> Vec<u8> {
    let mut net = models::mnist_100_100(3);
    let mut opt = SparseDropBack::new(2_000);
    let (train, _) = synthetic_mnist(128, 32, 3);
    for (x, labels) in Batcher::new(64, 1).epoch(&train, 0) {
        let _ = net.loss_backward(&x, &labels);
        opt.step(net.store_mut(), 0.1);
    }
    let state = TrainState::capture(&net, &opt, 1, &TrainProgress::fresh());
    let mut buf = Vec::new();
    state.write_to(&mut buf).unwrap();
    buf
}

/// Every possible truncation point in the header region plus a seeded
/// sample of the body: a clean error every time, no panic, no OOM.
#[test]
fn truncated_v2_snapshots_always_error_cleanly() {
    let buf = v2_bytes();
    let mut cuts: Vec<usize> = (0..64.min(buf.len())).collect();
    let mut rng = Xorshift64::new(0xC0FFEE);
    for _ in 0..FLIP_TRIALS {
        cuts.push((rng.next_u64() % buf.len() as u64) as usize);
    }
    for cut in cuts {
        let err =
            TrainState::read_from(&buf[..cut]).expect_err("a truncated snapshot must never parse");
        assert!(err.is_corruption(), "cut at {cut}: {err}");
    }
}

#[test]
fn truncated_v1_checkpoints_always_error_cleanly() {
    let buf = v1_bytes();
    let mut cuts: Vec<usize> = (0..64.min(buf.len())).collect();
    let mut rng = Xorshift64::new(0xBEEF);
    for _ in 0..FLIP_TRIALS {
        cuts.push((rng.next_u64() % buf.len() as u64) as usize);
    }
    for cut in cuts {
        let err = Checkpoint::read_from(&buf[..cut])
            .expect_err("a truncated checkpoint must never parse");
        assert!(err.is_corruption(), "cut at {cut}: {err}");
    }
}

/// The v2 format is CRC-protected: *any* single-bit flip anywhere in the
/// file must be detected.
#[test]
fn bit_flipped_v2_snapshots_are_always_detected() {
    let buf = v2_bytes();
    let mut rng = Xorshift64::new(0xF11B);
    for trial in 0..FLIP_TRIALS {
        let offset = (rng.next_u64() % buf.len() as u64) as usize;
        let bit = 1u8 << (rng.next_u64() % 8);
        let mut bad = buf.clone();
        bad[offset] ^= bit;
        let err = TrainState::read_from(&bad[..]).expect_err("flip must be detected");
        assert!(
            err.is_corruption(),
            "trial {trial}: flip at byte {offset} bit {bit:#04x} gave non-corruption error {err}"
        );
    }
}

/// The v1 format has no checksum, so a flipped weight byte can read back
/// "successfully" — but it must *never* panic, and any structural damage
/// (magic, counts) must surface as a typed error.
#[test]
fn bit_flipped_v1_checkpoints_never_panic() {
    let buf = v1_bytes();
    let mut rng = Xorshift64::new(0xDEAD_BEEF);
    for _ in 0..FLIP_TRIALS {
        let offset = (rng.next_u64() % buf.len() as u64) as usize;
        let bit = 1u8 << (rng.next_u64() % 8);
        let mut bad = buf.clone();
        bad[offset] ^= bit;
        match Checkpoint::read_from(&bad[..]) {
            // A flip in an entry's bytes is undetectable without a CRC;
            // the read succeeds with one wrong entry. Applying it must
            // still be safe: either it applies or errors, no panic.
            Ok(ckpt) => {
                let mut net = models::mnist_100_100(3);
                let _ = ckpt.apply(&mut net);
            }
            Err(err) => {
                assert!(
                    err.is_corruption(),
                    "flip at {offset} gave non-corruption error {err}"
                );
            }
        }
    }
}

/// Multi-byte garbage: random writes over random spans, both formats.
#[test]
fn scribbled_spans_never_panic_either_format() {
    let v1 = v1_bytes();
    let v2 = v2_bytes();
    let mut rng = Xorshift64::new(0x5C12_BB1E);
    for _ in 0..FLIP_TRIALS {
        for (buf, is_v2) in [(&v1, false), (&v2, true)] {
            let start = (rng.next_u64() % buf.len() as u64) as usize;
            let span = 1 + (rng.next_u64() % 32) as usize;
            let mut bad = buf.clone();
            for b in bad.iter_mut().skip(start).take(span) {
                *b = rng.next_u64() as u8;
            }
            if is_v2 {
                // CRC catches every scribble (a scribble that happens to
                // write back identical bytes is a no-op and parses fine).
                if bad != *buf {
                    assert!(TrainState::read_from(&bad[..]).is_err());
                }
            } else {
                let _ = Checkpoint::read_from(&bad[..]);
            }
        }
    }
}
