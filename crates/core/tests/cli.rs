//! `dropback-cli` contract tests: bad flag values fail loudly with an
//! actionable message instead of silently falling back to defaults.

use std::process::Command;

fn cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dropback-cli"))
        .args(args)
        .output()
        .expect("dropback-cli runs")
}

#[test]
fn unparsable_flag_value_is_an_error_not_a_default() {
    let out = cli(&["train", "--epochs", "banana"]);
    assert!(!out.status.success(), "must not train with a bad --epochs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid value \"banana\" for --epochs"),
        "error must name the flag and the bad value, got: {stderr}"
    );
}

#[test]
fn unparsable_numeric_flags_fail_across_subcommands() {
    let out = cli(&["energy", "--budget", "-3"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("for --budget"), "got: {stderr}");
}

#[test]
fn info_still_works_with_valid_flags() {
    let out = cli(&["info", "--model", "mnist-100-100", "--seed", "7"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("parameters"), "got: {stdout}");
}

// ---- crash-safe training: --checkpoint-dir / --resume ----

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dropback-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny deterministic training invocation: seeded synthetic data, two
/// epochs, small budget — finishes in a couple of seconds.
fn tiny_train(
    dir: &std::path::Path,
    epochs: &str,
    seed: &str,
    resume: bool,
) -> std::process::Output {
    let dir_s = dir.to_string_lossy().into_owned();
    let mut args = vec![
        "train",
        "--train",
        "64",
        "--test",
        "32",
        "--epochs",
        epochs,
        "--budget",
        "4000",
        "--freeze",
        "2",
        "--seed",
        seed,
        "--quiet",
        "--checkpoint-dir",
        &dir_s,
    ];
    if resume {
        args.push("--resume");
    }
    cli(&args)
}

#[test]
fn resume_happy_path_matches_straight_run() {
    // Straight 4-epoch run (snapshots written, resume not requested).
    let dir_a = tmp_dir("straight");
    let straight = tiny_train(&dir_a, "4", "13", false);
    assert!(
        straight.status.success(),
        "straight run failed: {}",
        String::from_utf8_lossy(&straight.stderr)
    );

    // 2 epochs, "crash", then resume to 4 in a separate directory.
    let dir_b = tmp_dir("resumed");
    let first = tiny_train(&dir_b, "2", "13", false);
    assert!(first.status.success());
    let resumed = tiny_train(&dir_b, "4", "13", true);
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    // The stdout result line is byte-identical to the uninterrupted run.
    assert_eq!(
        String::from_utf8_lossy(&straight.stdout),
        String::from_utf8_lossy(&resumed.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn resume_falls_back_past_corrupted_newest_with_a_warning() {
    let dir = tmp_dir("fallback");
    let first = tiny_train(&dir, "3", "13", false);
    assert!(first.status.success());
    // Corrupt the newest snapshot (epoch-3 state).
    let newest = dir.join("state-00000003.dbk2");
    let mut bytes = std::fs::read(&newest).expect("snapshot exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&newest, bytes).unwrap();

    let resumed = tiny_train(&dir, "4", "13", true);
    assert!(resumed.status.success(), "fallback resume must succeed");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("skipped corrupt snapshot"),
        "stderr must warn about the skipped snapshot, got: {stderr}"
    );
    assert!(stderr.contains("state-00000003.dbk2"), "got: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_incompatible_seed_exits_2_with_actionable_error() {
    let dir = tmp_dir("wrong-seed");
    let first = tiny_train(&dir, "2", "13", false);
    assert!(first.status.success());
    let resumed = tiny_train(&dir, "4", "14", true);
    assert_eq!(
        resumed.status.code(),
        Some(2),
        "incompatible resume must exit 2, stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(stderr.contains("cannot resume"), "got: {stderr}");
    assert!(
        stderr.contains("seed"),
        "error must name the seed: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_checkpoint_dir_is_an_error() {
    let out = cli(&["train", "--resume", "--epochs", "1"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--resume requires --checkpoint-dir"),
        "got: {stderr}"
    );
}
