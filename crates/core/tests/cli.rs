//! `dropback-cli` contract tests: bad flag values fail loudly with an
//! actionable message instead of silently falling back to defaults.

use std::process::Command;

fn cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dropback-cli"))
        .args(args)
        .output()
        .expect("dropback-cli runs")
}

#[test]
fn unparsable_flag_value_is_an_error_not_a_default() {
    let out = cli(&["train", "--epochs", "banana"]);
    assert!(!out.status.success(), "must not train with a bad --epochs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid value \"banana\" for --epochs"),
        "error must name the flag and the bad value, got: {stderr}"
    );
}

#[test]
fn unparsable_numeric_flags_fail_across_subcommands() {
    let out = cli(&["energy", "--budget", "-3"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("for --budget"), "got: {stderr}");
}

#[test]
fn info_still_works_with_valid_flags() {
    let out = cli(&["info", "--model", "mnist-100-100", "--seed", "7"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("parameters"), "got: {stdout}");
}
