//! Statistical quality checks for the generators.
//!
//! DropBack leans on the regenerated initialization being statistically
//! indistinguishable from a stored `N(0, σ)` init — if the regeneration
//! stream were biased or correlated, the "scaffolding" argument of §2.1
//! would not carry over. These helpers make that property testable (and
//! are used by this crate's own test suite).

/// Chi-square uniformity statistic of `samples` in `[0, 1)` over `bins`
/// equal-width bins.
///
/// For a uniform source the statistic is approximately χ²(bins−1); values
/// below the 99.9% quantile (`bins + 3·sqrt(2·bins)` is a serviceable
/// approximation for large `bins`) indicate no gross bias.
///
/// # Panics
///
/// Panics if `samples` is empty, `bins < 2`, or any sample is outside
/// `[0, 1)`.
pub fn chi_square_uniform(samples: &[f32], bins: usize) -> f64 {
    assert!(!samples.is_empty(), "no samples");
    assert!(bins >= 2, "need at least two bins");
    let mut counts = vec![0u64; bins];
    for &s in samples {
        assert!((0.0..1.0).contains(&s), "sample {s} outside [0, 1)");
        counts[((s as f64) * bins as f64) as usize] += 1;
    }
    let expected = samples.len() as f64 / bins as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// One-sample Kolmogorov–Smirnov statistic of `samples` against the
/// standard normal CDF.
///
/// Returns the max absolute CDF gap `D`. For `n` i.i.d. standard-normal
/// samples, `D · sqrt(n)` is below ~1.95 with 99.9% probability.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn ks_statistic_normal(samples: &[f32]) -> f64 {
    assert!(!samples.is_empty(), "no samples");
    let mut sorted: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let cdf = normal_cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((cdf - lo).abs()).max((hi - cdf).abs());
    }
    d
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (absolute error < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Lag-`k` autocorrelation of a sample stream (≈0 for independent draws).
///
/// # Panics
///
/// Panics if `samples.len() <= lag` or `lag == 0`.
pub fn autocorrelation(samples: &[f32], lag: usize) -> f64 {
    assert!(lag > 0, "lag must be positive");
    assert!(samples.len() > lag, "not enough samples for lag {lag}");
    let n = samples.len();
    let mean = samples.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let var = samples
        .iter()
        .map(|&v| (v as f64 - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    if var == 0.0 {
        return 0.0;
    }
    let cov = (0..n - lag)
        .map(|i| (samples[i] as f64 - mean) * (samples[i + lag] as f64 - mean))
        .sum::<f64>()
        / (n - lag) as f64;
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{regen_normal, regen_uniform, Xorshift128};

    #[test]
    fn regen_uniform_passes_chi_square() {
        let samples: Vec<f32> = (0..100_000u64).map(|i| regen_uniform(42, i)).collect();
        let stat = chi_square_uniform(&samples, 100);
        // 99.9% quantile of chi2(99) is ~148.
        assert!(stat < 148.0, "chi2 = {stat}");
    }

    #[test]
    fn sequential_xorshift_passes_chi_square() {
        let mut rng = Xorshift128::new(7);
        let samples: Vec<f32> = (0..100_000).map(|_| rng.next_f32()).collect();
        let stat = chi_square_uniform(&samples, 100);
        assert!(stat < 148.0, "chi2 = {stat}");
    }

    #[test]
    fn regen_normal_passes_ks() {
        let samples: Vec<f32> = (0..50_000u64).map(|i| regen_normal(42, i)).collect();
        let d = ks_statistic_normal(&samples);
        let scaled = d * (samples.len() as f64).sqrt();
        assert!(scaled < 1.95, "KS sqrt(n)·D = {scaled}");
    }

    #[test]
    fn biased_stream_fails_chi_square() {
        // Sanity: the test can actually detect bias.
        let samples: Vec<f32> = (0..10_000)
            .map(|i| ((i % 100) as f32 / 100.0).powi(2).min(0.999))
            .collect();
        let stat = chi_square_uniform(&samples, 50);
        assert!(stat > 200.0, "chi2 = {stat} should flag bias");
    }

    #[test]
    fn normal_cdf_anchors() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn regen_stream_has_no_lag_correlation() {
        let samples: Vec<f32> = (0..50_000u64).map(|i| regen_normal(9, i)).collect();
        for lag in [1usize, 2, 7, 64] {
            let ac = autocorrelation(&samples, lag);
            assert!(ac.abs() < 0.02, "lag {lag}: {ac}");
        }
    }

    #[test]
    fn constant_stream_autocorrelation_is_zero() {
        assert_eq!(autocorrelation(&[1.0; 100], 3), 0.0);
    }
}
