//! Stateless, index-addressable value regeneration.
//!
//! The DropBack paper's key storage trick: because each initialization value
//! "only depends on the seed value and its index, it can be deterministically
//! regenerated exactly when it is needed for computation, without ever being
//! stored in memory" (§2.1). The functions here are *stateless*: the value at
//! any index is computed in O(1) with a handful of integer operations, which
//! is what makes on-the-fly regeneration cheaper than a DRAM access.

/// Integer operations per *exact* regenerated normal (hash + xorshift step).
///
/// The paper quotes "six 32-bit integer operations and one 32-bit floating
/// point operation" for its hardware regeneration unit; the exact software
/// path below uses a full Box–Muller and costs more flops, so the energy
/// model distinguishes the two (see [`REGEN_FAST_INT_OPS`]).
pub const REGEN_INT_OPS: u64 = 12;

/// Floating-point operations per *exact* regenerated normal (Box–Muller:
/// ln, sqrt, sin/cos amortized over the pair, plus scaling).
pub const REGEN_FLOPS: u64 = 6;

/// Integer operations per *fast* regenerated normal — the hardware-style
/// path the paper costs at ≈1.5 pJ in 45 nm (one xorshift step = 6 int ops).
pub const REGEN_FAST_INT_OPS: u64 = 6;

/// Floating-point operations per *fast* regenerated normal (one fused
/// scale of the popcount sum).
pub const REGEN_FAST_FLOPS: u64 = 1;

/// Mixes `(seed, index)` into a well-distributed 64-bit state.
///
/// This is a splitmix64-style finalizer seeded per index so that adjacent
/// indices decorrelate; the subsequent xorshift step matches the generator
/// family the paper proposes for the regeneration unit.
#[inline]
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // One xorshift64 step (13/7/17) on top, as in the paper's unit.
    z ^= z << 13;
    z ^= z >> 7;
    z ^= z << 17;
    if z == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        z
    }
}

/// Regenerates a uniform value in `[0, 1)` for `(seed, index)`.
///
/// Calling this twice with the same arguments returns bit-identical values.
#[inline]
pub fn regen_uniform(seed: u64, index: u64) -> f32 {
    let z = mix(seed, index);
    ((z >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Regenerates a standard-normal (`N(0, 1)`) value for `(seed, index)` using
/// an exact Box–Muller transform over two independent uniforms derived from
/// the same index.
///
/// This is the default initializer used for training: it is bit-exactly
/// reproducible and distributionally indistinguishable from a stored
/// `N(0, 1)` init.
#[inline]
pub fn regen_normal(seed: u64, index: u64) -> f32 {
    let z = mix(seed, index);
    let hi = (z >> 40) as u32; // 24 bits
    let lo = ((z >> 8) & 0x00FF_FFFF) as u32; // 24 bits, independent-ish
    let mut u1 = hi as f32 * (1.0 / (1u32 << 24) as f32);
    if u1 <= f32::EPSILON {
        u1 = f32::EPSILON;
    }
    let u2 = lo as f32 * (1.0 / (1u32 << 24) as f32);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f32::consts::PI * u2;
    r * theta.cos()
}

/// Regenerates an *approximate* normal value with the hardware-style cost
/// the paper assumes (6 int ops + 1 flop ≈ 1.5 pJ in 45 nm).
///
/// Uses the central-limit trick: the popcount of a 64-bit word is
/// `Binomial(64, 1/2)`, so `(popcount - 32) / 4` approximates `N(0, 1)`
/// (variance of the binomial is 16). The result is discrete with step 0.25;
/// adequate as initialization "scaffolding", and used by the energy model as
/// the costed regeneration path.
#[inline]
pub fn regen_normal_fast(seed: u64, index: u64) -> f32 {
    let z = mix(seed, index);
    (z.count_ones() as f32 - 32.0) * 0.25
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regen_is_bit_exact() {
        for i in 0..10_000u64 {
            assert_eq!(regen_normal(7, i).to_bits(), regen_normal(7, i).to_bits());
            assert_eq!(regen_uniform(7, i).to_bits(), regen_uniform(7, i).to_bits());
        }
    }

    #[test]
    fn regen_depends_on_seed() {
        let a: Vec<u32> = (0..64).map(|i| regen_normal(1, i).to_bits()).collect();
        let b: Vec<u32> = (0..64).map(|i| regen_normal(2, i).to_bits()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn regen_depends_on_index() {
        let distinct: std::collections::HashSet<u32> =
            (0..1000).map(|i| regen_normal(3, i).to_bits()).collect();
        assert!(
            distinct.len() > 990,
            "only {} distinct values",
            distinct.len()
        );
    }

    #[test]
    fn regen_normal_moments() {
        let n = 200_000u64;
        let samples: Vec<f32> = (0..n).map(|i| regen_normal(42, i)).collect();
        let mean: f64 = samples.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let var: f64 = samples
            .iter()
            .map(|&v| (v as f64 - mean) * (v as f64 - mean))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn regen_uniform_moments() {
        let n = 200_000u64;
        let mean: f64 = (0..n).map(|i| regen_uniform(9, i) as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn regen_fast_moments() {
        let n = 200_000u64;
        let samples: Vec<f32> = (0..n).map(|i| regen_normal_fast(13, i)).collect();
        let mean: f64 = samples.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let var: f64 = samples
            .iter()
            .map(|&v| (v as f64 - mean) * (v as f64 - mean))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn adjacent_indices_are_decorrelated() {
        // Lag-1 autocorrelation of the regenerated stream should be ~0.
        let n = 100_000u64;
        let s: Vec<f64> = (0..n).map(|i| regen_normal(5, i) as f64).collect();
        let mean = s.iter().sum::<f64>() / n as f64;
        let var = s.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let cov = s
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        assert!((cov / var).abs() < 0.01, "lag-1 corr {}", cov / var);
    }
}
