//! Xorshift pseudo-random number generation and **index-addressable weight
//! regeneration** for the DropBack reproduction.
//!
//! DropBack (Golub et al., MLSys 2019) avoids storing untracked weights by
//! observing that initialization values "can be deterministically regenerated
//! exactly when [they are] needed for computation, without ever being stored
//! in memory". The paper uses the xorshift family of generators
//! (Marsaglia 2003) postprocessed into a scaled normal distribution.
//!
//! This crate provides:
//!
//! * Sequential xorshift generators ([`Xorshift32`], [`Xorshift64`],
//!   [`Xorshift128`]) for ordinary streaming randomness (shuffling, noise).
//! * The stateless, O(1) [`regen_normal`] / [`regen_uniform`] functions that
//!   map `(seed, index)` to a reproducible value — the core primitive that
//!   lets DropBack "forget" untracked weights.
//! * [`RegenInit`], an index-addressable initializer carrying a seed and an
//!   [`InitScheme`] (LeCun / He / Xavier scaled normals or constants).
//! * Operation-count constants used by the energy model to reproduce the
//!   paper's "427× less energy than a DRAM access" claim.
//!
//! # Example
//!
//! ```
//! use dropback_prng::{RegenInit, InitScheme};
//!
//! // A layer with fan-in 784 whose weights are never stored:
//! let init = RegenInit::new(42, InitScheme::lecun_normal(784));
//! let w0 = init.value(10_001);
//! // ... training happens, weight 10_001 is untracked and forgotten ...
//! let again = init.value(10_001);
//! assert_eq!(w0, again); // bit-exact regeneration
//! ```

#![deny(missing_docs)]

mod extra;
mod init;
mod regen;
pub mod stats;
mod xorshift;

pub use extra::{SplitMix64, Xorwow};
pub use init::{InitScheme, RegenInit};
pub use regen::{
    regen_normal, regen_normal_fast, regen_uniform, REGEN_FAST_FLOPS, REGEN_FAST_INT_OPS,
    REGEN_FLOPS, REGEN_INT_OPS,
};
pub use xorshift::{BoxMuller, UniformSource, Xorshift128, Xorshift32, Xorshift64};
