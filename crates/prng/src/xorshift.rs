//! Sequential xorshift generators (Marsaglia 2003) and a Box–Muller adapter.

/// A 32-bit xorshift generator with period `2^32 - 1`.
///
/// This is the `13/17/5` triple from Marsaglia's paper. One step costs six
/// 32-bit integer operations (three shifts, three xors), which is the cost
/// the DropBack paper quotes for regeneration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xorshift32 {
    state: u32,
}

impl Xorshift32 {
    /// Creates a generator from `seed`. A zero seed is remapped to a fixed
    /// non-zero constant because the all-zero state is a fixed point of
    /// xorshift.
    pub fn new(seed: u32) -> Self {
        Self {
            state: if seed == 0 { 0x9E37_79B9 } else { seed },
        }
    }

    /// Advances the generator and returns the next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 explicit mantissa bits keep the conversion exact in f32.
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn next_range(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f32()
    }

    /// Returns a uniform integer in `[0, n)` via rejection-free modulo with
    /// a widening multiply (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u32) -> u32 {
        assert!(n > 0, "next_below(0) is meaningless");
        (((self.next_u32() as u64) * (n as u64)) >> 32) as u32
    }
}

/// A 64-bit xorshift generator with period `2^64 - 1` (triple `13/7/17`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Creates a generator from `seed` (zero is remapped to a non-zero
    /// constant).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Advances the generator and returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Returns the high 32 bits of the next 64-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// The 128-bit xorshift generator from Marsaglia's paper
/// (`x, y, z, w` state, period `2^128 - 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xorshift128 {
    x: u32,
    y: u32,
    z: u32,
    w: u32,
}

impl Xorshift128 {
    /// Creates a generator whose state is expanded from `seed` with a
    /// [`Xorshift64`] stream.
    pub fn new(seed: u64) -> Self {
        let mut s = Xorshift64::new(seed);
        Self {
            x: s.next_u32(),
            y: s.next_u32(),
            z: s.next_u32(),
            w: s.next_u32() | 1, // ensure non-zero state
        }
    }

    /// Advances the generator and returns the next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let t = self.x ^ (self.x << 11);
        self.x = self.y;
        self.y = self.z;
        self.z = self.w;
        self.w = (self.w ^ (self.w >> 19)) ^ (t ^ (t >> 8));
        self.w
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Adapts any uniform `f32` source into a standard-normal source using the
/// Box–Muller transform. Generates values in pairs and caches the second.
#[derive(Debug, Clone)]
pub struct BoxMuller<R> {
    rng: R,
    cached: Option<f32>,
}

/// A uniform `[0, 1)` source consumable by [`BoxMuller`].
pub trait UniformSource {
    /// Returns the next uniform value in `[0, 1)`.
    fn uniform(&mut self) -> f32;
}

impl UniformSource for Xorshift32 {
    fn uniform(&mut self) -> f32 {
        self.next_f32()
    }
}

impl UniformSource for Xorshift64 {
    fn uniform(&mut self) -> f32 {
        self.next_f32()
    }
}

impl UniformSource for Xorshift128 {
    fn uniform(&mut self) -> f32 {
        self.next_f32()
    }
}

impl<R: UniformSource> BoxMuller<R> {
    /// Wraps a uniform source.
    pub fn new(rng: R) -> Self {
        Self { rng, cached: None }
    }

    /// Returns the next standard-normal (`N(0, 1)`) variate.
    pub fn next_normal(&mut self) -> f32 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        // Avoid u1 == 0 (ln(0) = -inf).
        let mut u1 = self.rng.uniform();
        while u1 <= f32::EPSILON {
            u1 = self.rng.uniform();
        }
        let u2 = self.rng.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Consumes the adapter and returns the wrapped source.
    pub fn into_inner(self) -> R {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift32_is_deterministic() {
        let mut a = Xorshift32::new(7);
        let mut b = Xorshift32::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn xorshift32_zero_seed_is_remapped() {
        let mut r = Xorshift32::new(0);
        assert_ne!(r.next_u32(), 0);
    }

    #[test]
    fn xorshift32_known_sequence_differs_across_seeds() {
        let mut a = Xorshift32::new(1);
        let mut b = Xorshift32::new(2);
        let sa: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let sb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn next_f32_in_unit_interval() {
        let mut r = Xorshift32::new(99);
        for _ in 0..10_000 {
            let v = r.next_f32();
            assert!((0.0..1.0).contains(&v), "{v} out of [0,1)");
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xorshift32::new(5);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        Xorshift32::new(5).next_below(0);
    }

    #[test]
    fn next_range_is_within_bounds() {
        let mut r = Xorshift32::new(5);
        for _ in 0..1000 {
            let v = r.next_range(-2.5, 3.5);
            assert!((-2.5..3.5).contains(&v));
        }
    }

    #[test]
    fn xorshift64_and_128_produce_nonconstant_streams() {
        let mut r64 = Xorshift64::new(3);
        let mut r128 = Xorshift128::new(3);
        let v64: Vec<u64> = (0..16).map(|_| r64.next_u64()).collect();
        let v128: Vec<u32> = (0..16).map(|_| r128.next_u32()).collect();
        assert!(v64.windows(2).any(|w| w[0] != w[1]));
        assert!(v128.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn box_muller_moments_are_plausible() {
        let mut n = BoxMuller::new(Xorshift128::new(42));
        let samples: Vec<f32> = (0..200_000).map(|_| n.next_normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / samples.len() as f32;
        let var: f32 =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn box_muller_uniform_mean_matches() {
        let mut r = Xorshift64::new(11);
        let mean: f32 = (0..100_000).map(|_| r.next_f32()).sum::<f32>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
