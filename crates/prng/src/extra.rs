//! Additional generators: xorwow (the xorshift variant used by CUDA's
//! cuRAND, relevant because the paper's GPU substrate generates inits with
//! it) and splitmix64 (the stateless mixer underlying [`crate::regen_normal`],
//! exposed as a sequential generator for completeness).

/// Marsaglia's xorwow: a 160-bit xorshift state plus a Weyl counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xorwow {
    x: [u32; 5],
    counter: u32,
}

impl Xorwow {
    /// Creates a generator, expanding `seed` into the 5-word state.
    pub fn new(seed: u64) -> Self {
        let mut s = crate::Xorshift64::new(seed);
        let mut x = [0u32; 5];
        for w in &mut x {
            *w = s.next_u32();
        }
        if x.iter().all(|&w| w == 0) {
            x[0] = 1;
        }
        Self { x, counter: 0 }
    }

    /// Advances the generator and returns the next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let mut t = self.x[4];
        let s = self.x[0];
        self.x[4] = self.x[3];
        self.x[3] = self.x[2];
        self.x[2] = self.x[1];
        self.x[1] = s;
        t ^= t >> 2;
        t ^= t << 1;
        t ^= s ^ (s << 4);
        self.x[0] = t;
        self.counter = self.counter.wrapping_add(362437);
        t.wrapping_add(self.counter)
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl crate::xorshift::UniformSource for Xorwow {
    fn uniform(&mut self) -> f32 {
        self.next_f32()
    }
}

/// Sequential splitmix64 — one 64-bit state word, extremely fast, used
/// here for state expansion and as a reference stream in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed` (all seeds are valid, including 0).
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Advances the generator and returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl crate::xorshift::UniformSource for SplitMix64 {
    fn uniform(&mut self) -> f32 {
        self.next_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::chi_square_uniform;

    #[test]
    fn xorwow_is_deterministic_and_uniform() {
        let mut a = Xorwow::new(3);
        let mut b = Xorwow::new(3);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let samples: Vec<f32> = (0..50_000).map(|_| a.next_f32()).collect();
        let stat = chi_square_uniform(&samples, 100);
        assert!(stat < 148.0, "chi2 {stat}");
    }

    #[test]
    fn splitmix_is_deterministic_and_uniform() {
        let mut a = SplitMix64::new(0); // zero seed is fine for splitmix
        let mut b = SplitMix64::new(0);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let samples: Vec<f32> = (0..50_000).map(|_| a.next_f32()).collect();
        let stat = chi_square_uniform(&samples, 100);
        assert!(stat < 148.0, "chi2 {stat}");
    }

    #[test]
    fn generators_differ_across_seeds() {
        let a: Vec<u32> = {
            let mut g = Xorwow::new(1);
            (0..8).map(|_| g.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut g = Xorwow::new(2);
            (0..8).map(|_| g.next_u32()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn box_muller_over_xorwow_is_normal() {
        let mut n = crate::BoxMuller::new(Xorwow::new(11));
        let samples: Vec<f32> = (0..50_000).map(|_| n.next_normal()).collect();
        let d = crate::stats::ks_statistic_normal(&samples);
        assert!(d * (samples.len() as f64).sqrt() < 1.95);
    }
}
