//! RAII wall-time spans over a process-wide phase registry.
//!
//! `Span::enter("gemm")` starts a timer; dropping the span adds the
//! elapsed nanoseconds to the global total for `"gemm"`. Spans nest
//! (a thread-local depth tracks containment) and cost a single relaxed
//! atomic load when tracing is disabled, so instrumentation can stay in
//! the hot paths permanently.
//!
//! Totals are drained with [`take_phase_totals`] — the trainer does this
//! once per epoch to report per-phase time sums — or read non-destructively
//! with [`phase_totals`].

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Bit 0: phase-total timing ([`set_enabled`]). Bit 1: timeline tracing
/// ([`crate::trace::start_tracing`]). Bit 2: the always-on flight
/// recorder ([`crate::flightrec::enable`]). One byte so the disabled hot
/// path stays a single relaxed load even with all three subsystems
/// present.
const FLAG_TIMING: u8 = 1;
pub(crate) const FLAG_TRACING: u8 = 2;
pub(crate) const FLAG_FLIGHTREC: u8 = 4;

static FLAGS: AtomicU8 = AtomicU8::new(0);

fn set_flag(mask: u8, on: bool) {
    if on {
        FLAGS.fetch_or(mask, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!mask, Ordering::Relaxed);
    }
}

/// One relaxed load of the whole flags byte — the only cost an
/// instrumentation site pays while every subsystem is off.
pub(crate) fn flags() -> u8 {
    FLAGS.load(Ordering::Relaxed)
}

pub(crate) fn set_tracing_flag(on: bool) {
    set_flag(FLAG_TRACING, on);
}

pub(crate) fn is_tracing_flag() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_TRACING != 0
}

pub(crate) fn set_flightrec_flag(on: bool) {
    set_flag(FLAG_FLIGHTREC, on);
}

pub(crate) fn is_flightrec_flag() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_FLIGHTREC != 0
}

fn registry() -> &'static Mutex<HashMap<&'static str, PhaseStat>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, PhaseStat>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Current span nesting depth on this thread. The trace buffer uses this
/// to publish a thread's events when its outermost span closes — scoped
/// worker threads (gemm) must not rely on their TLS destructor for
/// visibility, because `std::thread::scope` returns when the worker
/// *closure* finishes, which can be before OS-thread teardown runs the
/// destructor.
pub(crate) fn current_depth() -> usize {
    DEPTH.with(Cell::get)
}

/// Turns span recording on or off process-wide. Off by default; spans
/// created while disabled never touch the clock or the registry.
pub fn set_enabled(on: bool) {
    set_flag(FLAG_TIMING, on);
}

/// Whether span recording is currently enabled.
pub fn is_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_TIMING != 0
}

/// Accumulated wall time and entry count for one phase name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Total nanoseconds spent inside spans with this name.
    pub total_ns: u64,
    /// Number of completed spans with this name.
    pub count: u64,
}

impl PhaseStat {
    /// Total time in seconds.
    pub fn seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// A live timing span; records on drop.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    depth: usize,
    traced: bool,
}

impl Span {
    /// Starts a span named `name`. When both timing and tracing are
    /// disabled this is a no-op costing one relaxed atomic load.
    pub fn enter(name: &'static str) -> Self {
        Self::enter_with(name, &[])
    }

    /// Starts a span carrying numeric annotations (flop counts, byte
    /// counts) that end up in the trace's begin event `args`. The phase
    /// registry ignores them — annotations only matter on a timeline.
    pub fn enter_with(name: &'static str, args: &[(&'static str, f64)]) -> Self {
        // Mask to the bits spans care about: the flight recorder only
        // captures request-scoped async events, so its bit alone must not
        // push spans off the single-load fast path (or touch DEPTH).
        let flags = FLAGS.load(Ordering::Relaxed) & (FLAG_TIMING | FLAG_TRACING);
        if flags == 0 {
            return Self {
                name,
                start: None,
                depth: 0,
                traced: false,
            };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        let traced = flags & FLAG_TRACING != 0;
        if traced {
            crate::trace::record_begin(name, args);
        }
        Self {
            name,
            start: (flags & FLAG_TIMING != 0).then(Instant::now),
            depth,
            traced,
        }
    }

    /// The phase name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Nesting depth at entry (0 = outermost), or 0 when disabled.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether this span is live (timing or tracing was enabled at entry).
    pub fn is_recording(&self) -> bool {
        self.start.is_some() || self.traced
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.is_recording() {
            return;
        }
        // Close the trace event first (even if tracing was switched off
        // mid-span) so every recorded begin has a matching end.
        if self.traced {
            crate::trace::record_end(self.name);
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut reg = crate::lock_unpoisoned(registry());
        let stat = reg.entry(self.name).or_default();
        stat.total_ns += elapsed;
        stat.count += 1;
    }
}

/// A manual timer over the same monotonic clock the spans use, for code
/// that needs an elapsed-nanoseconds value rather than a named phase total
/// (e.g. the trainer's per-step latency histogram).
///
/// Clock access is deliberately confined to this crate: the training stack
/// is deterministic by contract (`dropback-lint`'s `wall-clock` rule), so
/// anything that reads time must go through telemetry, where it can only
/// ever *observe* a run — never steer it.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts a running stopwatch.
    pub fn started() -> Self {
        Self {
            start: Some(Instant::now()),
        }
    }

    /// Starts a stopwatch only when `on`; otherwise every later read is
    /// `None` and the clock is never touched.
    pub fn started_if(on: bool) -> Self {
        Self {
            start: on.then(Instant::now),
        }
    }

    /// Whether the stopwatch is running.
    pub fn is_running(&self) -> bool {
        self.start.is_some()
    }

    /// Nanoseconds since start, or `None` for a stopwatch that never ran.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start
            .map(|s| s.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }
}

/// Snapshot of all phase totals, sorted by name.
pub fn phase_totals() -> Vec<(&'static str, PhaseStat)> {
    let reg = crate::lock_unpoisoned(registry());
    let mut v: Vec<_> = reg.iter().map(|(&n, &s)| (n, s)).collect();
    v.sort_by_key(|&(n, _)| n);
    v
}

/// Drains and returns all phase totals, sorted by name. Subsequent spans
/// accumulate from zero — callers use this for per-interval (e.g.
/// per-epoch) phase breakdowns.
pub fn take_phase_totals() -> Vec<(&'static str, PhaseStat)> {
    let mut reg = crate::lock_unpoisoned(registry());
    let mut v: Vec<_> = reg.drain().collect();
    v.sort_by_key(|&(n, _)| n);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Span tests share the process-global registry and flags byte with
    /// the trace tests; serialize them all on one gate.
    use crate::test_gate as lock;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        set_enabled(false);
        let _ = take_phase_totals();
        {
            let s = Span::enter("phantom");
            assert!(!s.is_recording());
        }
        assert!(phase_totals().iter().all(|&(n, _)| n != "phantom"));
    }

    #[test]
    fn spans_accumulate_time_and_count() {
        let _g = lock();
        set_enabled(true);
        let _ = take_phase_totals();
        for _ in 0..3 {
            let _s = Span::enter("work");
            std::hint::black_box((0..100).sum::<u64>());
        }
        set_enabled(false);
        let totals = take_phase_totals();
        let (_, stat) = totals.iter().find(|&&(n, _)| n == "work").unwrap();
        assert_eq!(stat.count, 3);
        assert!(stat.total_ns > 0);
        assert!(stat.seconds() > 0.0);
    }

    #[test]
    fn spans_nest_and_track_depth() {
        let _g = lock();
        set_enabled(true);
        let _ = take_phase_totals();
        {
            let outer = Span::enter("outer");
            assert_eq!(outer.depth(), 0);
            {
                let inner = Span::enter("inner");
                assert_eq!(inner.depth(), 1);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let sibling = Span::enter("inner");
            assert_eq!(sibling.depth(), 1);
        }
        set_enabled(false);
        let totals = take_phase_totals();
        let get = |name: &str| totals.iter().find(|&&(n, _)| n == name).unwrap().1;
        assert_eq!(get("outer").count, 1);
        assert_eq!(get("inner").count, 2);
        // The inner spans ran inside the outer one.
        assert!(get("outer").total_ns >= get("inner").total_ns / 2);
    }

    #[test]
    fn stopwatch_measures_only_when_started() {
        let off = Stopwatch::started_if(false);
        assert!(!off.is_running());
        assert_eq!(off.elapsed_ns(), None);
        let on = Stopwatch::started();
        assert!(on.is_running());
        std::hint::black_box((0..100).sum::<u64>());
        let ns = on.elapsed_ns().unwrap();
        assert!(on.elapsed_ns().unwrap() >= ns, "monotone");
    }

    #[test]
    fn take_resets_totals() {
        let _g = lock();
        set_enabled(true);
        {
            let _s = Span::enter("once");
        }
        set_enabled(false);
        let first = take_phase_totals();
        assert!(first.iter().any(|&(n, _)| n == "once"));
        assert!(take_phase_totals().iter().all(|&(n, _)| n != "once"));
    }
}
