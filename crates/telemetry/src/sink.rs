//! Structured events and the sinks that consume them.
//!
//! Producers build an [`Event`] (a kind plus ordered key/value fields) and
//! hand it to an [`EventSink`]. Three implementations cover the stack's
//! needs: [`JsonlSink`] writes one JSON object per line for machines,
//! [`StderrSink`] renders a human-readable progress line, and [`NullSink`]
//! drops everything. [`TeeSink`] fans an event out to several sinks (the
//! CLI uses JSONL + stderr together).

use crate::json::Json;
use std::fs::File;
use std::io::{self, BufWriter, Write};

/// A structured telemetry event: a kind (`"epoch"`, `"step"`, ...) plus
/// ordered fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    kind: String,
    fields: Vec<(String, Json)>,
}

impl Event {
    /// Creates an event of the given kind with no fields.
    pub fn new(kind: &str) -> Self {
        Self {
            kind: kind.to_string(),
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.push(key, value);
        self
    }

    /// Appends a field in place.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) {
        self.fields.push((key.to_string(), value.into()));
    }

    /// The event kind.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The fields, in insertion order.
    pub fn fields(&self) -> &[(String, Json)] {
        &self.fields
    }

    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The event as a JSON object; the kind is the `"event"` key, first.
    pub fn to_json(&self) -> Json {
        let mut pairs = Vec::with_capacity(self.fields.len() + 1);
        pairs.push(("event".to_string(), Json::Str(self.kind.clone())));
        pairs.extend(self.fields.iter().cloned());
        Json::Obj(pairs)
    }

    /// A single human-readable line, e.g.
    /// `[epoch] epoch=3 train_loss=0.4102 val_acc=0.9120`.
    pub fn render_human(&self) -> String {
        let mut out = format!("[{}]", self.kind);
        for (k, v) in &self.fields {
            let rendered = match v {
                Json::Str(s) => s.clone(),
                Json::Num(n) if n.fract() != 0.0 => format!("{n:.4}"),
                other => other.render(),
            };
            out.push_str(&format!(" {k}={rendered}"));
        }
        out
    }
}

/// Consumes telemetry events.
pub trait EventSink {
    /// Handles one event.
    fn emit(&mut self, event: &Event);

    /// Flushes buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Drops every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &Event) {}
}

/// Renders each event as one human-readable line on stderr, keeping
/// stdout machine-parseable.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn emit(&mut self, event: &Event) {
        eprintln!("{}", event.render_human());
    }
}

/// Writes one JSON object per event, newline-delimited (JSONL).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(w: W) -> Self {
        Self { w }
    }

    /// Unwraps the inner writer (tests use this to inspect output).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        // Telemetry must not take down training: swallow I/O errors here
        // and let flush() report persistent ones.
        let _ = writeln!(self.w, "{}", event.to_json().render());
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// Fans each event out to several sinks in order.
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Box<dyn EventSink>>,
}

impl TeeSink {
    /// Creates a tee over the given sinks.
    pub fn new(sinks: Vec<Box<dyn EventSink>>) -> Self {
        Self { sinks }
    }

    /// Adds another sink.
    pub fn push(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl EventSink for TeeSink {
    fn emit(&mut self, event: &Event) {
        for s in &mut self.sinks {
            s.emit(event);
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event::new("epoch")
            .with("epoch", 3usize)
            .with("train_loss", 0.5f32)
            .with("model", "mnist-100-100")
    }

    #[test]
    fn event_json_leads_with_kind() {
        let line = sample().to_json().render();
        assert!(line.starts_with(r#"{"event":"epoch","#), "{line}");
        assert!(line.contains(r#""train_loss":0.5"#));
    }

    #[test]
    fn jsonl_sink_round_trips_through_parser() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&sample());
        sink.emit(&Event::new("done").with("ok", true));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("event").unwrap().as_str(), Some("epoch"));
        assert_eq!(first.get("epoch").unwrap().as_u64(), Some(3));
        assert_eq!(first.get("train_loss").unwrap().as_f64(), Some(0.5));
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn human_rendering_is_one_line() {
        let line = sample().render_human();
        assert!(line.starts_with("[epoch]"));
        assert!(line.contains("epoch=3"));
        assert!(line.contains("train_loss=0.5000"));
        assert!(line.contains("model=mnist-100-100"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn tee_fans_out() {
        struct CountSink(std::rc::Rc<std::cell::Cell<usize>>);
        impl EventSink for CountSink {
            fn emit(&mut self, _e: &Event) {
                self.0.set(self.0.get() + 1);
            }
        }
        let n = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut tee = TeeSink::new(vec![
            Box::new(CountSink(n.clone())),
            Box::new(CountSink(n.clone())),
            Box::new(NullSink),
        ]);
        assert_eq!(tee.len(), 3);
        tee.emit(&sample());
        tee.flush();
        assert_eq!(n.get(), 2);
    }

    #[test]
    fn event_get_finds_fields() {
        let e = sample();
        assert_eq!(e.kind(), "epoch");
        assert_eq!(e.get("epoch").unwrap().as_u64(), Some(3));
        assert!(e.get("nope").is_none());
        assert_eq!(e.fields().len(), 3);
    }
}
