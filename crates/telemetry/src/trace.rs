//! Timeline tracing: thread-aware begin/end/counter events with
//! monotonic timestamps, exportable as Chrome trace-event JSON.
//!
//! Where the span registry ([`crate::phase_totals`]) answers "how much
//! total time went into `gemm`?", the trace buffer answers "*when* did
//! each `gemm` run, on which thread, nested under what?" — the timeline
//! view Perfetto / `chrome://tracing` renders.
//!
//! Recording is lock-cheap: each thread appends to a thread-local buffer
//! that is spilled into a process-global vector only when it fills up or
//! the thread's outermost span closes (one mutex lock per top-level span
//! per thread — for the tensor crate's scoped gemm workers that is once
//! per parallel matmul). The spill-on-outermost-end rule is also what
//! makes worker events *reliably* visible: `std::thread::scope` returns
//! when worker closures finish, which can be before OS-thread teardown
//! runs TLS destructors, so the destructor spill is only a backstop. With
//! tracing off, [`Span`](crate::Span) creation costs the same single
//! relaxed atomic load as before — the timing and tracing switches share
//! one flags byte.
//!
//! Clock access stays confined to this crate (`dropback-lint`'s
//! `wall-clock` rule): timestamps are nanoseconds since a process-wide
//! epoch pinned by the first [`start_tracing`] call.

use std::cell::RefCell;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;
use crate::span;

/// Event kind, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Duration begin (`"B"`).
    Begin,
    /// Duration end (`"E"`).
    End,
    /// Counter sample (`"C"`).
    Counter,
    /// Async begin (`"b"`), paired across threads by `id`.
    AsyncBegin,
    /// Async instant (`"n"`), a point annotation on an async lane.
    AsyncInstant,
    /// Async end (`"e"`), closing the `"b"` with the same name and `id`.
    AsyncEnd,
}

impl TracePhase {
    /// The single-letter Chrome trace-event phase code.
    pub fn code(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Counter => "C",
            TracePhase::AsyncBegin => "b",
            TracePhase::AsyncInstant => "n",
            TracePhase::AsyncEnd => "e",
        }
    }

    /// Whether this is one of the async phases (`"b"`/`"n"`/`"e"`).
    pub fn is_async(self) -> bool {
        matches!(
            self,
            TracePhase::AsyncBegin | TracePhase::AsyncInstant | TracePhase::AsyncEnd
        )
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Nanoseconds since the tracing epoch (monotonic).
    pub ts_ns: u64,
    /// Sequential id of the recording thread (0 = first recorder).
    pub tid: u64,
    /// Begin / End / Counter / async begin / instant / end.
    pub phase: TracePhase,
    /// Span or counter name.
    pub name: &'static str,
    /// Pairing id for async phases (e.g. the serving request id);
    /// `None` for synchronous B/E/C events.
    pub id: Option<u64>,
    /// Numeric annotations (e.g. `("flops", 2.0 * m * n * k)`).
    pub args: Vec<(&'static str, f64)>,
}

/// Thread-local buffer size that triggers a spill to the global vector.
const LOCAL_SPILL: usize = 1024;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn global_buf() -> &'static Mutex<Vec<TraceRecord>> {
    static BUF: OnceLock<Mutex<Vec<TraceRecord>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

struct LocalBuf {
    tid: u64,
    records: Vec<TraceRecord>,
}

impl LocalBuf {
    fn new() -> Self {
        Self {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            records: Vec::new(),
        }
    }

    fn spill(&mut self) {
        if self.records.is_empty() {
            return;
        }
        let mut global = crate::lock_unpoisoned(global_buf());
        global.append(&mut self.records);
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        // Backstop only: a thread's events normally publish when its
        // outermost span closes (see `push`). The destructor catches
        // counters or still-open spans left behind on an exiting thread.
        self.spill();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

/// Turns timeline tracing on process-wide. The first call pins the
/// timestamp epoch; later events are relative to it.
pub fn start_tracing() {
    let _ = epoch();
    span::set_tracing_flag(true);
}

/// Turns timeline tracing off. Spans already open still record their
/// pending `End` event so the exported trace stays balanced.
pub fn stop_tracing() {
    span::set_tracing_flag(false);
}

/// Whether timeline tracing is currently on.
pub fn is_tracing() -> bool {
    span::is_tracing_flag()
}

/// Nanoseconds since the tracing epoch. Shared with the flight recorder
/// so every timestamp in the process is on one scale — and so the
/// `wall-clock` lint's clock allowlist never has to grow for it.
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

fn push(phase: TracePhase, name: &'static str, args: Vec<(&'static str, f64)>) {
    push_at(now_ns(), phase, name, None, args);
}

fn push_at(
    ts_ns: u64,
    phase: TracePhase,
    name: &'static str,
    id: Option<u64>,
    args: Vec<(&'static str, f64)>,
) {
    // An End at depth <= 1 closes this thread's outermost span: publish
    // now, because on a scoped worker thread nothing later is guaranteed
    // to run before the spawning scope returns (TLS destructors race with
    // `thread::scope` exit). Depth is still pre-decrement here — the Span
    // drop records the End before unwinding its depth. Async events
    // publish immediately for the same reason: request lanes cross
    // threads whose lifetimes nobody joins (connection handlers), so an
    // event parked in their TLS could miss the export and leave a lane
    // half-open in an otherwise balanced trace.
    let publish = (phase == TracePhase::End && span::current_depth() <= 1) || phase.is_async();
    LOCAL.with(|l| {
        // A record emitted while this thread's buffer is mid-teardown (the
        // TLS destructor is running) is dropped rather than resurrecting
        // the destroyed cell.
        if let Ok(mut l) = l.try_borrow_mut() {
            let tid = l.tid;
            l.records.push(TraceRecord {
                ts_ns,
                tid,
                phase,
                name,
                id,
                args,
            });
            if l.records.len() >= LOCAL_SPILL || publish {
                l.spill();
            }
        }
    });
}

/// Records a duration-begin event. Called by [`Span`](crate::Span) when
/// tracing is on; `args` are numeric annotations such as flop counts.
pub(crate) fn record_begin(name: &'static str, args: &[(&'static str, f64)]) {
    push(TracePhase::Begin, name, args.to_vec());
}

/// Records the matching duration-end event. Unconditional: a span that
/// recorded a `Begin` always closes it, even if tracing was switched off
/// in between, so every exported trace is balanced.
pub(crate) fn record_end(name: &'static str) {
    push(TracePhase::End, name, Vec::new());
}

/// Records a counter sample (a Chrome `"C"` event), e.g. the per-epoch
/// weight-diffusion distance. No-op when tracing is off.
pub fn record_counter(name: &'static str, value: f64) {
    if !is_tracing() {
        return;
    }
    push(TracePhase::Counter, name, vec![("value", value)]);
}

/// Dispatches one async event to every subsystem whose flag is set: the
/// trace buffer (timeline tracing) and the flight recorder. Costs a
/// single relaxed atomic load when both are off — the same zero-overhead
/// contract the span fast path keeps.
fn async_event(phase: TracePhase, name: &'static str, id: u64, args: &[(&'static str, f64)]) {
    let flags = span::flags();
    if flags & (span::FLAG_TRACING | span::FLAG_FLIGHTREC) == 0 {
        return;
    }
    async_dispatch(
        phase,
        name,
        id,
        args,
        flags & span::FLAG_TRACING != 0,
        flags & span::FLAG_FLIGHTREC != 0,
    );
}

/// Like [`async_event`], but the trace-buffer decision is the caller's
/// `traced` snapshot, not the live flag. Emitters whose begin and end
/// run on different threads (or far apart in time) snapshot
/// [`is_tracing`] once when the lane opens and pass it to every event of
/// that lane — otherwise a request in flight while tracing toggles
/// records an end without its begin (or vice versa) and the exported
/// trace fails strict pairing. The flight recorder keeps following its
/// own live flag: its ring tolerates unpaired events by demoting them at
/// dump time.
fn async_event_for(
    traced: bool,
    phase: TracePhase,
    name: &'static str,
    id: u64,
    args: &[(&'static str, f64)],
) {
    let recording = span::flags() & span::FLAG_FLIGHTREC != 0;
    if !traced && !recording {
        return;
    }
    async_dispatch(phase, name, id, args, traced, recording);
}

fn async_dispatch(
    phase: TracePhase,
    name: &'static str,
    id: u64,
    args: &[(&'static str, f64)],
    traced: bool,
    recording: bool,
) {
    let ts_ns = now_ns();
    if recording {
        crate::flightrec::record(phase, name, id, ts_ns, args.first().copied());
    }
    if traced {
        // Unconditional push: a lane whose begin was traced always gets
        // its end into the buffer, even if tracing stopped in between.
        push_at(ts_ns, phase, name, Some(id), args.to_vec());
    }
}

/// Opens an async lane (`ph: "b"`) named `name`, keyed by `id`. The lane
/// stays open — across threads — until [`async_end`] records the same
/// name and id. Used for request-scoped serving timelines where one
/// request crosses the connection thread, the batch worker, and back.
pub fn async_begin(name: &'static str, id: u64, args: &[(&'static str, f64)]) {
    async_event(TracePhase::AsyncBegin, name, id, args);
}

/// Drops an instant annotation (`ph: "n"`) onto the async lane `id`,
/// e.g. per-batch fill/generation/regen annotations.
pub fn async_instant(name: &'static str, id: u64, args: &[(&'static str, f64)]) {
    async_event(TracePhase::AsyncInstant, name, id, args);
}

/// Closes the async lane opened by [`async_begin`] with the same `name`
/// and `id`, optionally carrying closing annotations (e.g. status).
pub fn async_end(name: &'static str, id: u64, args: &[(&'static str, f64)]) {
    async_event(TracePhase::AsyncEnd, name, id, args);
}

/// [`async_begin`] with the trace decision snapshotted by the caller at
/// lane-open time (see [`is_tracing`]): every event of one lane must use
/// the same snapshot so the lane's begin/end pairing survives tracing
/// being switched on or off while the lane is open.
pub fn async_begin_for(traced: bool, name: &'static str, id: u64, args: &[(&'static str, f64)]) {
    async_event_for(traced, TracePhase::AsyncBegin, name, id, args);
}

/// [`async_instant`] under a caller-held trace decision ([`async_begin_for`]).
pub fn async_instant_for(traced: bool, name: &'static str, id: u64, args: &[(&'static str, f64)]) {
    async_event_for(traced, TracePhase::AsyncInstant, name, id, args);
}

/// [`async_end`] under a caller-held trace decision ([`async_begin_for`]).
pub fn async_end_for(traced: bool, name: &'static str, id: u64, args: &[(&'static str, f64)]) {
    async_event_for(traced, TracePhase::AsyncEnd, name, id, args);
}

/// Flushes the calling thread's buffer and drains every record collected
/// so far, sorted by timestamp. Typically called once, after
/// [`stop_tracing`], to export the run.
pub fn take_trace() -> Vec<TraceRecord> {
    LOCAL.with(|l| {
        if let Ok(mut l) = l.try_borrow_mut() {
            l.spill();
        }
    });
    let mut records = {
        let mut global = crate::lock_unpoisoned(global_buf());
        std::mem::take(&mut *global)
    };
    records.sort_by_key(|r| r.ts_ns);
    records
}

fn event_json(r: &TraceRecord) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::from(r.name)),
        ("cat".to_string(), Json::from("dropback")),
        ("ph".to_string(), Json::from(r.phase.code())),
        ("ts".to_string(), Json::Num(r.ts_ns as f64 / 1_000.0)),
        ("pid".to_string(), Json::Num(1.0)),
        ("tid".to_string(), Json::Num(r.tid as f64)),
    ];
    if let Some(id) = r.id {
        fields.push(("id".to_string(), Json::Num(id as f64)));
    }
    if !r.args.is_empty() {
        let args: Vec<(String, Json)> = r
            .args
            .iter()
            .map(|&(k, v)| (k.to_string(), Json::Num(v)))
            .collect();
        fields.push(("args".to_string(), Json::Obj(args)));
    }
    Json::Obj(fields)
}

/// Renders records as a Chrome trace-event JSON document (object form,
/// `{"traceEvents": [...]}`), loadable in Perfetto or `chrome://tracing`.
/// Timestamps are microseconds as the format requires.
pub fn chrome_trace_json(records: &[TraceRecord]) -> Json {
    let events: Vec<Json> = records.iter().map(event_json).collect();
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::from("ms")),
    ])
}

/// Writes records to `w` as Chrome trace-event JSON, one event per line
/// inside the `traceEvents` array so large traces stay diff- and
/// grep-friendly.
pub fn write_chrome_trace<W: Write>(w: &mut W, records: &[TraceRecord]) -> io::Result<()> {
    writeln!(w, "{{\"traceEvents\":[")?;
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        writeln!(w, "{}{}", event_json(r).render(), comma)?;
    }
    writeln!(w, "],\"displayTimeUnit\":\"ms\"}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace tests share the process-global buffer and flags byte with
    /// the span tests, so assertions filter on names unique to this
    /// module and everything serializes on the crate-wide gate.
    use crate::test_gate as lock;

    fn drain_named(prefix: &str) -> Vec<TraceRecord> {
        take_trace()
            .into_iter()
            .filter(|r| r.name.starts_with(prefix))
            .collect()
    }

    #[test]
    fn spans_emit_paired_begin_end_with_args() {
        let _g = lock();
        let _ = take_trace();
        start_tracing();
        {
            let _outer = crate::Span::enter("trtest-outer");
            let _inner =
                crate::Span::enter_with("trtest-inner", &[("flops", 128.0), ("bytes", 64.0)]);
        }
        stop_tracing();
        let records = drain_named("trtest-");
        assert_eq!(records.len(), 4);
        assert_eq!(
            records
                .iter()
                .filter(|r| r.phase == TracePhase::Begin)
                .count(),
            2
        );
        let inner_begin = records
            .iter()
            .find(|r| r.name == "trtest-inner" && r.phase == TracePhase::Begin)
            .map(|r| r.args.clone());
        assert_eq!(
            inner_begin,
            Some(vec![("flops", 128.0), ("bytes", 64.0)]),
            "begin event carries the annotations"
        );
        // LIFO nesting on one thread: outer B, inner B, inner E, outer E.
        let order: Vec<_> = records.iter().map(|r| (r.name, r.phase)).collect();
        assert_eq!(
            order,
            vec![
                ("trtest-outer", TracePhase::Begin),
                ("trtest-inner", TracePhase::Begin),
                ("trtest-inner", TracePhase::End),
                ("trtest-outer", TracePhase::End),
            ]
        );
        let tid = records[0].tid;
        assert!(records.iter().all(|r| r.tid == tid));
    }

    #[test]
    fn lane_snapshots_survive_tracing_toggles_in_both_directions() {
        let _g = lock();
        let _ = take_trace();
        // A lane opened before tracing started must stay silent all the
        // way through, even when its end lands mid-trace — otherwise the
        // export holds an `e` with no `b` and fails strict pairing.
        let stale = is_tracing();
        assert!(!stale);
        async_begin_for(stale, "trtest-lane", 1, &[]);
        start_tracing();
        async_end_for(stale, "trtest-lane", 1, &[]);
        // A lane opened while tracing is on must close in the buffer
        // even though tracing stopped while it was open.
        let live = is_tracing();
        assert!(live);
        async_begin_for(live, "trtest-lane", 2, &[]);
        stop_tracing();
        async_end_for(live, "trtest-lane", 2, &[("status", 200.0)]);
        let records = drain_named("trtest-lane");
        let shape: Vec<_> = records.iter().map(|r| (r.phase, r.id)).collect();
        assert_eq!(
            shape,
            vec![
                (TracePhase::AsyncBegin, Some(2)),
                (TracePhase::AsyncEnd, Some(2)),
            ],
            "only the lane whose begin was traced appears, and it is balanced"
        );
    }

    #[test]
    fn counters_record_only_while_tracing() {
        let _g = lock();
        let _ = take_trace();
        record_counter("trtest-gauge", 1.0);
        start_tracing();
        record_counter("trtest-gauge", 2.5);
        stop_tracing();
        record_counter("trtest-gauge", 3.0);
        let records = drain_named("trtest-gauge");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].phase, TracePhase::Counter);
        assert_eq!(records[0].args, vec![("value", 2.5)]);
    }

    #[test]
    fn worker_thread_events_flush_on_thread_exit() {
        let _g = lock();
        let _ = take_trace();
        start_tracing();
        let main_tid = LOCAL.with(|l| l.borrow().tid);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _s = crate::Span::enter("trtest-worker");
            });
        });
        stop_tracing();
        let records = drain_named("trtest-worker");
        assert_eq!(records.len(), 2, "outermost-end spill published both");
        assert_ne!(records[0].tid, main_tid);
        assert_eq!(records[0].tid, records[1].tid);
    }

    #[test]
    fn tracing_off_records_nothing() {
        let _g = lock();
        let _ = take_trace();
        crate::set_enabled(false);
        stop_tracing();
        crate::flightrec::disable();
        {
            let s = crate::Span::enter_with("trtest-off", &[("flops", 1.0)]);
            // With both the timing and tracing flags clear the span took
            // the single-atomic-load fast path: no clock read, no buffer
            // push, nothing to account for on Drop.
            assert!(!s.is_recording());
        }
        record_counter("trtest-off", 2.0);
        // The async sites share the contract: with tracing and the flight
        // recorder both off they return after the one flags load — no
        // clock read, no buffer push, no ring write.
        async_begin("trtest-off", 7, &[("queued", 1.0)]);
        async_instant("trtest-off", 7, &[("fill", 3.0)]);
        async_end("trtest-off", 7, &[]);
        assert!(drain_named("trtest-off").is_empty());
        assert!(crate::flightrec::dump_records()
            .iter()
            .all(|r| r.name != "trtest-off"));
    }

    #[test]
    fn async_events_pair_by_id_across_threads() {
        let _g = lock();
        let _ = take_trace();
        start_tracing();
        // Two interleaved request lanes whose begin/end land on different
        // threads, as they do in the real server (conn thread vs batch
        // worker writes the instants).
        async_begin("trtest-async-req", 1, &[("queued", 1.0)]);
        async_begin("trtest-async-req", 2, &[]);
        std::thread::scope(|s| {
            s.spawn(|| {
                async_instant("trtest-async-batch", 1, &[("fill", 2.0)]);
                async_end("trtest-async-req", 2, &[]);
                async_end("trtest-async-req", 1, &[("status", 200.0)]);
            });
        });
        stop_tracing();
        let records = drain_named("trtest-async");
        assert_eq!(records.len(), 5);
        assert!(records.iter().all(|r| r.phase.is_async()));
        let lane1: Vec<_> = records
            .iter()
            .filter(|r| r.id == Some(1) && r.name == "trtest-async-req")
            .map(|r| r.phase)
            .collect();
        assert_eq!(lane1, vec![TracePhase::AsyncBegin, TracePhase::AsyncEnd]);

        // The Chrome export carries ph b/n/e plus the numeric id.
        let mut out = Vec::new();
        write_chrome_trace(&mut out, &records).expect("write to Vec cannot fail");
        let doc = Json::parse(&String::from_utf8(out).expect("utf8")).expect("parses");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents");
        let phases: Vec<_> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert_eq!(phases, vec!["b", "b", "n", "e", "e"]);
        assert!(events
            .iter()
            .all(|e| e.get("id").and_then(Json::as_u64).is_some()));
    }

    #[test]
    fn every_begin_has_matching_end_on_same_tid() {
        let _g = lock();
        let _ = take_trace();
        start_tracing();
        {
            let _outer = crate::Span::enter("trtest-pair-outer");
            let _inner = crate::Span::enter("trtest-pair-inner");
            std::thread::scope(|s| {
                for _ in 0..3 {
                    s.spawn(|| {
                        let _w = crate::Span::enter("trtest-pair-worker");
                    });
                }
            });
        }
        stop_tracing();
        let records = drain_named("trtest-pair");
        let mut out = Vec::new();
        write_chrome_trace(&mut out, &records).expect("write to Vec cannot fail");
        let text = String::from_utf8(out).expect("trace output is UTF-8");
        let doc = Json::parse(&text).expect("exported trace parses back");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 10, "2 nested + 3 worker spans, B+E each");
        // Replay per-tid stacks: every E must close the innermost open B
        // of the same name on its own thread, and no B may stay open.
        let mut stacks: std::collections::BTreeMap<u64, Vec<&str>> = Default::default();
        for e in events {
            let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
            let name = e.get("name").and_then(Json::as_str).expect("name");
            match e.get("ph").and_then(Json::as_str).expect("ph") {
                "B" => stacks.entry(tid).or_default().push(name),
                "E" => assert_eq!(
                    stacks.entry(tid).or_default().pop(),
                    Some(name),
                    "E must close the innermost B of the same name on tid {tid}"
                ),
                other => panic!("unexpected phase {other}"),
            }
        }
        assert!(stacks.values().all(Vec::is_empty), "no B left open");
    }

    #[test]
    fn chrome_export_round_trips_through_json_parse() {
        let _g = lock();
        let _ = take_trace();
        start_tracing();
        {
            let _s = crate::Span::enter_with("trtest-export", &[("flops", 42.0)]);
        }
        record_counter("trtest-export-counter", 7.0);
        stop_tracing();
        let records = drain_named("trtest-export");
        let mut out = Vec::new();
        write_chrome_trace(&mut out, &records).expect("write to Vec cannot fail");
        let text = String::from_utf8(out).expect("trace output is UTF-8");
        let doc = Json::parse(&text).expect("exported trace parses back");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        let phases: Vec<_> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert_eq!(phases, vec!["B", "E", "C"]);
        let begin = &events[0];
        assert_eq!(
            begin
                .get("args")
                .and_then(|a| a.get("flops"))
                .and_then(Json::as_f64),
            Some(42.0)
        );
        assert_eq!(begin.get("pid").and_then(Json::as_u64), Some(1));
        // ts is microseconds and non-decreasing across the pair.
        let ts: Vec<_> = events
            .iter()
            .filter_map(|e| e.get("ts").and_then(Json::as_f64))
            .collect();
        assert!(ts[0] <= ts[1]);
    }
}
