//! A minimal hand-rolled JSON value: writer and parser.
//!
//! The sinks emit one JSON object per line (JSONL) and the snapshot
//! serializer produces a single document; both go through [`Json`] so the
//! output style stays uniform across the workspace. The parser exists so
//! tests (and downstream tooling) can round-trip sink output without an
//! external dependency.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so rendered output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers survive the round trip exactly up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => render_number(*v, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error (with byte offset).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 && !(v == 0.0 && v.is_sign_negative()) {
        // Negative zero must skip the integer shortcut: `-0.0 as i64`
        // is 0, which would drop the sign bit on the wire.
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| format!("unterminated string at byte {}", *pos))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse()
        .map_err(|_| format!("bad number at byte {start}"))
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<f32> for Json {
    fn from(v: f32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_object() {
        let j = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Str("x\"y".into())),
            ("c".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(j.render(), r#"{"a":1,"b":"x\"y","c":[true,null]}"#);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(20000.0).render(), "20000");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_round_trips_render() {
        let j = Json::Obj(vec![
            ("epoch".into(), Json::Num(3.0)),
            ("loss".into(), Json::Num(0.125)),
            ("name".into(), Json::Str("a\nb\\c".into())),
            ("flags".into(), Json::Arr(vec![Json::Bool(false)])),
            ("none".into(), Json::Null),
        ]);
        let parsed = Json::parse(&j.render()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let j = Json::parse(" { \"a\" : [ 1 , { \"b\" : \"c\" } ] } ").unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            j.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"k":20000,"f":1.5,"s":"x","b":true}"#).unwrap();
        assert_eq!(j.get("k").unwrap().as_u64(), Some(20000));
        assert_eq!(j.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(j.get("f").unwrap().as_u64(), None);
        assert_eq!(j.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("b").unwrap().as_bool(), Some(true));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn unicode_escapes_parse() {
        // é is é; literal multibyte UTF-8 must survive as well.
        let j = Json::parse("\"A\\u00e9 é\"").unwrap();
        assert_eq!(j.as_str(), Some("Aé é"));
    }
}
