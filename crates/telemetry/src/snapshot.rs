//! Point-in-time serialization of a collector plus the span registry.

use crate::json::Json;
use crate::metrics::{bucket_upper, Collector};
use crate::span::{self, PhaseStat};
use std::fmt::Write as _;

/// Summary statistics of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Sample count (exact, maintained alongside the buckets).
    pub count: u64,
    /// Sum of samples (exact, so means never inherit bucket rounding).
    pub sum: f64,
    /// Mean sample.
    pub mean: f64,
    /// Median (bucket upper bound); `None` when empty.
    pub p50: Option<f64>,
    /// 90th percentile; `None` when empty.
    pub p90: Option<f64>,
    /// 99th percentile; `None` when empty.
    pub p99: Option<f64>,
    /// Per-bucket sample counts (log₂ bucket `i` covers `(2^(i−1), 2^i]`),
    /// carried so the Prometheus exposition can emit real buckets.
    pub buckets: Vec<u64>,
}

/// Everything a collector and the span registry know, frozen at one
/// instant, serializable to the workspace's hand-rolled JSON.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Span phase totals, sorted by name.
    pub phases: Vec<(String, PhaseStat)>,
}

impl TelemetrySnapshot {
    /// Captures a collector plus the current (non-drained) span totals.
    pub fn capture(collector: &Collector) -> Self {
        Self {
            counters: collector.counter_values(),
            gauges: collector.gauge_values(),
            histograms: collector
                .histogram_handles()
                .into_iter()
                .map(|(n, h)| {
                    (
                        n,
                        HistogramSummary {
                            count: h.count(),
                            sum: h.sum(),
                            mean: h.mean(),
                            p50: h.p50(),
                            p90: h.p90(),
                            p99: h.p99(),
                            buckets: h.bucket_counts(),
                        },
                    )
                })
                .collect(),
            phases: span::phase_totals()
                .into_iter()
                .map(|(n, s)| (n.to_string(), s))
                .collect(),
        }
    }

    /// Serializes to a JSON object.
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(n, h)| {
                            (
                                n.clone(),
                                Json::Obj(vec![
                                    ("count".into(), Json::from(h.count)),
                                    ("sum".into(), Json::from(h.sum)),
                                    ("mean".into(), Json::from(h.mean)),
                                    ("p50".into(), opt(h.p50)),
                                    ("p90".into(), opt(h.p90)),
                                    ("p99".into(), opt(h.p99)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "phases".into(),
                Json::Obj(
                    self.phases
                        .iter()
                        .map(|(n, s)| {
                            (
                                n.clone(),
                                Json::Obj(vec![
                                    ("total_ns".into(), Json::from(s.total_ns)),
                                    ("count".into(), Json::from(s.count)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders an aligned human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (n, v) in &self.counters {
                let _ = writeln!(out, "  {n:<28} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (n, v) in &self.gauges {
                let _ = writeln!(out, "  {n:<28} {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (n, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {n:<28} n={} sum={:.0} mean={:.1} p50={:.0} p90={:.0} p99={:.0}",
                    h.count,
                    h.sum,
                    h.mean,
                    h.p50.unwrap_or(0.0),
                    h.p90.unwrap_or(0.0),
                    h.p99.unwrap_or(0.0)
                );
            }
        }
        if !self.phases.is_empty() {
            out.push_str("phases:\n");
            for (n, s) in &self.phases {
                let _ = writeln!(out, "  {n:<28} {:.3}s over {} spans", s.seconds(), s.count);
            }
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// counters and gauges as single samples, histograms as cumulative
    /// `_bucket{le=...}` series plus exact `_sum` and `_count`. Metric
    /// names are sanitized (`serve.queue_ns` → `serve_queue_ns`); empty
    /// trailing buckets are elided, `le="+Inf"` always closes the series.
    pub fn render_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        let mut out = String::new();
        for (n, v) in &self.counters {
            let n = sanitize(n);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (n, v) in &self.gauges {
            let n = sanitize(n);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
        }
        for (n, h) in &self.histograms {
            let n = sanitize(n);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let last = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().take(last).enumerate() {
                cum += c;
                let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", bucket_upper(i));
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_serializes_and_parses_back() {
        let c = Collector::new();
        c.counter("steps").add(7);
        c.gauge("lr").set(0.125);
        c.histogram("step_ns").record(900.0);
        let snap = TelemetrySnapshot::capture(&c);
        let j = snap.to_json();
        let parsed = Json::parse(&j.render()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("steps")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        assert_eq!(
            parsed.get("gauges").unwrap().get("lr").unwrap().as_f64(),
            Some(0.125)
        );
        let h = parsed.get("histograms").unwrap().get("step_ns").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("p50").unwrap().as_f64(), Some(1024.0));
    }

    #[test]
    fn empty_histogram_serializes_null_quantiles() {
        let c = Collector::new();
        let _ = c.histogram("empty");
        let j = TelemetrySnapshot::capture(&c).to_json();
        let h = j.get("histograms").unwrap().get("empty").unwrap();
        assert_eq!(h.get("p50"), Some(&Json::Null));
    }

    #[test]
    fn prometheus_exposition_is_parseable_and_cumulative() {
        let c = Collector::new();
        c.counter("serve.requests").add(3);
        c.gauge("serve.model_epoch").set(2.0);
        let h = c.histogram("serve.queue_ns");
        h.record(1.0);
        h.record(1.0);
        h.record(3.0); // bucket 2 (upper 4)
        let text = TelemetrySnapshot::capture(&c).render_prometheus();

        // Names are sanitized and typed.
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 3\n"));
        assert!(text.contains("# TYPE serve_model_epoch gauge\nserve_model_epoch 2\n"));
        assert!(text.contains("# TYPE serve_queue_ns histogram"));
        // Buckets are cumulative, close with +Inf, and sum/count are exact.
        assert!(text.contains("serve_queue_ns_bucket{le=\"1\"} 2"));
        assert!(text.contains("serve_queue_ns_bucket{le=\"4\"} 3"));
        assert!(text.contains("serve_queue_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("serve_queue_ns_sum 5"));
        assert!(text.contains("serve_queue_ns_count 3"));

        // Structural parse: every non-comment line is `name{labels}? value`
        // with a numeric value, and cumulative bucket counts never decrease.
        let mut prev_bucket: Option<u64> = None;
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            assert!(
                name.chars()
                    .all(|ch| ch.is_ascii_alphanumeric() || "_:{}=\"+.".contains(ch)),
                "unexpected char in {name}"
            );
            let v: f64 = value.parse().expect("numeric value");
            if name.starts_with("serve_queue_ns_bucket") {
                let b = v as u64;
                assert!(prev_bucket.is_none_or(|p| b >= p), "cumulative");
                prev_bucket = Some(b);
            }
        }
    }

    #[test]
    fn render_lists_everything() {
        let c = Collector::new();
        c.counter("gemm_calls").add(3);
        c.gauge("tracked_k").set(20_000.0);
        c.histogram("gemm_ns").record(5000.0);
        let text = TelemetrySnapshot::capture(&c).render();
        assert!(text.contains("gemm_calls"));
        assert!(text.contains("tracked_k"));
        assert!(text.contains("gemm_ns"));
    }
}
