//! Named counters, gauges, and fixed-bucket histograms behind cheap
//! clonable handles.
//!
//! A [`Collector`] is a registry: asking for a metric by name either
//! creates it or returns a handle to the existing one, so independent
//! subsystems can share metrics without threading handles through every
//! call site. Handles are `Arc`-backed and update through atomics — a
//! recorded sample is one atomic add on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log-spaced histogram buckets; bucket `i` holds values
/// `v ≤ 2^i` (and `> 2^(i−1)` for `i > 0`), so the range spans 1 to 2^63 —
/// enough for nanosecond timings of anything from a single FMA to hours.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram with [`HISTOGRAM_BUCKETS`] log₂-spaced buckets.
///
/// Designed for non-negative values such as nanosecond durations or byte
/// sizes; values ≤ 1 land in the first bucket. Quantiles are answered by
/// bucket upper bound, i.e. within a factor of 2 — the right fidelity for
/// "did the gemm get slower", at a fixed 64-word footprint.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// Sum of raw values, as f64 bits updated by CAS.
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

/// Index of the bucket whose upper bound `2^i` first covers `v`.
pub fn bucket_index(v: f64) -> usize {
    if v <= 1.0 {
        return 0;
    }
    let x = if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v.ceil() as u64
    };
    // ceil(log2(x)) for x >= 2.
    let idx = 64 - (x - 1).leading_zeros() as usize;
    idx.min(HISTOGRAM_BUCKETS - 1)
}

/// The upper bound of bucket `i`, i.e. `2^i`.
pub fn bucket_upper(i: usize) -> f64 {
    (2.0f64).powi(i as i32)
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) as the upper bound of the bucket
    /// containing the ranked sample, or `None` for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let total = self.count();
        if total == 0 {
            return None;
        }
        // 1-based rank of the sample at quantile q (nearest-rank method).
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return Some(bucket_upper(i));
            }
        }
        Some(bucket_upper(HISTOGRAM_BUCKETS - 1))
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Per-bucket counts (for serialization).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// A registry of named metrics.
///
/// `counter` / `gauge` / `histogram` create-or-get by name, so the same
/// metric can be updated from anywhere that can reach the collector (or the
/// process-wide [`crate::global`] one).
#[derive(Debug, Default)]
pub struct Collector {
    counters: Mutex<Vec<(String, Counter)>>,
    gauges: Mutex<Vec<(String, Gauge)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle to the counter `name`, creating it at zero if absent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut list = crate::lock_unpoisoned(&self.counters);
        if let Some((_, c)) = list.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter(Arc::new(AtomicU64::new(0)));
        list.push((name.to_string(), c.clone()));
        c
    }

    /// A handle to the gauge `name`, creating it at zero if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut list = crate::lock_unpoisoned(&self.gauges);
        if let Some((_, g)) = list.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())));
        list.push((name.to_string(), g.clone()));
        g
    }

    /// A handle to the histogram `name`, creating it empty if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut list = crate::lock_unpoisoned(&self.histograms);
        if let Some((_, h)) = list.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::default());
        list.push((name.to_string(), h.clone()));
        h
    }

    /// Current counter values, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let mut v: Vec<_> = crate::lock_unpoisoned(&self.counters)
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        v.sort();
        v
    }

    /// Current gauge values, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        let mut v: Vec<_> = crate::lock_unpoisoned(&self.gauges)
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Handles to every registered histogram, sorted by name.
    pub fn histogram_handles(&self) -> Vec<(String, Arc<Histogram>)> {
        let mut v: Vec<_> = crate::lock_unpoisoned(&self.histograms)
            .iter()
            .map(|(n, h)| (n.clone(), h.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_by_name() {
        let c = Collector::new();
        let a = c.counter("steps");
        let b = c.counter("steps");
        a.inc();
        b.add(4);
        assert_eq!(c.counter("steps").get(), 5);
        assert_eq!(c.counter_values(), vec![("steps".to_string(), 5)]);
    }

    #[test]
    fn gauges_hold_last_value() {
        let c = Collector::new();
        let g = c.gauge("lr");
        g.set(0.1);
        g.set(0.05);
        assert_eq!(c.gauge("lr").get(), 0.05);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // v ≤ 1 → bucket 0; 2^i lands in bucket i; 2^i + ε in bucket i+1.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1.0), 0);
        assert_eq!(bucket_index(2.0), 1);
        assert_eq!(bucket_index(2.5), 2);
        assert_eq!(bucket_index(4.0), 2);
        assert_eq!(bucket_index(5.0), 3);
        assert_eq!(bucket_index(1024.0), 10);
        assert_eq!(bucket_index(1025.0), 11);
        assert_eq!(bucket_index(f64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(10), 1024.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let h = Histogram::default();
        h.record(100.0); // bucket 7, upper bound 128
        assert_eq!(h.quantile(0.0), Some(128.0));
        assert_eq!(h.p50(), Some(128.0));
        assert_eq!(h.p99(), Some(128.0));
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 100.0);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = Histogram::default();
        // 90 fast samples (bucket 0) and 10 slow ones (bucket 10).
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        assert_eq!(h.p50(), Some(1.0));
        assert_eq!(h.quantile(0.90), Some(1.0)); // rank 90 is the last fast one
        assert_eq!(h.p99(), Some(1024.0));
        assert_eq!(h.quantile(1.0), Some(1024.0));
        assert_eq!(h.mean(), (90.0 + 10_000.0) / 100.0);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let h = Histogram::default();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_handles_share_state() {
        let c = Collector::new();
        c.histogram("t").record(3.0);
        c.histogram("t").record(5.0);
        assert_eq!(c.histogram("t").count(), 2);
        assert_eq!(c.histogram_handles().len(), 1);
    }
}
