//! The always-on flight recorder: a fixed-capacity lock-free ring of
//! recent request-scoped events, dumpable as a valid Chrome trace even
//! after a crash.
//!
//! Timeline tracing ([`crate::trace`]) is opt-in and unbounded; it
//! answers questions you knew to ask before the run. The flight recorder
//! answers the other kind — "the server just shed load / forced a drain /
//! panicked, what were the last few thousand request events?" — by
//! keeping a bounded ring that is cheap enough to leave on in
//! production. Writers claim a slot with one relaxed `fetch_add` on a
//! process-wide write index and overwrite the oldest record; there are no
//! locks anywhere on the record path.
//!
//! Every slot is a fixed set of `AtomicU64` fields guarded by a
//! checksum written last. A dump recomputes the checksum and drops any
//! record a concurrent writer was mid-overwrite on, so readers never
//! observe a torn record — they observe either a consistent record or
//! nothing. The dump itself renders as Chrome trace JSON; async pairs
//! whose begin was already overwritten are demoted to instant events so
//! the file always passes `dropback-trace`'s strict pairing checks.
//!
//! The recorder never touches the clock directly: timestamps come from
//! the trace module's epoch ([`crate::trace::now_ns`]), keeping the
//! `wall-clock` lint's allowlist unchanged and every timestamp in the
//! process on one scale.

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Json;
use crate::span;
use crate::trace::{self, TracePhase, TraceRecord};

/// Number of ring slots. Power of two so the slot index is a mask.
pub const CAPACITY: usize = 4096;

/// Checksum salt: a valid record can never checksum to the all-zeroes
/// pattern a freshly allocated slot holds.
const SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// One ring slot. All fields are plain atomics — the ring needs no
/// `unsafe` and no locks; consistency is a checksum, not an exclusion.
#[derive(Default)]
struct Slot {
    /// Writer's ticket + 1 (so an untouched slot reads as 0 = empty).
    seq: AtomicU64,
    /// Nanoseconds since the tracing epoch.
    ts_ns: AtomicU64,
    /// Packed `phase_code << 56 | name_idx << 28 | key_idx`; indices
    /// point into the intern table, `key_idx` 0 = no annotation.
    meta: AtomicU64,
    /// The async pairing id (serving request id, batch id, ...).
    id: AtomicU64,
    /// Bit pattern of the annotation value (`f64::to_bits`).
    value_bits: AtomicU64,
    /// XOR of every field above with [`SALT`], stored last (release) so
    /// a reader that validates it knows the fields belong together.
    check: AtomicU64,
}

fn checksum(seq: u64, ts_ns: u64, meta: u64, id: u64, value_bits: u64) -> u64 {
    seq ^ ts_ns.rotate_left(17) ^ meta.rotate_left(29) ^ id.rotate_left(41) ^ value_bits ^ SALT
}

fn ring() -> &'static [Slot] {
    static RING: OnceLock<Vec<Slot>> = OnceLock::new();
    RING.get_or_init(|| (0..CAPACITY).map(|_| Slot::default()).collect())
}

/// The relaxed-atomic write index; `fetch_add(1)` is the whole
/// slot-claim protocol.
static WRITE_IDX: AtomicU64 = AtomicU64::new(0);

/// Intern table mapping small indices back to the `&'static str` names
/// the record sites used. Index 0 is reserved for "no name".
fn interned() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(vec![""]))
}

thread_local! {
    /// Per-thread cache of (`&'static str` address, len) → intern index,
    /// so the record hot path takes the intern lock once per new name
    /// per thread, not once per event.
    static INTERN_CACHE: std::cell::RefCell<HashMap<(usize, usize), u64>> =
        std::cell::RefCell::new(HashMap::new());
}

fn intern(name: &'static str) -> u64 {
    let key = (name.as_ptr() as usize, name.len());
    let cached = INTERN_CACHE.with(|c| c.try_borrow().ok().and_then(|c| c.get(&key).copied()));
    if let Some(idx) = cached {
        return idx;
    }
    let idx = {
        let mut names = crate::lock_unpoisoned(interned());
        match names.iter().position(|&n| n == name) {
            Some(i) => i as u64,
            None => {
                names.push(name);
                (names.len() - 1) as u64
            }
        }
    };
    INTERN_CACHE.with(|c| {
        if let Ok(mut c) = c.try_borrow_mut() {
            c.insert(key, idx);
        }
    });
    idx
}

fn resolve(idx: u64) -> Option<&'static str> {
    let names = crate::lock_unpoisoned(interned());
    names.get(idx as usize).copied().filter(|n| !n.is_empty())
}

fn phase_from_code(code: u64) -> Option<TracePhase> {
    match code {
        1 => Some(TracePhase::AsyncBegin),
        2 => Some(TracePhase::AsyncInstant),
        3 => Some(TracePhase::AsyncEnd),
        _ => None,
    }
}

fn phase_code(phase: TracePhase) -> u64 {
    match phase {
        TracePhase::AsyncBegin => 1,
        TracePhase::AsyncInstant => 2,
        TracePhase::AsyncEnd => 3,
        // Synchronous phases are never routed here; map them to the
        // instant code so an accidental caller still dumps cleanly.
        _ => 2,
    }
}

/// Turns the flight recorder on. Also pins the shared tracing epoch so
/// the first recorded event does not pay the `OnceLock` initialization.
pub fn enable() {
    let _ = trace::now_ns();
    let _ = ring();
    span::set_flightrec_flag(true);
}

/// Turns the flight recorder off. The ring keeps its contents; a later
/// dump still shows the most recent events from before the switch.
pub fn disable() {
    span::set_flightrec_flag(false);
}

/// Whether the flight recorder is currently on.
pub fn is_enabled() -> bool {
    span::is_flightrec_flag()
}

/// Records one async event into the ring, overwriting the oldest.
/// Called from the trace module's async dispatch under the flags check.
pub(crate) fn record(
    phase: TracePhase,
    name: &'static str,
    id: u64,
    ts_ns: u64,
    arg: Option<(&'static str, f64)>,
) {
    let name_idx = intern(name) & 0x0fff_ffff;
    let (key_idx, value) = match arg {
        Some((k, v)) => (intern(k) & 0x0fff_ffff, v),
        None => (0, 0.0),
    };
    let meta = (phase_code(phase) << 56) | (name_idx << 28) | key_idx;
    let value_bits = value.to_bits();
    let ticket = WRITE_IDX.fetch_add(1, Ordering::Relaxed);
    let slot = &ring()[(ticket as usize) & (CAPACITY - 1)];
    let seq = ticket + 1;
    // Invalidate first so a racing dump drops the half-written record,
    // then publish the checksum last (release) to seal the fields.
    slot.check.store(0, Ordering::Relaxed);
    slot.seq.store(seq, Ordering::Relaxed);
    slot.ts_ns.store(ts_ns, Ordering::Relaxed);
    slot.meta.store(meta, Ordering::Relaxed);
    slot.id.store(id, Ordering::Relaxed);
    slot.value_bits.store(value_bits, Ordering::Relaxed);
    slot.check.store(
        checksum(seq, ts_ns, meta, id, value_bits),
        Ordering::Release,
    );
}

/// Reads every consistent record currently in the ring, oldest first.
/// Records a concurrent writer is mid-overwrite on fail their checksum
/// and are skipped — a dump contains only untorn records.
pub fn dump_records() -> Vec<TraceRecord> {
    let mut out: Vec<(u64, TraceRecord)> = Vec::new();
    for slot in ring() {
        let check = slot.check.load(Ordering::Acquire);
        if check == 0 {
            continue;
        }
        let seq = slot.seq.load(Ordering::Relaxed);
        let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
        let meta = slot.meta.load(Ordering::Relaxed);
        let id = slot.id.load(Ordering::Relaxed);
        let value_bits = slot.value_bits.load(Ordering::Relaxed);
        if check != checksum(seq, ts_ns, meta, id, value_bits) {
            continue; // torn: a writer is overwriting this slot right now
        }
        let Some(phase) = phase_from_code(meta >> 56) else {
            continue;
        };
        let Some(name) = resolve((meta >> 28) & 0x0fff_ffff) else {
            continue;
        };
        let args = match resolve(meta & 0x0fff_ffff) {
            Some(key) => vec![(key, f64::from_bits(value_bits))],
            None => Vec::new(),
        };
        out.push((
            seq,
            TraceRecord {
                ts_ns,
                tid: 0,
                phase,
                name,
                id: Some(id),
                args,
            },
        ));
    }
    out.sort_by_key(|&(seq, _)| seq);
    out.into_iter().map(|(_, r)| r).collect()
}

/// The dump as a Chrome trace document. Because the ring overwrites
/// oldest-first, an async `"e"` can survive its `"b"` (and vice versa);
/// unpaired halves are demoted to `"n"` instants so the dump always
/// satisfies strict async pairing.
pub fn dump_json() -> Json {
    trace::chrome_trace_json(&balanced_records())
}

/// Writes the dump to `w` as line-oriented Chrome trace JSON.
pub fn write_dump<W: Write>(w: &mut W) -> io::Result<()> {
    trace::write_chrome_trace(w, &balanced_records())
}

fn balanced_records() -> Vec<TraceRecord> {
    let mut records = dump_records();
    // First pass: which (name, id) lanes have a begin/end pair fully
    // inside the ring, in order?
    let mut open: HashMap<(&'static str, u64), usize> = HashMap::new();
    let mut paired: Vec<bool> = vec![false; records.len()];
    for (i, r) in records.iter().enumerate() {
        let Some(id) = r.id else { continue };
        match r.phase {
            TracePhase::AsyncBegin => {
                open.insert((r.name, id), i);
            }
            TracePhase::AsyncEnd => {
                if let Some(b) = open.remove(&(r.name, id)) {
                    paired[b] = true;
                    paired[i] = true;
                }
            }
            _ => {}
        }
    }
    for (i, r) in records.iter_mut().enumerate() {
        if matches!(r.phase, TracePhase::AsyncBegin | TracePhase::AsyncEnd) && !paired[i] {
            r.phase = TracePhase::AsyncInstant;
            r.args.push(("truncated", 1.0));
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring and write index are process-global and shared with the
    /// trace/span tests through the flags byte; serialize on the gate.
    use crate::test_gate as lock;

    /// The ring cannot be reset between tests (it is the crash-dump
    /// surface), so tests tag names uniquely and fill the whole ring to
    /// flush foreign records out.
    fn fill_with(name: &'static str, n: usize) {
        for i in 0..n {
            record(
                TracePhase::AsyncInstant,
                name,
                i as u64,
                i as u64,
                Some(("v", i as f64 * 0.5)),
            );
        }
    }

    #[test]
    fn wraparound_overwrites_oldest() {
        let _g = lock();
        let extra = 128;
        fill_with("frtest-wrap", CAPACITY + extra);
        let records: Vec<_> = dump_records()
            .into_iter()
            .filter(|r| r.name == "frtest-wrap")
            .collect();
        assert_eq!(records.len(), CAPACITY, "ring holds exactly CAPACITY");
        // The `extra` oldest records were overwritten: the ids present
        // are the newest CAPACITY ones, in write order.
        let ids: Vec<u64> = records.iter().map(|r| r.id.unwrap()).collect();
        let want: Vec<u64> = (extra as u64..(CAPACITY + extra) as u64).collect();
        assert_eq!(ids, want);
        let last = records.last().unwrap();
        assert_eq!(last.args, vec![("v", (CAPACITY + extra - 1) as f64 * 0.5)]);
    }

    #[test]
    fn concurrent_writers_never_tear_a_record() {
        let _g = lock();
        // Writers race over the whole ring several laps; every surviving
        // record must be self-consistent (value derivable from id), no
        // matter how reads interleave with overwrites.
        let threads = 8;
        let per_thread = CAPACITY;
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    for i in 0..per_thread {
                        let id = (t * per_thread + i) as u64;
                        record(
                            TracePhase::AsyncInstant,
                            "frtest-tear",
                            id,
                            id * 3,
                            Some(("v", id as f64 * 7.0)),
                        );
                    }
                });
            }
            // Dump concurrently with the writers: consistency must hold
            // mid-race, not just after the join.
            for _ in 0..20 {
                for r in dump_records() {
                    if r.name != "frtest-tear" {
                        continue;
                    }
                    let id = r.id.unwrap();
                    assert_eq!(r.ts_ns, id * 3, "ts belongs to id {id}");
                    assert_eq!(
                        r.args,
                        vec![("v", id as f64 * 7.0)],
                        "arg belongs to id {id}"
                    );
                }
            }
        });
        // After the join every slot is consistent and from this test.
        let records = dump_records();
        assert_eq!(records.len(), CAPACITY);
        for r in &records {
            assert_eq!(r.name, "frtest-tear");
            let id = r.id.unwrap();
            assert_eq!(r.ts_ns, id * 3);
            assert_eq!(r.args, vec![("v", id as f64 * 7.0)]);
        }
    }

    #[test]
    fn dump_is_valid_chrome_trace_with_balanced_async_pairs() {
        let _g = lock();
        // Overwrite the whole ring, then lay down one complete request
        // lane and one end whose begin is "lost" (simulating overwrite).
        fill_with("frtest-dump-bg", CAPACITY);
        record(
            TracePhase::AsyncBegin,
            "frtest-dump-req",
            42,
            1_000,
            Some(("queued", 1.0)),
        );
        record(TracePhase::AsyncInstant, "frtest-dump-req", 42, 1_500, None);
        record(
            TracePhase::AsyncEnd,
            "frtest-dump-req",
            42,
            2_000,
            Some(("status", 200.0)),
        );
        record(TracePhase::AsyncEnd, "frtest-dump-orphan", 7, 2_500, None);

        let mut out = Vec::new();
        write_dump(&mut out).expect("write to Vec cannot fail");
        let text = String::from_utf8(out).expect("dump is UTF-8");
        let doc = Json::parse(&text).expect("dump parses as JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), CAPACITY);

        // The complete lane keeps its b/e pair; the orphan end became an
        // instant tagged truncated, so strict pairing always holds.
        let by_name = |n: &str| -> Vec<String> {
            events
                .iter()
                .filter(|e| e.get("name").and_then(Json::as_str) == Some(n))
                .map(|e| e.get("ph").and_then(Json::as_str).unwrap().to_string())
                .collect()
        };
        assert_eq!(by_name("frtest-dump-req"), vec!["b", "n", "e"]);
        assert_eq!(by_name("frtest-dump-orphan"), vec!["n"]);
        let orphan = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("frtest-dump-orphan"))
            .unwrap();
        assert_eq!(
            orphan
                .get("args")
                .and_then(|a| a.get("truncated"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        // Every event carries an id and a microsecond timestamp.
        assert!(events
            .iter()
            .all(|e| e.get("id").and_then(Json::as_u64).is_some()));
        let req_begin = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("frtest-dump-req"))
            .unwrap();
        assert_eq!(req_begin.get("ts").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn enable_sets_and_clears_the_flag() {
        let _g = lock();
        enable();
        assert!(is_enabled());
        disable();
        assert!(!is_enabled());
    }
}
