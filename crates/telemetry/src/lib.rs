//! # `dropback-telemetry` — structured tracing + metrics for the stack
//!
//! The paper's claims are quantitative trajectories (accuracy vs budget,
//! weight diffusion, tracked-set churn), so the reproduction needs one
//! first-class observability layer instead of per-binary `println!`
//! plumbing. This crate provides it with **zero external dependencies**:
//!
//! * [`Collector`] — named [`Counter`]s, [`Gauge`]s, and log-bucket
//!   [`Histogram`]s (p50/p90/p99) behind cheap atomic handles; a
//!   process-wide instance is available via [`global`].
//! * [`Span`] — RAII wall-time phases (`Span::enter("gemm")`) with
//!   nesting; one atomic load of overhead when disabled, totals drained
//!   per epoch via [`take_phase_totals`].
//! * [`Event`] + [`EventSink`] — structured events consumed by
//!   [`JsonlSink`] (one JSON object per line), [`StderrSink`]
//!   (human-readable progress), [`NullSink`], or a fan-out [`TeeSink`].
//! * [`TelemetrySnapshot`] — freezes a collector + the span registry and
//!   serializes to the workspace's hand-rolled [`Json`].
//! * [`Telemetry`] — the bundle the trainer threads through a run:
//!   collector + sink + activity flag.
//! * [`trace`] — timeline tracing: thread-aware begin/end/counter events
//!   plus async request lanes (`b`/`n`/`e` keyed by id), exportable as
//!   Chrome trace-event JSON (Perfetto-loadable); spans feed it
//!   automatically when [`trace::start_tracing`] is on.
//! * [`flightrec`] — the always-on flight recorder: a fixed-capacity
//!   lock-free ring of recent async events, dumpable as a valid Chrome
//!   trace after a panic, forced drain, or on demand.
//!
//! ## Example
//!
//! ```
//! use dropback_telemetry::{Event, JsonlSink, Json, Telemetry};
//!
//! let mut tel = Telemetry::with_sink(Box::new(JsonlSink::new(Vec::new())));
//! tel.collector().counter("steps").inc();
//! tel.emit(Event::new("epoch").with("epoch", 0usize).with("val_acc", 0.91));
//! let snapshot = tel.snapshot();
//! assert_eq!(snapshot.counters[0], ("steps".to_string(), 1));
//! # let _ = Json::Null;
//! ```

#![deny(missing_docs)]

pub mod flightrec;
pub mod json;
mod metrics;
mod sink;
mod snapshot;
mod span;
pub mod trace;

pub use json::Json;
pub use metrics::{bucket_index, bucket_upper, Collector, Counter, Gauge, Histogram};
pub use sink::{Event, EventSink, JsonlSink, NullSink, StderrSink, TeeSink};
pub use snapshot::{HistogramSummary, TelemetrySnapshot};
pub use span::{
    is_enabled, phase_totals, set_enabled, take_phase_totals, PhaseStat, Span, Stopwatch,
};

use std::sync::{Mutex, MutexGuard, OnceLock};

/// Locks `m`, recovering the data from a poisoned mutex instead of
/// panicking: telemetry state is plain counters, so observing the values a
/// panicking thread left behind is always safe, and instrumentation must
/// never be the thing that kills a training run.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The process-wide collector. Hot-path hooks (e.g. the tensor crate's
/// gemm/conv instrumentation, compiled in permanently) record here so
/// they need no handle plumbing.
pub fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

/// The telemetry bundle a training run threads through its loop: a
/// [`Collector`], an [`EventSink`], and an activity flag. A disabled
/// bundle makes every call a cheap no-op so un-instrumented runs pay
/// nothing measurable.
pub struct Telemetry {
    collector: Collector,
    sink: Box<dyn EventSink>,
    active: bool,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Telemetry {
    /// A disabled bundle: events are dropped, spans stay off.
    pub fn disabled() -> Self {
        Self {
            collector: Collector::new(),
            sink: Box::new(NullSink),
            active: false,
        }
    }

    /// An active bundle emitting to `sink`. Also turns on process-wide
    /// span recording (see [`set_enabled`]).
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        set_enabled(true);
        Self {
            collector: Collector::new(),
            sink,
            active: true,
        }
    }

    /// Whether events are being recorded.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The bundle's collector.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Emits an event (dropped when inactive).
    pub fn emit(&mut self, event: Event) {
        if self.active {
            self.sink.emit(&event);
        }
    }

    /// Flushes the sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }

    /// Freezes the collector plus current span totals.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::capture(&self.collector)
    }
}

/// Serializes tests that touch the process-global flags byte, span
/// registry, or trace buffer. Span, trace, and bundle tests all share this
/// gate: e.g. a span test asserting "disabled spans record nothing" must
/// not overlap a trace test that has tracing switched on.
#[cfg(test)]
pub(crate) fn test_gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_drops_events() {
        struct Panics;
        impl EventSink for Panics {
            fn emit(&mut self, _e: &Event) {
                panic!("must not be called");
            }
        }
        let mut tel = Telemetry {
            collector: Collector::new(),
            sink: Box::new(Panics),
            active: false,
        };
        tel.emit(Event::new("step"));
        assert!(!tel.is_active());
    }

    #[test]
    fn active_bundle_forwards_events() {
        let _g = test_gate();
        let mut tel = Telemetry::with_sink(Box::new(JsonlSink::new(Vec::new())));
        assert!(tel.is_active());
        tel.collector().counter("n").inc();
        tel.emit(Event::new("step").with("i", 0usize));
        tel.flush();
        let snap = tel.snapshot();
        assert_eq!(snap.counters, vec![("n".to_string(), 1)]);
        set_enabled(false);
    }

    #[test]
    fn global_collector_is_shared() {
        global().counter("lib_test_shared").add(2);
        global().counter("lib_test_shared").inc();
        assert!(global().counter("lib_test_shared").get() >= 3);
    }
}
