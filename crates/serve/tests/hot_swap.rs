//! End-to-end hot-swap correctness over real HTTP.
//!
//! The contract under test: a reply from the server is bit-identical to
//! streaming inference (`dropback::stream_mlp_forward`) run directly on
//! the snapshot's `(seed, entries)` — for the boot checkpoint, for a
//! newer checkpoint after a live hot swap, and *still* for the old
//! checkpoint when the newest file on disk is torn (the corruption
//! fallback must skip it, never serve it).

use dropback::telemetry::{Json, Telemetry};
use dropback::{CheckpointStore, FaultInjector, FaultMode, TrainProgress, TrainState};
use dropback_nn::models;
use dropback_optim::{Optimizer, SparseDropBack};
use dropback_serve::{BatchConfig, HttpClient, InferReply, Server, ServerConfig};
use dropback_tensor::Tensor;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A deterministic snapshot whose weights depend visibly on `epoch`, so
/// generations produce different logits.
fn state_at(epoch: usize, seed: u64) -> TrainState {
    let mut net = models::mnist_100_100(seed);
    let mut opt = SparseDropBack::new(500);
    opt.step(net.store_mut(), 0.0);
    for i in 0..64 {
        net.store_mut().params_mut()[i * 139] = epoch as f32 * 0.5 + i as f32 * 0.02 - 0.3;
    }
    let progress = TrainProgress {
        next_epoch: epoch,
        ..TrainProgress::fresh()
    };
    TrainState::capture(&net, &opt, seed, &progress)
}

/// Ground truth: streaming inference straight off the snapshot, no
/// server involved.
fn direct_logits(state: &TrainState, input: &[f32]) -> Vec<f32> {
    let net = models::mnist_100_100(state.init_seed);
    let tracked: BTreeMap<usize, f32> = state
        .entries
        .iter()
        .map(|&(i, v)| (i as usize, v))
        .collect();
    let x = Tensor::from_vec(vec![1, input.len()], input.to_vec());
    let (y, _) = dropback::stream_mlp_forward(net.store(), &tracked, &x).unwrap();
    y.data().to_vec()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|f| f.to_bits()).collect()
}

fn probe_input(dims: usize) -> Vec<f32> {
    (0..dims)
        .map(|i| ((i * 37) % 113) as f32 / 113.0 - 0.4)
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dropback-hot-swap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Dies mid-write under the *committed* snapshot name — the corrupt-file
/// shape the store's own atomic writer can never produce, simulating a
/// foreign writer or bit rot.
fn write_torn_snapshot(dir: &Path, state: &TrainState, keep_bytes: u64) {
    let path = dir.join(format!("state-{:08}.dbk2", state.progress.next_epoch));
    let file = std::fs::File::create(&path).unwrap();
    let mut sink = FaultInjector::new(file, FaultMode::FailWriteAfter(keep_bytes));
    let _ = state.write_to(&mut sink);
    let _ = sink.flush();
}

fn healthz_epoch(client: &mut HttpClient) -> Option<u64> {
    let resp = client.get("/healthz").ok()?;
    Json::parse(&resp.body)
        .ok()?
        .get("epoch")
        .and_then(|e| e.as_u64())
}

/// Polls `/healthz` on fresh connections until the served epoch matches,
/// bounded so a broken watcher fails the test instead of hanging it.
fn wait_for_epoch(addr: std::net::SocketAddr, want: u64) {
    for _ in 0..600 {
        let mut c = HttpClient::connect(addr).unwrap();
        if healthz_epoch(&mut c) == Some(want) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("server never started serving epoch {want}");
}

fn counter(metrics_body: &str, name: &str) -> u64 {
    Json::parse(metrics_body)
        .ok()
        .and_then(|j| {
            j.get("counters")
                .and_then(|c| c.get(name).and_then(|v| v.as_u64()))
        })
        .unwrap_or(0)
}

#[test]
fn replies_stay_bit_identical_to_direct_inference_across_swaps_and_corruption() {
    let dir = tmp_dir("main");
    let seed = 0xD120_BACC;
    let state1 = state_at(1, seed);
    let state2 = state_at(2, seed);

    let mut store = CheckpointStore::open(&dir).unwrap().keep(10);
    let mut tel = Telemetry::disabled();
    store.save(&state1, &mut tel).unwrap();

    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch: BatchConfig {
            max_batch: 4,
            flush: Duration::from_millis(1),
            queue_cap: 64,
        },
        poll: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg, CheckpointStore::open(&dir).unwrap().keep(10)).unwrap();
    let addr = server.addr();
    let input = probe_input(784);

    // Phase 1: the boot checkpoint serves exactly what direct streaming
    // inference computes from (seed, entries).
    let mut client = HttpClient::connect(addr).unwrap();
    let reply: InferReply = client.infer(&input).unwrap();
    assert_eq!(reply.epoch, 1);
    assert_eq!(reply.logits.len(), 10);
    assert_eq!(
        bits(&reply.logits),
        bits(&direct_logits(&state1, &input)),
        "served logits must be bit-identical to direct inference (epoch 1)"
    );

    // Phase 2: a newer snapshot lands through the store's atomic writer;
    // the watcher hot-swaps and replies flip to the new generation —
    // still bit-identical, and provably different from epoch 1's.
    store.save(&state2, &mut tel).unwrap();
    wait_for_epoch(addr, 2);
    let reply2 = client.infer(&input).unwrap();
    assert_eq!(reply2.epoch, 2);
    assert_eq!(
        bits(&reply2.logits),
        bits(&direct_logits(&state2, &input)),
        "served logits must be bit-identical to direct inference (epoch 2)"
    );
    assert_ne!(
        bits(&reply2.logits),
        bits(&reply.logits),
        "the two generations must actually differ or the swap proves nothing"
    );

    // Phase 3: the newest file on disk is torn. The watcher's fallback
    // must skip it (counted as rejected) and keep serving epoch 2
    // bit-for-bit; the torn generation must never appear in /healthz.
    write_torn_snapshot(&dir, &state_at(3, seed), 64);
    let mut metrics = String::new();
    for _ in 0..600 {
        metrics = client.get("/metrics").unwrap().body;
        if counter(&metrics, "serve.swap_rejected") >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        counter(&metrics, "serve.swap_rejected") >= 1,
        "watcher never rejected the torn snapshot: {metrics}"
    );
    assert_eq!(healthz_epoch(&mut client), Some(2));
    let reply3 = client.infer(&input).unwrap();
    assert_eq!(reply3.epoch, 2, "torn snapshot must not be served");
    assert_eq!(bits(&reply3.logits), bits(&reply2.logits));

    // Teardown: clean shutdown, and the digest agrees with what happened.
    let digest = server.stop();
    let json = Json::parse(&digest.to_json().render()).unwrap();
    let dig_counter = |name: &str| {
        json.get("counters")
            .and_then(|c| c.get(name).and_then(|v| v.as_u64()))
            .unwrap_or(0)
    };
    assert_eq!(dig_counter("serve.swaps"), 1);
    assert!(dig_counter("serve.swap_rejected") >= 1);
    assert!(dig_counter("serve.requests") >= 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn requests_in_flight_during_a_swap_complete_on_a_single_generation() {
    let dir = tmp_dir("inflight");
    let seed = 0xA11CE;
    let mut store = CheckpointStore::open(&dir).unwrap().keep(10);
    let mut tel = Telemetry::disabled();
    store.save(&state_at(1, seed), &mut tel).unwrap();

    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch: BatchConfig {
            max_batch: 8,
            flush: Duration::from_millis(1),
            queue_cap: 64,
        },
        poll: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg, CheckpointStore::open(&dir).unwrap().keep(10)).unwrap();
    let addr = server.addr();
    let expect: Vec<Vec<u32>> = (1..=2)
        .map(|e| bits(&direct_logits(&state_at(e, seed), &probe_input(784))))
        .collect();

    // Hammer /infer from several closed-loop clients while the snapshot
    // flips underneath them: every reply must match one generation's
    // direct logits exactly — never a blend, never a torn generation.
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let expect = expect.clone();
            std::thread::spawn(move || {
                let input = probe_input(784);
                let mut client = HttpClient::connect(addr).unwrap();
                for _ in 0..50 {
                    let reply = client.infer(&input).unwrap();
                    let got = bits(&reply.logits);
                    assert_eq!(
                        got,
                        expect[reply.epoch - 1],
                        "reply claims epoch {} but logits do not match it",
                        reply.epoch
                    );
                }
            })
        })
        .collect();
    store.save(&state_at(2, seed), &mut tel).unwrap();
    for w in workers {
        w.join().unwrap();
    }
    wait_for_epoch(addr, 2);

    let digest = server.stop();
    let json = Json::parse(&digest.to_json().render()).unwrap();
    let requests = json
        .get("counters")
        .and_then(|c| c.get("serve.requests").and_then(|v| v.as_u64()))
        .unwrap_or(0);
    assert_eq!(requests, 200);
    let _ = std::fs::remove_dir_all(&dir);
}
