//! Deterministic chaos: the server under hostile clients and injected
//! socket faults.
//!
//! The contract under test, end to end over real sockets:
//!
//! * the server **never crashes or wedges** — after every abuse scenario
//!   a fresh `/healthz` on a fresh connection answers 200,
//! * overload is **shed, not queued to death** — refusals are `503` with
//!   a `Retry-After` hint, counted under `serve.shed.*`,
//! * whatever *does* get a 200 is **bit-identical** to streaming
//!   inference run directly on the snapshot — faults may cost requests,
//!   never answers,
//! * shutdown under load **drains**: in-flight requests finish, late
//!   arrivals are shed, and the digest says which was which.
//!
//! Faults come from [`dropback::FaultPlan`] — seeded or scripted, both
//! replayable — threaded into the server's accept path via
//! [`dropback_serve::ChaosHook`].

use dropback::telemetry::{Json, Telemetry};
use dropback::{CheckpointStore, FaultAction, FaultPlan, TrainProgress, TrainState};
use dropback_nn::models;
use dropback_optim::{Optimizer, SparseDropBack};
use dropback_serve::{Backoff, BatchConfig, ChaosHook, HttpClient, Server, ServerConfig};
use dropback_tensor::Tensor;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A deterministic snapshot; logits depend on the seed.
fn state_at(epoch: usize, seed: u64) -> TrainState {
    let mut net = models::mnist_100_100(seed);
    let mut opt = SparseDropBack::new(500);
    opt.step(net.store_mut(), 0.0);
    let progress = TrainProgress {
        next_epoch: epoch,
        ..TrainProgress::fresh()
    };
    TrainState::capture(&net, &opt, seed, &progress)
}

/// Ground truth: streaming inference straight off the snapshot.
fn direct_logits(state: &TrainState, input: &[f32]) -> Vec<f32> {
    let net = models::mnist_100_100(state.init_seed);
    let tracked: BTreeMap<usize, f32> = state
        .entries
        .iter()
        .map(|&(i, v)| (i as usize, v))
        .collect();
    let x = Tensor::from_vec(vec![1, input.len()], input.to_vec());
    let (y, _) = dropback::stream_mlp_forward(net.store(), &tracked, &x).unwrap();
    y.data().to_vec()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|f| f.to_bits()).collect()
}

fn probe_input(dims: usize) -> Vec<f32> {
    (0..dims)
        .map(|i| ((i * 41) % 127) as f32 / 127.0 - 0.5)
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dropback-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Boots a server over a freshly seeded snapshot dir.
fn boot(tag: &str, seed: u64, cfg: ServerConfig) -> (Server, TrainState, PathBuf) {
    let dir = tmp_dir(tag);
    let state = state_at(1, seed);
    let mut store = CheckpointStore::open(&dir).unwrap().keep(10);
    store.save(&state, &mut Telemetry::disabled()).unwrap();
    let server = Server::start(cfg, CheckpointStore::open(&dir).unwrap().keep(10)).unwrap();
    (server, state, dir)
}

fn assert_live(addr: std::net::SocketAddr) {
    let mut c = HttpClient::connect(addr).unwrap();
    assert_eq!(c.get("/healthz").unwrap().status, 200, "server not live");
}

fn counter(snap: &dropback::telemetry::TelemetrySnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

#[test]
fn slow_loris_costs_one_timeout_not_the_server() {
    let cfg = ServerConfig {
        io_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let (server, _, dir) = boot("loris", 0x10_0515, cfg);
    let addr = server.addr();

    // Half a request line, then silence: the peer never finishes.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"GET /heal").unwrap();
    std::thread::sleep(Duration::from_millis(300));
    // By now the server must have timed the read out and hung up; the
    // stalled socket reports EOF (or a reset) rather than blocking us.
    let mut rest = Vec::new();
    let _ = loris.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = loris.read_to_end(&mut rest);
    assert!(rest.is_empty(), "a half-sent request must earn no reply");

    assert_live(addr);
    let snap = server.stop();
    assert!(
        counter(&snap, "serve.timeout.read") >= 1,
        "the stalled read was not counted: {:?}",
        snap.counters
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_body_hangup_and_protocol_garbage_are_survived() {
    let (server, _, dir) = boot("hangup", 0xBAD_FEED, ServerConfig::default());
    let addr = server.addr();

    // Declared 4096 bytes, sent 14, vanished.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /infer HTTP/1.1\r\ncontent-length: 4096\r\n\r\n{\"input\":[0.1,")
            .unwrap();
    }
    // Pure line noise.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"\x00\x01\x02 not http at all\r\n\r\n")
            .unwrap();
    }
    assert_live(addr);
    let snap = server.stop();
    assert!(counter(&snap, "serve.connections") >= 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_body_and_headers_are_typed_refusals_on_the_wire() {
    let (server, _, dir) = boot("oversize", 0x0B_E5E, ServerConfig::default());
    let addr = server.addr();

    // A body the server would never accept: refused from the declared
    // length alone, before any of it is read.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /infer HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n")
        .unwrap();
    let mut reply = String::new();
    let _ = s.take(64).read_to_string(&mut reply);
    assert!(
        reply.starts_with("HTTP/1.1 413"),
        "oversized body answered {reply:?}"
    );

    // A header line past the 8 KiB bound is a 431. The server refuses as
    // soon as the line crosses the limit, so stop writing there (pushing
    // more after the refusal just turns the close into a reset) and read.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nx-padding: ")
        .unwrap();
    let _ = s.write_all(&vec![b'a'; 8300]);
    let mut reply = String::new();
    let _ = s.take(64).read_to_string(&mut reply);
    assert!(
        reply.starts_with("HTTP/1.1 431"),
        "oversized header answered {reply:?}"
    );

    assert_live(addr);
    let _ = server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flood twice the queue's size: some requests are shed with 503 +
/// `Retry-After`, and every 200 is bit-identical to direct inference.
#[test]
fn overload_sheds_cleanly_and_successes_stay_bit_identical() {
    let cfg = ServerConfig {
        batch: BatchConfig {
            max_batch: 2,
            flush: Duration::from_millis(40),
            queue_cap: 2,
        },
        ..ServerConfig::default()
    };
    let (server, state, dir) = boot("flood", 0xF100D, cfg);
    let addr = server.addr();
    let input = probe_input(784);
    let want = bits(&direct_logits(&state, &input));

    let clients = 12;
    let barrier = Arc::new(Barrier::new(clients));
    let mut handles = Vec::new();
    for _ in 0..clients {
        let barrier = Arc::clone(&barrier);
        let input = input.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = HttpClient::connect(addr).unwrap();
            barrier.wait();
            let body = dropback_serve::client::infer_body(&input);
            let resp = c.post("/infer", &body).unwrap();
            match resp.status {
                200 => {
                    let reply = dropback_serve::client::parse_reply(&resp.body).unwrap();
                    (Some(reply.logits), false)
                }
                503 => {
                    assert_eq!(
                        resp.header("retry-after"),
                        Some("1"),
                        "a shed without a retry hint"
                    );
                    (None, true)
                }
                other => panic!("unexpected status {other}: {}", resp.body),
            }
        }));
    }
    let mut ok = 0;
    let mut shed = 0;
    for h in handles {
        let (logits, was_shed) = h.join().unwrap();
        if let Some(logits) = logits {
            assert_eq!(bits(&logits), want, "an overloaded 200 drifted");
            ok += 1;
        }
        if was_shed {
            shed += 1;
        }
    }
    assert!(ok >= 1, "the flood starved every request");
    assert!(shed >= 1, "a 2-deep queue absorbed 12 concurrent requests");

    assert_live(addr);
    let snap = server.stop();
    assert_eq!(counter(&snap, "serve.shed"), shed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shutdown mid-traffic: requests already in flight finish (and stay
/// bit-identical); requests arriving after the trigger are shed.
#[test]
fn graceful_drain_finishes_in_flight_work_and_sheds_late_arrivals() {
    let cfg = ServerConfig {
        batch: BatchConfig {
            max_batch: 4,
            flush: Duration::from_millis(80),
            queue_cap: 16,
        },
        ..ServerConfig::default()
    };
    let (server, state, dir) = boot("drain", 0xD0A1, cfg);
    let addr = server.addr();
    let input = probe_input(784);
    let want = bits(&direct_logits(&state, &input));

    // One request enters the queue and parks on the 80 ms flush window...
    let in_flight = {
        let input = input.clone();
        std::thread::spawn(move || {
            let mut c = HttpClient::connect(addr).unwrap();
            c.infer(&input).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    // ...then the drain starts while it is still in flight.
    server.trigger_shutdown();
    let late = HttpClient::connect(addr)
        .and_then(|mut c| c.post("/infer", &dropback_serve::client::infer_body(&input)));
    let reply = in_flight.join().unwrap();
    assert_eq!(bits(&reply.logits), want, "a drained reply drifted");
    if let Ok(resp) = late {
        assert_eq!(resp.status, 503, "a post-trigger request was evaluated");
    }

    let snap = server.stop();
    assert!(counter(&snap, "serve.drained") >= 1, "{:?}", snap.counters);
    assert_eq!(counter(&snap, "serve.drain.forced"), 0);
    assert!(counter(&snap, "serve.shed.drain") >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Server-side injected resets: the first connection dies mid-exchange,
/// the client backs off and retries, and the retry's answer is
/// bit-identical to a no-fault run.
#[test]
fn injected_resets_are_recovered_by_backoff_retry_bit_identically() {
    let cfg = ServerConfig {
        chaos: Some(Arc::new(ChaosHook::new(FaultPlan::cycle(vec![
            FaultAction::ResetAfter { bytes: 20 },
            FaultAction::None,
        ])))),
        ..ServerConfig::default()
    };
    let (server, state, dir) = boot("reset", 0x2E5E7, cfg);
    let addr = server.addr();
    let input = probe_input(784);
    let want = bits(&direct_logits(&state, &input));

    let mut backoff = Backoff::new(0xC4A05, Duration::from_millis(5), Duration::from_millis(50));
    let mut reply = None;
    for _ in 0..4 {
        match HttpClient::connect(addr).and_then(|mut c| c.infer(&input)) {
            Ok(r) => {
                reply = Some(r);
                break;
            }
            Err(_) => std::thread::sleep(backoff.next_delay()),
        }
    }
    let reply = reply.expect("retry never got through a 1-in-2 reset plan");
    assert!(
        backoff.failures() >= 1,
        "the reset connection should have failed at least once"
    );
    assert_eq!(bits(&reply.logits), want, "a post-retry reply drifted");

    let _ = server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A dribbling server (1–3 byte writes with pauses) is slow but still
/// correct: the response parses and matches direct inference.
#[test]
fn dribbled_responses_still_parse_and_match() {
    let cfg = ServerConfig {
        chaos: Some(Arc::new(ChaosHook::new(FaultPlan::cycle(vec![
            FaultAction::Dribble {
                chunk: 3,
                pause: Duration::from_micros(200),
            },
        ])))),
        ..ServerConfig::default()
    };
    let (server, state, dir) = boot("dribble", 0xD21B, cfg);
    let addr = server.addr();
    let input = probe_input(784);
    let want = bits(&direct_logits(&state, &input));

    let mut c = HttpClient::connect(addr).unwrap();
    let reply = c.infer(&input).unwrap();
    assert_eq!(bits(&reply.logits), want, "a dribbled reply drifted");

    let _ = server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The seeded plan exercises a mixed population (stalls, resets,
/// dribbles, flips, clean) against a short io-timeout server: nothing
/// crashes, the server stays live, and every intact answer is right.
/// (`/healthz`, not `/infer`: a byte-flip inside an `/infer` body can
/// yield a *valid but different* request, which the server would answer
/// faithfully — garbage-in is not a server fault.)
#[test]
fn a_seeded_fault_mix_never_takes_the_server_down() {
    let cfg = ServerConfig {
        io_timeout: Duration::from_millis(200),
        chaos: Some(Arc::new(ChaosHook::new(FaultPlan::seeded(0xCA05)))),
        ..ServerConfig::default()
    };
    let (server, _, dir) = boot("mix", 0x5EED, cfg);
    let addr = server.addr();

    let mut ok = 0;
    for _ in 0..24 {
        if let Ok(resp) = HttpClient::connect(addr).and_then(|mut c| c.get("/healthz")) {
            if resp.status == 200 {
                let health = Json::parse(&resp.body).unwrap();
                assert_eq!(health.get("epoch").and_then(|e| e.as_u64()), Some(1));
                ok += 1;
            }
        }
    }
    assert!(ok >= 1, "every single connection failed under the mix");

    // The hook has burned through two dozen planned faults; the server
    // itself must be unscathed. (/healthz below rides the plan too, so
    // retry a few times — liveness, not per-connection luck.)
    let live = (0..10).any(|_| {
        HttpClient::connect(addr)
            .and_then(|mut c| c.get("/healthz"))
            .map(|r| r.status == 200)
            .unwrap_or(false)
    });
    assert!(live, "server wedged after the fault mix");
    let snap = server.stop();
    assert!(counter(&snap, "serve.connections") >= 24);
    let _ = std::fs::remove_dir_all(&dir);
}
