//! # dropback-serve: checkpoint-backed inference serving
//!
//! The paper's deployment story is that a trained network ships as just
//! `(seed, k tracked entries)` — a sparse checkpoint small enough to
//! hot-load and swap at will. This crate turns that artifact into a
//! request-serving path: a multi-threaded HTTP/1.1 server hand-rolled
//! over `std::net` (the workspace has no external dependencies) that
//!
//! * loads snapshots through [`dropback::CheckpointStore`]
//!   (newest-valid-first, reusing the corruption fallback),
//! * reconstructs every untracked weight from `regen(seed, index)` via
//!   the streaming [`dropback::StreamingModel`] evaluator — the dense
//!   matrix is never materialized,
//! * **hot-swaps** the live model atomically when a newer snapshot
//!   appears: in-flight requests finish on the old model, new requests
//!   see the new one ([`watcher`]),
//! * **micro-batches** concurrent requests through a bounded queue that
//!   flushes on batch-size or deadline into a single batched forward on
//!   the worker pool ([`batch`]),
//! * reports latency, throughput, batch-fill, and swap counters through
//!   the existing telemetry stack (`serve.*` metrics, spans visible in
//!   `dropback-trace`), threads a request id through admission → queue →
//!   batch → reply-write as Chrome **async** trace lanes, feeds the
//!   always-on flight recorder, and can write a structured JSONL access
//!   log — one record per request, keyed by the same id ([`log`]; see
//!   `docs/OBSERVABILITY.md`),
//! * **defends itself under overload**: a connection cap and bounded
//!   queue shed excess load with `503` + `Retry-After`, every request
//!   carries a deadline that sheds it *before* inference once expired,
//!   socket timeouts bound slow-loris clients, and shutdown is a
//!   two-phase graceful drain ([`server`], `serve.shed.*` counters),
//! * and proves all of that under **deterministic fault injection**: a
//!   seeded [`dropback::FaultPlan`] can wrap every accepted socket in a
//!   [`dropback::FaultStream`] (stalls, resets, dribble, bit-flips) via
//!   [`rt::ChaosHook`] — see `crates/serve/tests/chaos.rs`.
//!
//! Two modules deliberately own otherwise-forbidden capabilities, and the
//! `dropback-lint` allowlists name them file-by-file: [`clock`] is the
//! only serve module allowed to read `Instant` (deadlines), and [`rt`] is
//! the only one allowed to create threads (accept loop, connection
//! handlers, batch worker, watcher). Everything else in the crate stays
//! under the same determinism lints as the training stack.
//!
//! See `docs/SERVING.md` for the protocol, the knobs, and how to read
//! `BENCH_serve.json`.

#![deny(missing_docs)]

pub mod batch;
pub mod client;
pub mod clock;
pub mod error;
pub mod http;
pub mod log;
pub mod model;
pub mod rt;
pub mod server;
pub mod watcher;

pub use batch::{BatchConfig, BatchQueue, InferReply};
pub use client::HttpClient;
pub use clock::{Backoff, Deadline};
pub use error::ServeError;
pub use http::{Request, StatusLine};
pub use log::AccessLog;
pub use model::{ModelSlot, ServingModel};
pub use rt::ChaosHook;
pub use server::{Server, ServerConfig};
