//! Structured JSONL access logging: one JSON object per finished
//! request, written and flushed line-by-line so a tail-reader (or a
//! post-mortem after a kill) never sees a torn record.
//!
//! The record schema is documented in `docs/SERVING.md`; every record
//! carries the same request id that keys the request's async trace lanes
//! (`serve.req` / `serve.queue` / `serve.infer` / `serve.write`), so a
//! log line and a Perfetto lane cross-reference each other directly.
//!
//! Logging must never kill serving: write failures are reported to the
//! caller (the server counts them under `serve.access_log_failed`) and
//! the connection handler carries on.

use crate::rt::Monitor;
use dropback_telemetry::Json;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A line-buffered JSONL sink shared by every connection handler.
///
/// Handlers serialize on a [`Monitor`], so concurrent requests never
/// interleave bytes within a line; each record is written and flushed as
/// one unit.
#[derive(Debug)]
pub struct AccessLog {
    writer: Monitor<BufWriter<File>>,
}

impl AccessLog {
    /// Creates (truncating) the log file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Monitor::new(BufWriter::new(file)),
        })
    }

    /// Appends one record as a single JSON line and flushes it, so the
    /// file is valid JSONL after any prefix of writes.
    ///
    /// # Errors
    ///
    /// Propagates write/flush failures; the caller decides whether to
    /// count or ignore them (never to crash on them).
    pub fn write(&self, record: &Json) -> io::Result<()> {
        let line = record.render();
        self.writer.with(|w| {
            writeln!(w, "{line}")?;
            w.flush()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_land_one_parseable_json_object_per_line() {
        let path =
            std::env::temp_dir().join(format!("dropback-access-log-{}.jsonl", std::process::id()));
        let log = Arc::new(AccessLog::create(&path).unwrap());

        // Concurrent writers: lines must never interleave mid-record.
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = Arc::clone(&log);
            handles.push(
                crate::rt::spawn("log", move || {
                    for i in 0..16u64 {
                        let rec = Json::Obj(vec![
                            ("id".into(), Json::from(t * 100 + i)),
                            ("status".into(), Json::from(200u64)),
                            ("reason".into(), Json::Null),
                        ]);
                        log.write(&rec).unwrap();
                    }
                })
                .unwrap(),
            );
        }
        for h in handles {
            h.join().unwrap();
        }

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 64);
        let mut ids = Vec::new();
        for line in lines {
            let parsed = Json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            ids.push(parsed.get("id").and_then(Json::as_u64).unwrap());
            assert_eq!(parsed.get("status").and_then(Json::as_u64), Some(200));
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 64, "every record survived intact");
        let _ = std::fs::remove_file(&path);
    }
}
