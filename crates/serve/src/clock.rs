//! The serve crate's one sanctioned clock: flush/poll deadlines and
//! retry pacing.
//!
//! The `dropback-lint` `wall-clock` rule bans `Instant` everywhere except
//! the telemetry span/trace modules and this file. Serving genuinely
//! needs wall time in three places — the micro-batch flush deadline, the
//! watcher poll interval, and per-request deadlines — so all of them take
//! their time from the [`Deadline`] type defined here, and no other serve
//! module ever names the clock. Retry pacing ([`Backoff`]) also lives
//! here: it is pure duration arithmetic over a seeded PRNG, so waits stay
//! replayable. Timings destined for metrics still go through
//! [`dropback_telemetry::Stopwatch`] like the rest of the workspace.

use dropback::prng::Xorshift64;
use std::time::{Duration, Instant};

/// A point in the future, measured on the monotonic clock.
///
/// Consumers only ever ask "how long until?" ([`Deadline::remaining`]) or
/// "is it past?" ([`Deadline::expired`]) — both answerable without naming
/// `Instant` at the call site, which keeps the wall-clock lint scoped to
/// this module.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Self {
            at: Instant::now() + d,
        }
    }

    /// Time left until the deadline; zero once it has passed.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining() == Duration::ZERO
    }
}

/// Seeded-jitter exponential backoff for transient-failure retry loops.
///
/// Each consecutive failure doubles the base delay up to `cap`; the
/// actual wait is jittered uniformly into the upper half of that window
/// (`[cap'/2, cap']`) so a herd of clients shedding off the same
/// overloaded server does not reconverge in lockstep. The jitter stream
/// is a [`Xorshift64`] seeded by the caller, never the OS — two runs
/// with the same seed wait out the exact same sequence, so a chaos
/// scenario that involves retry timing replays bit-for-bit.
#[derive(Debug)]
pub struct Backoff {
    rng: Xorshift64,
    base: Duration,
    cap: Duration,
    consecutive: u32,
}

impl Backoff {
    /// A backoff starting at `base` per failure, never exceeding `cap`.
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Self {
        Self {
            rng: Xorshift64::new(seed),
            base: base.max(Duration::from_micros(1)),
            cap: cap.max(base),
            consecutive: 0,
        }
    }

    /// Consecutive failures recorded since the last [`Backoff::reset`].
    pub fn failures(&self) -> u32 {
        self.consecutive
    }

    /// Records one more failure and returns how long to wait before the
    /// next attempt.
    pub fn next_delay(&mut self) -> Duration {
        // base * 2^n, saturating well before overflow; then cap.
        let exp = self.base.saturating_mul(
            1u32.checked_shl(self.consecutive.min(16))
                .unwrap_or(u32::MAX),
        );
        let window = exp.min(self.cap);
        self.consecutive = self.consecutive.saturating_add(1);
        let nanos = window.as_nanos().min(u64::MAX as u128) as u64;
        // Upper-half jitter: [nanos/2, nanos].
        let half = nanos / 2;
        Duration::from_nanos(half + self.rng.next_u64() % (nanos - half + 1))
    }

    /// Clears the failure streak after a success, so the next failure
    /// starts back at the base delay.
    pub fn reset(&mut self) {
        self.consecutive = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_has_time_remaining() {
        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(59));
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn backoff_grows_exponentially_within_jitter_windows() {
        let mut b = Backoff::new(7, Duration::from_millis(10), Duration::from_secs(1));
        for (i, cap_ms) in [10u64, 20, 40, 80].into_iter().enumerate() {
            let d = b.next_delay();
            assert!(
                d >= Duration::from_millis(cap_ms / 2) && d <= Duration::from_millis(cap_ms),
                "failure {i}: {d:?} outside [{}ms/2, {cap_ms}ms]",
                cap_ms
            );
        }
        assert_eq!(b.failures(), 4);
    }

    #[test]
    fn backoff_saturates_at_the_cap() {
        let mut b = Backoff::new(3, Duration::from_millis(10), Duration::from_millis(50));
        for _ in 0..40 {
            assert!(b.next_delay() <= Duration::from_millis(50));
        }
    }

    #[test]
    fn backoff_is_replayable_from_its_seed_and_resets() {
        let mut a = Backoff::new(99, Duration::from_millis(5), Duration::from_secs(1));
        let mut b = Backoff::new(99, Duration::from_millis(5), Duration::from_secs(1));
        let first: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
        let again: Vec<_> = (0..8).map(|_| b.next_delay()).collect();
        assert_eq!(first, again, "same seed, same waits");

        a.reset();
        assert_eq!(a.failures(), 0);
        // After a reset the window is back at the base.
        assert!(a.next_delay() <= Duration::from_millis(5));
    }
}
