//! The serve crate's one sanctioned clock: flush/poll deadlines.
//!
//! The `dropback-lint` `wall-clock` rule bans `Instant` everywhere except
//! the telemetry span/trace modules and this file. Serving genuinely
//! needs wall time in two places — the micro-batch flush deadline and the
//! watcher poll interval — so both take their time from the [`Deadline`]
//! type defined here, and no other serve module ever names the clock.
//! Timings destined for metrics still go through
//! [`dropback_telemetry::Stopwatch`] like the rest of the workspace.

use std::time::{Duration, Instant};

/// A point in the future, measured on the monotonic clock.
///
/// Consumers only ever ask "how long until?" ([`Deadline::remaining`]) or
/// "is it past?" ([`Deadline::expired`]) — both answerable without naming
/// `Instant` at the call site, which keeps the wall-clock lint scoped to
/// this module.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Self {
            at: Instant::now() + d,
        }
    }

    /// Time left until the deadline; zero once it has passed.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining() == Duration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_has_time_remaining() {
        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(59));
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }
}
