//! A deliberately small HTTP/1.1 subset, hand-rolled over `std::io`.
//!
//! The workspace takes no external dependencies, so the server speaks
//! just enough HTTP for its four endpoints: request line, headers,
//! `Content-Length` bodies, keep-alive, and `Connection: close`. No
//! chunked transfer, no continuations, no upgrades — anything outside
//! the subset is a clean 400, never a panic.
//!
//! Both sides of the conversation live here: [`read_request`] /
//! [`write_response`] for the server, [`write_request`] /
//! [`read_response`] for the in-crate client ([`crate::client`]) that the
//! load generator, the smoke test, and the integration tests share.

use crate::error::ServeError;
use std::io::{BufRead, Write};

/// Longest accepted request/status line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;

/// Most headers accepted on one message.
const MAX_HEADERS: usize = 64;

/// Largest accepted message body (1 MiB — an `/infer` body for a
/// 784-feature input is ~15 KiB).
pub const MAX_BODY: usize = 1024 * 1024;

/// Header name/value pairs in arrival order; names lowercased.
pub type Headers = Vec<(String, String)>;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (`/infer`).
    pub target: String,
    /// Header name/value pairs in arrival order; names lowercased.
    pub headers: Headers,
    /// Message body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Status line, headers, and body of a parsed HTTP response (client
/// side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusLine {
    /// Numeric status code.
    pub status: u16,
    /// Header name/value pairs in arrival order; names lowercased.
    pub headers: Headers,
    /// Response body as UTF-8 (all serve endpoints speak JSON).
    pub body: String,
}

impl StatusLine {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one line up to CRLF (or bare LF), rejecting oversized lines.
fn read_line(r: &mut impl BufRead) -> Result<Option<String>, ServeError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None); // clean EOF between messages
                }
                return Err(ServeError::BadRequest("connection closed mid-line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| ServeError::BadRequest("header line is not UTF-8".into()))?;
                    return Ok(Some(text));
                }
                if line.len() >= MAX_LINE {
                    return Err(ServeError::HeadersTooLarge(format!(
                        "header line exceeds {MAX_LINE} bytes"
                    )));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
}

/// Parses headers + optional `Content-Length` body following a start line.
fn read_headers_and_body(r: &mut impl BufRead) -> Result<(Headers, Vec<u8>), ServeError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?.ok_or_else(|| {
            ServeError::BadRequest("connection closed inside the header block".into())
        })?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ServeError::HeadersTooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ServeError::BadRequest(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ServeError::BadRequest(format!("unparseable Content-Length {v:?}")))?,
        None => 0,
    };
    if length > MAX_BODY {
        return Err(ServeError::BodyTooLarge {
            got: length,
            limit: MAX_BODY,
        });
    }
    let mut body = vec![0u8; length];
    r.read_exact(&mut body)?;
    Ok((headers, body))
}

/// Reads one request off a keep-alive connection. `Ok(None)` means the
/// peer closed cleanly between requests; protocol violations are
/// [`ServeError::BadRequest`] so the caller can answer 400.
///
/// # Errors
///
/// [`ServeError::BadRequest`] on malformed or oversized messages,
/// [`ServeError::Io`] on socket failures.
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, ServeError> {
    let Some(line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ServeError::BadRequest(format!(
                "malformed request line {line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ServeError::BadRequest(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    let (headers, body) = read_headers_and_body(r)?;
    Ok(Some(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
    }))
}

/// The standard reason phrase for the statuses the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete JSON response.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(w: &mut impl Write, status: u16, body: &str) -> std::io::Result<()> {
    write_response_with(w, status, &[], body)
}

/// Writes a complete JSON response carrying extra headers (e.g.
/// `Retry-After` on a load-shedding 503).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response_with(
    w: &mut impl Write,
    status: u16,
    extra: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    write_response_typed(w, status, "application/json", extra, body)
}

/// Writes a complete response with an explicit `Content-Type` — the
/// Prometheus exposition on `/metrics?format=prometheus` is plain text,
/// everything else the server speaks is JSON.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response_typed(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    // One buffer, one write: interleaving small header writes with the
    // body on a raw TcpStream triggers Nagle/delayed-ACK stalls.
    let mut msg = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra {
        msg.push_str(name);
        msg.push_str(": ");
        msg.push_str(value);
        msg.push_str("\r\n");
    }
    msg.push_str("\r\n");
    msg.push_str(body);
    w.write_all(msg.as_bytes())?;
    w.flush()
}

/// Writes a complete request (client side). An empty body sends no
/// `Content-Length`, matching a bare `GET`.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_request(
    w: &mut impl Write,
    method: &str,
    target: &str,
    body: &str,
) -> std::io::Result<()> {
    // Single-buffer write for the same Nagle reason as `write_response`.
    let msg = if body.is_empty() {
        format!("{method} {target} HTTP/1.1\r\nHost: dropback\r\n\r\n")
    } else {
        format!(
            "{method} {target} HTTP/1.1\r\nHost: dropback\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    };
    w.write_all(msg.as_bytes())?;
    w.flush()
}

/// Reads one response off the connection (client side).
///
/// # Errors
///
/// [`ServeError::BadRequest`] on malformed messages (the message names
/// the server as the offender), [`ServeError::Io`] on socket failures.
pub fn read_response(r: &mut impl BufRead) -> Result<StatusLine, ServeError> {
    let line = read_line(r)?.ok_or_else(|| {
        ServeError::BadRequest("server closed the connection before responding".into())
    })?;
    // "HTTP/1.1 200 OK" — the code is the second token.
    let status = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ServeError::BadRequest(format!("malformed status line {line:?}")))?;
    let (headers, body) = read_headers_and_body(r)?;
    let body = String::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("response body is not UTF-8".into()))?;
    Ok(StatusLine {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, ServeError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req =
            parse(b"POST /infer HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_none_not_an_error() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_messages_are_bad_requests() {
        for raw in [
            &b"BROKEN\r\n\r\n"[..],
            &b"GET /x HTTP/9.9\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: pony\r\n\r\n"[..],
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.http_status(), 400, "{raw:?} should be a 400: {err}");
        }
    }

    #[test]
    fn oversized_declared_body_is_a_413_before_any_read() {
        // No body bytes follow the headers: the refusal must come from
        // the declared length alone, never from buffering the payload.
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n").unwrap_err();
        assert_eq!(err.http_status(), 413, "{err}");
        assert!(matches!(
            err,
            ServeError::BodyTooLarge {
                got: 99_999_999,
                limit: MAX_BODY
            }
        ));
    }

    #[test]
    fn too_many_headers_is_a_431() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 2) {
            raw.extend(format!("x-h{i}: v\r\n").into_bytes());
        }
        raw.extend(b"\r\n");
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.http_status(), 431, "{err}");
    }

    #[test]
    fn truncated_body_is_an_io_error_not_a_hang_or_panic() {
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi").unwrap_err();
        assert!(matches!(err, ServeError::Io(_)));
    }

    #[test]
    fn response_round_trips_through_the_client_parser() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "{\"ok\":true}").unwrap();
        let parsed = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.body, "{\"ok\":true}");
        assert_eq!(parsed.header("content-type"), Some("application/json"));
    }

    #[test]
    fn extra_headers_ride_the_response_and_parse_back() {
        let mut wire = Vec::new();
        write_response_with(&mut wire, 503, &[("Retry-After", "2".into())], "{}").unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("\r\nRetry-After: 2\r\n"));
        let parsed = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(parsed.status, 503);
        assert_eq!(parsed.header("retry-after"), Some("2"));
        assert_eq!(parsed.header("nope"), None);
    }

    #[test]
    fn typed_responses_carry_their_content_type() {
        let mut wire = Vec::new();
        write_response_typed(&mut wire, 200, "text/plain; version=0.0.4", &[], "a 1\n").unwrap();
        let parsed = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(
            parsed.header("content-type"),
            Some("text/plain; version=0.0.4")
        );
        assert_eq!(parsed.body, "a 1\n");
    }

    #[test]
    fn request_round_trips_through_the_server_parser() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/infer", "{\"input\":[1]}").unwrap();
        let req = parse(&wire).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/infer");
        assert_eq!(req.body, b"{\"input\":[1]}");
    }

    #[test]
    fn oversized_header_line_is_rejected() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE + 10));
        raw.extend(b" HTTP/1.1\r\n\r\n");
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.http_status(), 431);
        assert!(matches!(err, ServeError::HeadersTooLarge(_)));
    }
}
