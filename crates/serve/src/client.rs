//! A tiny blocking HTTP client over `std::net`, for everything that
//! talks *to* the server from inside the workspace: the `bench_serve`
//! load generator, `dropback-serve probe` (the smoke test's curl
//! substitute), and the integration tests. One client = one keep-alive
//! connection, so a closed-loop load thread exercises the server the way
//! a pooled production client would.

use crate::batch::InferReply;
use crate::error::ServeError;
use crate::http::{self, StatusLine};
use dropback_telemetry::Json;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// One keep-alive connection to a serve endpoint.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to `addr` (anything resolvable: `SocketAddr`,
    /// `"127.0.0.1:8080"`).
    ///
    /// # Errors
    ///
    /// Propagates resolution and connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServeError::BadRequest("address resolved to nothing".into()))?;
        Self::connect_resolved(addr)
    }

    fn connect_resolved(addr: SocketAddr) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        // Latency over bandwidth: a closed-loop client's next request
        // must not sit in Nagle's buffer waiting for an ACK.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends a `GET` and reads the response.
    ///
    /// # Errors
    ///
    /// Socket failures and malformed responses.
    pub fn get(&mut self, target: &str) -> Result<StatusLine, ServeError> {
        http::write_request(&mut self.writer, "GET", target, "")?;
        http::read_response(&mut self.reader)
    }

    /// Sends a `POST` with a JSON body and reads the response.
    ///
    /// # Errors
    ///
    /// Socket failures and malformed responses.
    pub fn post(&mut self, target: &str, body: &str) -> Result<StatusLine, ServeError> {
        http::write_request(&mut self.writer, "POST", target, body)?;
        http::read_response(&mut self.reader)
    }

    /// Runs one inference round trip: builds the `/infer` body, sends it,
    /// parses the reply. Input bits survive the wire exactly (f32 → JSON
    /// → f32 is lossless), so replies are comparable bit-for-bit against
    /// a local forward.
    ///
    /// # Errors
    ///
    /// Transport failures, non-200 statuses (surfaced with the server's
    /// error message), and malformed reply bodies.
    pub fn infer(&mut self, input: &[f32]) -> Result<InferReply, ServeError> {
        let resp = self.post("/infer", &infer_body(input))?;
        if resp.status != 200 {
            return Err(ServeError::BadRequest(format!(
                "server answered {}: {}",
                resp.status, resp.body
            )));
        }
        parse_reply(&resp.body)
    }
}

/// Renders the `/infer` request body for `input`.
pub fn infer_body(input: &[f32]) -> String {
    let vals: Vec<Json> = input.iter().map(|&v| Json::from(v)).collect();
    Json::Obj(vec![("input".into(), Json::Arr(vals))]).render()
}

/// Parses an `/infer` response body.
///
/// # Errors
///
/// [`ServeError::BadRequest`] naming the missing/mistyped field.
pub fn parse_reply(body: &str) -> Result<InferReply, ServeError> {
    let bad = |what: &str| ServeError::BadRequest(format!("malformed /infer reply: {what}"));
    let json = Json::parse(body).map_err(|e| bad(&e))?;
    let logits = json
        .get("logits")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("no logits array"))?
        .iter()
        .map(|v| v.as_f64().map(|f| f as f32))
        .collect::<Option<Vec<f32>>>()
        .ok_or_else(|| bad("non-numeric logit"))?;
    let field = |name: &str| {
        json.get(name)
            .and_then(Json::as_u64)
            .map(|v| v as usize)
            .ok_or_else(|| bad(name))
    };
    // The timing/batch-identity fields arrived with the observability
    // work; tolerate their absence (0 = unknown) so the client still
    // reads replies from older servers.
    let opt = |name: &str| json.get(name).and_then(Json::as_u64).unwrap_or(0);
    Ok(InferReply {
        logits,
        argmax: field("argmax")?,
        epoch: field("epoch")?,
        batch: field("batch")?,
        batch_id: opt("batch_id"),
        queue_ns: opt("queue_ns"),
        infer_ns: opt("infer_ns"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_body_is_lossless_for_awkward_floats() {
        let input = [
            0.1f32,
            f32::MIN_POSITIVE,
            1.0e20,
            -0.0,
            std::f32::consts::PI,
        ];
        let body = infer_body(&input);
        let parsed = Json::parse(&body).unwrap();
        let arr = parsed.get("input").unwrap().as_array().unwrap();
        for (orig, got) in input.iter().zip(arr) {
            let back = got.as_f64().unwrap() as f32;
            assert_eq!(orig.to_bits(), back.to_bits(), "{orig} mangled in transit");
        }
    }

    #[test]
    fn reply_parser_round_trips_and_rejects_nonsense() {
        let reply = InferReply {
            logits: vec![0.5, -1.25],
            argmax: 0,
            epoch: 7,
            batch: 3,
            batch_id: 41,
            queue_ns: 1_500,
            infer_ns: 92_000,
        };
        let logits: Vec<Json> = reply.logits.iter().map(|&v| Json::from(v)).collect();
        let body = Json::Obj(vec![
            ("logits".into(), Json::Arr(logits)),
            ("argmax".into(), Json::from(reply.argmax)),
            ("epoch".into(), Json::from(reply.epoch)),
            ("batch".into(), Json::from(reply.batch)),
            ("batch_id".into(), Json::from(reply.batch_id)),
            ("queue_ns".into(), Json::from(reply.queue_ns)),
            ("infer_ns".into(), Json::from(reply.infer_ns)),
        ])
        .render();
        assert_eq!(parse_reply(&body).unwrap(), reply);

        // Pre-observability replies (no timing fields) still parse; the
        // unknowns default to 0.
        let legacy = Json::Obj(vec![
            ("logits".into(), Json::Arr(vec![Json::from(1.0f32)])),
            ("argmax".into(), Json::from(0u64)),
            ("epoch".into(), Json::from(7u64)),
            ("batch".into(), Json::from(1u64)),
        ])
        .render();
        let parsed = parse_reply(&legacy).unwrap();
        assert_eq!(parsed.batch_id, 0);
        assert_eq!(parsed.queue_ns, 0);

        assert!(parse_reply("{}").is_err());
        assert!(parse_reply("{\"logits\":[\"x\"]}").is_err());
        assert!(parse_reply("not json").is_err());
    }
}
